"""Exhaustive per-buffer placement search (paper §V-A's combinatorial case).

"In the general case, one should rather compare the performance of all
possible placements of every buffer ... N buffers lead to 2^N possible
placements", pruned "by identifying buffers that are obviously not
performance critical".

:func:`exhaustive_search` enumerates placements of the critical buffers
over candidate nodes (non-critical buffers stay on the default node),
prunes capacity-infeasible assignments, prices each with the simulator,
and returns the candidates sorted best-first.  It is the oracle that the
attribute-guided allocator is benchmarked against in the ablations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..errors import ReproError
from ..sim.access import KernelPhase, Placement
from ..sim.engine import SimEngine

__all__ = ["PlacementCandidate", "exhaustive_search"]


@dataclass(frozen=True)
class PlacementCandidate:
    """One evaluated placement."""

    assignment: tuple[tuple[str, int], ...]   # (buffer, node) pairs
    seconds: float

    def as_dict(self) -> dict[str, int]:
        return dict(self.assignment)


def exhaustive_search(
    engine: SimEngine,
    phases: tuple[KernelPhase, ...],
    buffer_sizes: dict[str, int],
    candidate_nodes: tuple[int, ...],
    *,
    default_node: int,
    critical_buffers: tuple[str, ...] | None = None,
    node_capacity: dict[int, int] | None = None,
    pus: tuple[int, ...] | None = None,
    max_candidates: int = 4096,
    reuse_phase_pricings: bool = True,
) -> tuple[PlacementCandidate, ...]:
    """Price every feasible placement of the critical buffers.

    ``critical_buffers`` defaults to all buffers (full 2^N); pass the
    pruned set to reproduce the paper's mitigation.  ``node_capacity``
    bounds the total bytes placed per node (defaults to unlimited).

    ``reuse_phase_pricings`` (default on) memoizes each phase's pricing
    on the placement *slice the phase actually reads* — the nodes of the
    buffers it accesses.  Candidates that differ only in buffers a phase
    never touches share one pricing, which collapses much of the 2^N
    enumeration's engine work; the per-candidate totals are bit-identical
    to the uncached sums because the identical
    :class:`~repro.sim.engine.PhaseTiming` objects are reused.
    """
    if not phases:
        raise ReproError("need at least one phase to search over")
    all_buffers = sorted(
        {a.buffer for phase in phases for a in phase.accesses}
    )
    missing = [b for b in all_buffers if b not in buffer_sizes]
    if missing:
        raise ReproError(f"no sizes for buffers: {missing}")
    critical = list(critical_buffers if critical_buffers is not None else all_buffers)
    unknown = set(critical) - set(all_buffers)
    if unknown:
        raise ReproError(f"critical buffers not in phases: {sorted(unknown)}")
    if len(candidate_nodes) ** len(critical) > max_candidates:
        raise ReproError(
            f"search space {len(candidate_nodes)}^{len(critical)} exceeds "
            f"max_candidates={max_candidates}; prune critical_buffers"
        )

    # One entry per (phase, slice-of-placement-it-reads): phases only look
    # at the nodes of the buffers they access, so assignments differing in
    # other buffers reuse the exact same PhaseTiming.
    phase_buffers = [
        tuple(a.buffer for a in phase.accesses) for phase in phases
    ]
    pricing_memo: dict[tuple, float] = {}

    results: list[PlacementCandidate] = []
    for combo in itertools.product(candidate_nodes, repeat=len(critical)):
        if node_capacity is not None:
            used: dict[int, int] = {}
            for buf, node in zip(critical, combo):
                used[node] = used.get(node, 0) + buffer_sizes[buf]
            if any(used[n] > node_capacity.get(n, 0) for n in used):
                continue
        assignment = dict(zip(critical, combo))
        placement = Placement(
            {b: {assignment.get(b, default_node): 1.0} for b in all_buffers}
        )
        if reuse_phase_pricings:
            seconds = 0.0
            for idx, phase in enumerate(phases):
                key = (
                    idx,
                    tuple(
                        assignment.get(b, default_node)
                        for b in phase_buffers[idx]
                    ),
                )
                cached = pricing_memo.get(key)
                if cached is None:
                    cached = engine.price_phase(phase, placement, pus=pus).seconds
                    pricing_memo[key] = cached
                seconds += cached
        else:
            seconds = engine.price_run(phases, placement, pus=pus).seconds
        results.append(
            PlacementCandidate(
                assignment=tuple(zip(critical, combo)),
                seconds=seconds,
            )
        )
    if not results:
        raise ReproError("no feasible placement found")
    results.sort(key=lambda c: c.seconds)
    return tuple(results)
