"""Benchmarking-based sensitivity (paper §V-A + the §VI-A decision rule).

"The simplest strategy ... is to bind the entire process to each kind of
memory consecutively and compare the overall performance of each run."

:func:`whole_process_binding_sweep` does the binding sweep (the caller
provides an app runner: placement-node → performance metric);
:func:`infer_criterion` turns the outcomes into an allocation criterion by
correlating them with the attribute rankings — including the paper's KNL
conclusion: when the best and worst kinds are within ``gain_threshold``,
requesting fast memory buys nothing and the criterion degrades to
Capacity (don't burn HBM for a 1% win).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.api import MemAttrs
from ..errors import NoValueError, ReproError
from ..topology.objects import TopoObject

__all__ = ["BindingOutcome", "whole_process_binding_sweep", "infer_criterion"]


@dataclass(frozen=True)
class BindingOutcome:
    """One whole-process-binding run."""

    node: int
    label: str
    metric: float          # higher is better (TEPS, GB/s, 1/time, ...)


def whole_process_binding_sweep(
    run_app: Callable[[int], float],
    targets: Sequence[TopoObject],
) -> tuple[BindingOutcome, ...]:
    """Run the application once per candidate target node."""
    if not targets:
        raise ReproError("binding sweep needs at least one target")
    outcomes = []
    for target in targets:
        metric = run_app(target.os_index)
        if metric <= 0:
            raise ReproError(
                f"app metric must be positive, got {metric} on {target.label}"
            )
        outcomes.append(
            BindingOutcome(node=target.os_index, label=target.label, metric=metric)
        )
    return tuple(outcomes)


def infer_criterion(
    memattrs: MemAttrs,
    outcomes: Sequence[BindingOutcome],
    initiator,
    *,
    candidates: tuple[str, ...] = ("Bandwidth", "Latency"),
    gain_threshold: float = 1.10,
) -> str:
    """Infer the allocation criterion from a binding sweep.

    1. If the best outcome beats the worst by less than ``gain_threshold``,
       the application is insensitive on this machine → ``"Capacity"``.
    2. Otherwise pick the candidate attribute whose target ranking best
       matches the observed performance ranking (exact rank agreement
       counted pairwise — Kendall-style concordance).
    """
    if len(outcomes) < 2:
        raise ReproError("need at least two binding outcomes to compare")
    best = max(o.metric for o in outcomes)
    worst = min(o.metric for o in outcomes)
    if best / worst < gain_threshold:
        return "Capacity"

    topology = memattrs.topology
    scores: dict[str, float] = {}
    for name in candidates:
        attr = memattrs.get_by_name(name)
        concordant = discordant = 0
        for i, a in enumerate(outcomes):
            for b in outcomes[i + 1:]:
                try:
                    va = memattrs.get_value(
                        attr, topology.numanode_by_os_index(a.node), initiator
                    )
                    vb = memattrs.get_value(
                        attr, topology.numanode_by_os_index(b.node), initiator
                    )
                except NoValueError:
                    continue
                if va == vb or a.metric == b.metric:
                    continue
                attr_prefers_a = attr.better(va, vb)
                app_prefers_a = a.metric > b.metric
                if attr_prefers_a == app_prefers_a:
                    concordant += 1
                else:
                    discordant += 1
        total = concordant + discordant
        scores[name] = concordant / total if total else 0.0

    best_name = max(scores, key=lambda k: scores[k])
    if scores[best_name] == 0.0:
        return "Capacity"
    return best_name
