"""Google-multichase-style loaded measurements on the simulator.

``multichase`` measures latency under concurrency (many parallel chases)
and directional bandwidth; the paper lists it as a source for *both*
attributes.  We model its two relevant modes:

* **chase** — ``threads`` independent pointer chases: per-load time under
  load (the figure used for the Latency attribute, since loaded latency
  is what applications experience).
* **memcpy-like bandwidth** — pure read and pure write sweeps, giving
  ReadBandwidth / WriteBandwidth separately (paper §IV-A2: "separate
  values for reads and writes can be obtained and fed to hwloc").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import BenchmarkError
from ..sim.access import BufferAccess, KernelPhase, PatternKind, Placement
from ..sim.engine import SimEngine

__all__ = ["MultichaseResult", "run_multichase"]


@dataclass(frozen=True)
class MultichaseResult:
    """Loaded latency and directional bandwidths for one (initiator, target)."""

    node: int
    threads: int
    working_set: int
    loaded_latency: float     # seconds per dependent load
    read_bandwidth: float     # bytes/s
    write_bandwidth: float    # bytes/s


def run_multichase(
    engine: SimEngine,
    node: int,
    *,
    threads: int,
    pus: tuple[int, ...],
    working_set: int = 1 << 30,
    accesses: int = 1 << 16,
) -> MultichaseResult:
    """Run the chase and bandwidth modes against one target node."""
    if threads < 1:
        raise BenchmarkError("multichase needs >= 1 thread")
    if working_set <= 0:
        raise BenchmarkError("working_set must be positive")

    chase = KernelPhase(
        name="multichase_chase",
        threads=threads,
        accesses=(
            BufferAccess(
                buffer="chain",
                pattern=PatternKind.POINTER_CHASE,
                bytes_read=accesses * 8 * threads,
                working_set=working_set,
                granularity=8,
            ),
        ),
    )
    placement = Placement.single(chain=node)
    chase_t = engine.price_phase(chase, placement, pus=pus)
    # Each thread runs `accesses` dependent loads concurrently with the
    # others; per-load time is wall time / accesses-per-thread.
    loaded_latency = chase_t.seconds / accesses

    sweep_bytes = working_set
    read_phase = KernelPhase(
        name="multichase_read",
        threads=threads,
        accesses=(
            BufferAccess(
                buffer="src",
                pattern=PatternKind.STREAM,
                bytes_read=sweep_bytes,
                working_set=working_set,
                granularity=8,
            ),
        ),
    )
    write_phase = KernelPhase(
        name="multichase_write",
        threads=threads,
        accesses=(
            BufferAccess(
                buffer="dst",
                pattern=PatternKind.STREAM,
                bytes_written=sweep_bytes,
                working_set=working_set,
                granularity=8,
            ),
        ),
    )
    read_t = engine.price_phase(read_phase, Placement.single(src=node), pus=pus)
    write_t = engine.price_phase(write_phase, Placement.single(dst=node), pus=pus)

    return MultichaseResult(
        node=node,
        threads=threads,
        working_set=working_set,
        loaded_latency=loaded_latency,
        read_bandwidth=sweep_bytes / read_t.seconds,
        write_bandwidth=sweep_bytes / write_t.seconds,
    )
