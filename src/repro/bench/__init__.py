"""Benchmark substrate (paper §IV-A2).

When the platform exposes no HMAT (KNL) or only local-access performance
(current Linux), attribute values must be measured.  This package models
the benchmarks the paper names — STREAM for bandwidth under different
access patterns, lmbench ``lat_mem_rd`` for unloaded latency, Google
multichase for loaded latency and bandwidth — *running on the simulator*,
and a runner that sweeps every (initiator, target) pair and feeds the
results into the :class:`~repro.core.api.MemAttrs` store.
"""

from .stream import StreamResult, run_stream
from .lat import LatencyPoint, run_lat_mem_rd
from .multichase import MultichaseResult, run_multichase
from .runner import BenchmarkReport, characterize_machine, feed_attributes

__all__ = [
    "StreamResult",
    "run_stream",
    "LatencyPoint",
    "run_lat_mem_rd",
    "MultichaseResult",
    "run_multichase",
    "BenchmarkReport",
    "characterize_machine",
    "feed_attributes",
]
