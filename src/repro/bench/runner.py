"""Benchmark sweep + attribute feeding.

:func:`characterize_machine` runs STREAM and multichase from every
initiator scope (each Group, or Package when there are no groups) to every
NUMA node — including **remote** pairs the HMAT never covers — and
:func:`feed_attributes` records the measurements in a
:class:`~repro.core.api.MemAttrs`.  Together they implement the "External
Sources: Benchmarks" column of the paper's Table I and the final sentence
of §VIII's KNL discussion: *"hwloc is still able to expose them thanks to
benchmarking."*
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.api import MemAttrs
from ..core.attrs import (
    BANDWIDTH,
    LATENCY,
    READ_BANDWIDTH,
    READ_LATENCY,
    WRITE_BANDWIDTH,
    WRITE_LATENCY,
)
from ..errors import BenchmarkError
from ..sim.engine import SimEngine
from ..topology.build import Topology
from ..topology.objects import ObjType, TopoObject
from .lat import plateau_latency, run_lat_mem_rd
from .multichase import MultichaseResult, run_multichase

__all__ = ["MeasurementKey", "BenchmarkReport", "characterize_machine", "feed_attributes"]


@dataclass(frozen=True)
class MeasurementKey:
    """(initiator scope, target node) identification for one measurement."""

    initiator_label: str
    initiator_pus: tuple[int, ...]
    target_node: int


@dataclass
class BenchmarkReport:
    """All measurements of one characterization sweep."""

    measurements: dict[MeasurementKey, MultichaseResult] = field(default_factory=dict)

    def pairs(self) -> tuple[MeasurementKey, ...]:
        return tuple(self.measurements)

    def for_target(self, node: int) -> dict[MeasurementKey, MultichaseResult]:
        return {
            k: v for k, v in self.measurements.items() if k.target_node == node
        }


def initiator_scopes(topology: Topology) -> tuple[TopoObject, ...]:
    """The natural initiator scopes: Groups when present, else Packages."""
    groups = topology.objs(ObjType.GROUP)
    if groups:
        return groups
    packages = topology.objs(ObjType.PACKAGE)
    if packages:
        return packages
    return (topology.root,)


def characterize_machine(
    engine: SimEngine,
    *,
    working_set: int = 1 << 30,
    max_threads_per_scope: int | None = None,
) -> BenchmarkReport:
    """Measure every (initiator scope, target node) pair."""
    topology = engine.topology
    report = BenchmarkReport()
    for scope in initiator_scopes(topology):
        pus = tuple(scope.cpuset)
        if not pus:
            raise BenchmarkError(f"{scope.label} has no PUs to run benchmarks on")
        threads = len(pus) // 2 or 1  # one thread per core-ish (SMT pairs)
        if max_threads_per_scope is not None:
            threads = min(threads, max_threads_per_scope)
        for node in topology.numanodes():
            ws = min(working_set, max(1 << 20, node.attrs["capacity"] // 4))
            result = run_multichase(
                engine,
                node.os_index,
                threads=threads,
                pus=pus,
                working_set=ws,
            )
            # Latency comes from a single-threaded lmbench-style chase (the
            # paper's tool for latency): a many-threaded chase saturates the
            # node's random-access bandwidth and measures queueing instead
            # of the latency applications with modest MLP experience.
            lat_points = run_lat_mem_rd(
                engine, node.os_index, pu=pus[0], sizes=(ws,)
            )
            result = MultichaseResult(
                node=result.node,
                threads=result.threads,
                working_set=result.working_set,
                loaded_latency=plateau_latency(lat_points),
                read_bandwidth=result.read_bandwidth,
                write_bandwidth=result.write_bandwidth,
            )
            key = MeasurementKey(
                initiator_label=scope.label,
                initiator_pus=pus,
                target_node=node.os_index,
            )
            report.measurements[key] = result
    return report


def feed_attributes(memattrs: MemAttrs, report: BenchmarkReport) -> int:
    """Record a benchmark report in the attribute store.

    Latency measurements feed Latency/ReadLatency/WriteLatency (the chase
    is read-dependent, so both directions get the loaded figure — the
    paper notes R/W split latencies are rarely distinguishable anyway);
    bandwidth sweeps feed the three bandwidth attributes.  Returns the
    number of values recorded.
    """
    topology = memattrs.topology
    recorded = 0
    for key, result in report.measurements.items():
        target = topology.numanode_by_os_index(key.target_node)
        initiator = key.initiator_pus
        values = [
            (READ_BANDWIDTH, result.read_bandwidth),
            (WRITE_BANDWIDTH, result.write_bandwidth),
            (BANDWIDTH, min(result.read_bandwidth, result.write_bandwidth)),
            (LATENCY, result.loaded_latency),
            (READ_LATENCY, result.loaded_latency),
            (WRITE_LATENCY, result.loaded_latency),
        ]
        for attr, value in values:
            memattrs.set_value(attr, target, initiator, value)
            recorded += 1
    return recorded
