"""STREAM (McCalpin) on the simulator.

The four kernels with their canonical byte counts per iteration:

=======  ====================  =====  ======
kernel   statement             reads  writes
=======  ====================  =====  ======
copy     ``c[i] = a[i]``         1      1
scale    ``b[i] = s*c[i]``       1      1
add      ``c[i] = a[i]+b[i]``    2      1
triad    ``a[i] = b[i]+s*c[i]``  2      1
=======  ====================  =====  ======

Reported numbers are *useful* bytes moved per second, the STREAM
convention.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import BenchmarkError
from ..sim.access import BufferAccess, KernelPhase, PatternKind, Placement
from ..sim.engine import SimEngine

__all__ = ["StreamResult", "run_stream", "KERNELS"]

#: kernel -> (arrays read, arrays written)
KERNELS: dict[str, tuple[int, int]] = {
    "copy": (1, 1),
    "scale": (1, 1),
    "add": (2, 1),
    "triad": (2, 1),
}


@dataclass(frozen=True)
class StreamResult:
    """Throughput of the four kernels, bytes/second."""

    node: int
    threads: int
    array_bytes: int
    copy: float
    scale: float
    add: float
    triad: float

    def best(self) -> float:
        return max(self.copy, self.scale, self.add, self.triad)

    def kernel(self, name: str) -> float:
        try:
            return getattr(self, name)
        except AttributeError:
            raise BenchmarkError(f"unknown STREAM kernel {name!r}") from None


def _kernel_phase(
    name: str, array_bytes: int, threads: int
) -> tuple[KernelPhase, tuple[str, ...]]:
    reads, writes = KERNELS[name]
    accesses = []
    names = []
    for i in range(reads):
        buf = f"{name}_r{i}"
        names.append(buf)
        accesses.append(
            BufferAccess(
                buffer=buf,
                pattern=PatternKind.STREAM,
                bytes_read=array_bytes,
                working_set=array_bytes,
                granularity=8,
            )
        )
    for i in range(writes):
        buf = f"{name}_w{i}"
        names.append(buf)
        accesses.append(
            BufferAccess(
                buffer=buf,
                pattern=PatternKind.STREAM,
                bytes_written=array_bytes,
                working_set=array_bytes,
                granularity=8,
            )
        )
    return (
        KernelPhase(name=f"stream_{name}", accesses=tuple(accesses), threads=threads),
        tuple(names),
    )


def run_stream(
    engine: SimEngine,
    node: int,
    *,
    threads: int,
    pus: tuple[int, ...],
    array_bytes: int = 512 * 2**20,
) -> StreamResult:
    """Run all four kernels with every array on ``node``."""
    if array_bytes <= 0:
        raise BenchmarkError("array_bytes must be positive")
    results: dict[str, float] = {}
    for kernel, (reads, writes) in KERNELS.items():
        phase, buffers = _kernel_phase(kernel, array_bytes, threads)
        placement = Placement({buf: {node: 1.0} for buf in buffers})
        timing = engine.price_phase(phase, placement, pus=pus)
        useful = (reads + writes) * array_bytes
        results[kernel] = useful / timing.seconds
    return StreamResult(
        node=node,
        threads=threads,
        array_bytes=array_bytes,
        **results,
    )
