"""lmbench-style ``lat_mem_rd`` on the simulator.

A single thread chases a pointer cycle through a working set of a given
size; the time per dependent load is the memory latency once the working
set escapes the CPU caches.  Sweeping the size yields the classic latency
staircase (L1 → L2 → LLC → memory), and the plateau value is what gets
fed into the Latency attribute.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import BenchmarkError
from ..sim.access import BufferAccess, KernelPhase, PatternKind, Placement
from ..sim.engine import SimEngine

__all__ = ["LatencyPoint", "run_lat_mem_rd", "plateau_latency"]


@dataclass(frozen=True)
class LatencyPoint:
    """One sweep point: working-set size → seconds per dependent load."""

    working_set: int
    latency: float


def run_lat_mem_rd(
    engine: SimEngine,
    node: int,
    *,
    pu: int,
    sizes: tuple[int, ...] = (),
    accesses_per_point: int = 1 << 16,
) -> tuple[LatencyPoint, ...]:
    """Sweep working-set sizes; one pointer-chasing thread on ``pu``."""
    if not sizes:
        sizes = tuple(1 << s for s in range(14, 33, 2))  # 16KB .. 4GB
    points = []
    for ws in sizes:
        if ws <= 0:
            raise BenchmarkError("working-set size must be positive")
        phase = KernelPhase(
            name=f"lat_mem_rd_{ws}",
            threads=1,
            accesses=(
                BufferAccess(
                    buffer="chain",
                    pattern=PatternKind.POINTER_CHASE,
                    bytes_read=accesses_per_point * 8,
                    working_set=ws,
                    granularity=8,
                ),
            ),
        )
        placement = Placement.single(chain=node)
        timing = engine.price_phase(phase, placement, pus=(pu,))
        points.append(
            LatencyPoint(working_set=ws, latency=timing.seconds / accesses_per_point)
        )
    return tuple(points)


def plateau_latency(points: tuple[LatencyPoint, ...]) -> float:
    """The memory-latency plateau: the largest-working-set measurement.

    (On the simulator the curve is monotone; on hardware one would average
    the last few points.)
    """
    if not points:
        raise BenchmarkError("no latency points")
    return max(points, key=lambda p: p.working_set).latency
