"""A memkind-style allocator: named kinds hardwired to technologies.

Models the interface of Cantalupo et al.'s memkind [3] as the paper
characterizes it: "this API was designed for KNL.  It hardwires the
difference between HBM and conventional memory instead of providing
explicit performance-related criteria ... Moreover, it does not take NUMA
locality into account, which means slow local memory cannot be compared
with fast remote memory."

Accordingly:

* ``hbw_malloc`` / kind ``MEMKIND_HBW`` looks for **HBM nodes and nothing
  else** — on a machine without HBM it raises, no matter how fast the
  DRAM is (the portability failure the paper's §VI-A contrasts against);
* kind selection ignores locality: the lowest-OS-index node of the kind
  is used even if a closer one exists (unless it is full).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

from ..errors import CapacityError, ReproError
from ..hw.techs import MemoryKind
from ..kernel.pagealloc import KernelMemoryManager, PageAllocation
from ..kernel.policy import bind_policy

__all__ = ["MemkindError", "MemkindKind", "Memkind"]

_ids = itertools.count(1)


class MemkindError(ReproError):
    """A kind has no backing on this machine (memkind's ENOTSUP)."""


class MemkindKind(enum.Enum):
    """The subset of memkind's static kinds our platforms can back."""

    MEMKIND_DEFAULT = "default"
    MEMKIND_HBW = "hbw"
    MEMKIND_HBW_PREFERRED = "hbw_preferred"
    MEMKIND_DAX_KMEM = "pmem"          # NVDIMM exposed as kmem
    MEMKIND_REGULAR = "regular"

    @property
    def hardwired_memory_kind(self) -> MemoryKind | None:
        return {
            MemkindKind.MEMKIND_DEFAULT: None,
            MemkindKind.MEMKIND_REGULAR: MemoryKind.DRAM,
            MemkindKind.MEMKIND_HBW: MemoryKind.HBM,
            MemkindKind.MEMKIND_HBW_PREFERRED: MemoryKind.HBM,
            MemkindKind.MEMKIND_DAX_KMEM: MemoryKind.NVDIMM,
        }[self]

    @property
    def falls_back(self) -> bool:
        """Only the *_PREFERRED kinds fall back to default memory."""
        return self in (MemkindKind.MEMKIND_HBW_PREFERRED,)


@dataclass
class MemkindBuffer:
    """A buffer placed by the memkind baseline."""

    name: str
    size: int
    kind: MemkindKind
    allocation: PageAllocation

    @property
    def nodes(self) -> tuple[int, ...]:
        return self.allocation.nodes


class Memkind:
    """The baseline allocator."""

    def __init__(self, kernel: KernelMemoryManager) -> None:
        self.kernel = kernel
        self.buffers: dict[str, MemkindBuffer] = {}

    def _nodes_of_kind(self, kind: MemoryKind | None) -> tuple[int, ...]:
        nodes = self.kernel.machine.numa_nodes()
        if kind is None:
            return tuple(sorted(n.os_index for n in nodes))
        return tuple(
            sorted(n.os_index for n in nodes if n.kind is kind)
        )

    def malloc(
        self,
        kind: MemkindKind,
        size: int,
        *,
        initiator_pu: int = 0,
        name: str | None = None,
    ) -> MemkindBuffer:
        """``memkind_malloc(kind, size)``.

        Raises :class:`MemkindError` when the kind has no backing nodes on
        this machine — the hardwiring failure mode.
        """
        if size <= 0:
            raise ReproError("allocation size must be positive")
        name = name or f"memkind{next(_ids)}"
        if name in self.buffers:
            raise ReproError(f"buffer name {name!r} already in use")

        hardwired = kind.hardwired_memory_kind
        if hardwired is None:
            alloc = self.kernel.allocate(
                size, bind_policy(*self._nodes_of_kind(None), strict=True),
                initiator_pu=initiator_pu,
            )
        else:
            candidates = self._nodes_of_kind(hardwired)
            if not candidates:
                raise MemkindError(
                    f"{kind.name}: no {hardwired.value} memory on "
                    f"{self.kernel.machine.name} (memkind hardwires the "
                    "technology; there is nothing to fall back to)"
                )
            try:
                # Locality-blind: lowest OS index first, by design.
                alloc = self.kernel.allocate_ordered(size, candidates)
            except CapacityError:
                if not kind.falls_back:
                    raise
                others = tuple(
                    n for n in self._nodes_of_kind(None) if n not in candidates
                )
                alloc = self.kernel.allocate_ordered(size, candidates + others)
        buffer = MemkindBuffer(name=name, size=size, kind=kind, allocation=alloc)
        self.buffers[name] = buffer
        return buffer

    def free(self, buffer: MemkindBuffer | str) -> None:
        key = buffer if isinstance(buffer, str) else buffer.name
        try:
            buf = self.buffers.pop(key)
        except KeyError:
            raise ReproError(f"unknown buffer {key!r}") from None
        self.kernel.free(buf.allocation)

    def kind_available(self, kind: MemkindKind) -> bool:
        """``memkind_check_available``."""
        hardwired = kind.hardwired_memory_kind
        return hardwired is None or bool(self._nodes_of_kind(hardwired))
