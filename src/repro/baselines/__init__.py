"""Baseline allocation interfaces from the paper's related work (§II-D).

The paper positions its attribute API against existing interfaces; we
implement the two it discusses in depth so the comparison benchmarks run
against real code, not straw men:

* :mod:`memkind` — a memkind-style API [3]: named *kinds*
  (``MEMKIND_DEFAULT``, ``MEMKIND_HBW``, ``MEMKIND_PMEM``...) hardwired
  to memory technologies.  Portable code cannot be written against it:
  ``MEMKIND_HBW`` simply has no target on a Xeon+NVDIMM box, and the
  paper's critique — "it does not take NUMA locality into account" — is
  reproduced faithfully (kinds bind by kind, not by distance).
* :mod:`autohbw` — AutoHBW-style interception [3]/[4]: unmodified
  ``malloc`` calls are redirected to fast memory based on a *size window*
  configured per run, "a convenience solution that still requires to
  identify sensitive buffers and their size for a specific run".  The
  interceptor also supports the paper's improvement: per-call-site
  sensitivity hints feeding the attribute allocator (§IV-B's
  "intercepting and recognizing allocation calls to add sensitivity
  hints").
"""

from .memkind import Memkind, MemkindError, MemkindKind
from .autohbw import AutoHBW, InterceptingAllocator, SizeWindow

__all__ = [
    "Memkind",
    "MemkindError",
    "MemkindKind",
    "AutoHBW",
    "InterceptingAllocator",
    "SizeWindow",
]
