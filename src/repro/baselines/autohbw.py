"""AutoHBW-style allocation interception, plus the paper's improvement.

AutoHBW [3] redirects unmodified ``malloc`` calls to high-bandwidth
memory when the request size falls inside a configured window — "a
convenience solution that still requires to identify sensitive buffers
and their size for a specific run" (§II-D).  :class:`AutoHBW` reproduces
that policy over the kernel layer.

:class:`InterceptingAllocator` is the §IV-B upgrade: interception stays
(no application changes), but instead of a size window, recognized
allocation *sites* carry sensitivity hints that feed the attribute-based
heterogeneous allocator — combining auto-hbwmalloc's productivity with
the attributes' portability.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..alloc.allocator import Buffer, HeterogeneousAllocator
from ..errors import ReproError
from ..hw.techs import MemoryKind
from ..kernel.pagealloc import KernelMemoryManager, PageAllocation

__all__ = ["SizeWindow", "AutoHBW", "InterceptingAllocator"]

_ids = itertools.count(1)


@dataclass(frozen=True)
class SizeWindow:
    """AutoHBW's per-run tuning knob: redirect sizes in [low, high)."""

    low: int
    high: int | None = None    # None = unbounded

    def __post_init__(self) -> None:
        if self.low < 0:
            raise ReproError("window low bound must be non-negative")
        if self.high is not None and self.high <= self.low:
            raise ReproError("window high bound must exceed low bound")

    def matches(self, size: int) -> bool:
        return size >= self.low and (self.high is None or size < self.high)


@dataclass
class InterceptedBuffer:
    """One intercepted malloc."""

    name: str
    size: int
    redirected: bool
    allocation: PageAllocation

    @property
    def nodes(self) -> tuple[int, ...]:
        return self.allocation.nodes


class AutoHBW:
    """Size-window interception onto HBM (the AutoHBW baseline)."""

    def __init__(
        self,
        kernel: KernelMemoryManager,
        window: SizeWindow,
    ) -> None:
        self.kernel = kernel
        self.window = window
        self.buffers: dict[str, InterceptedBuffer] = {}
        self._hbm_nodes = tuple(
            sorted(
                n.os_index
                for n in kernel.machine.numa_nodes()
                if n.kind is MemoryKind.HBM
            )
        )

    @property
    def usable(self) -> bool:
        return bool(self._hbm_nodes)

    def malloc(
        self, size: int, *, initiator_pu: int = 0, name: str | None = None
    ) -> InterceptedBuffer:
        """An unmodified ``malloc``: redirected iff the size matches."""
        if size <= 0:
            raise ReproError("allocation size must be positive")
        name = name or f"autohbw{next(_ids)}"
        if name in self.buffers:
            raise ReproError(f"buffer name {name!r} already in use")
        redirect = self.usable and self.window.matches(size)
        if redirect:
            # HBM first, spilling to everything else when full (AutoHBW
            # uses the preferred policy underneath).
            others = tuple(
                n for n in self.kernel.node_ids() if n not in self._hbm_nodes
            )
            allocation = self.kernel.allocate_ordered(
                size, self._hbm_nodes + others
            )
        else:
            from ..kernel.policy import default_policy
            allocation = self.kernel.allocate(
                size, default_policy(), initiator_pu=initiator_pu
            )
        buffer = InterceptedBuffer(
            name=name, size=size, redirected=redirect, allocation=allocation
        )
        self.buffers[name] = buffer
        return buffer

    def free(self, buffer: InterceptedBuffer | str) -> None:
        key = buffer if isinstance(buffer, str) else buffer.name
        try:
            buf = self.buffers.pop(key)
        except KeyError:
            raise ReproError(f"unknown buffer {key!r}") from None
        self.kernel.free(buf.allocation)


class InterceptingAllocator:
    """Site-hint interception over the attribute allocator (§IV-B).

    The application still calls plain ``malloc(size)`` — tagged only by
    its call site, which a real interceptor gets from the return address.
    Sites registered with a sensitivity hint are served by
    ``mem_alloc(size, hint)``; unknown sites get the default policy.
    """

    def __init__(self, hetero: HeterogeneousAllocator, initiator) -> None:
        self.hetero = hetero
        self.initiator = initiator
        self._hints: dict[str, str] = {}

    def add_hint(self, site: str, attribute: str) -> None:
        """Teach the interceptor one allocation site's sensitivity."""
        if not site:
            raise ReproError("site must be non-empty")
        # Validate the attribute eagerly so typos fail at registration.
        self.hetero.memattrs.get_by_name(attribute)
        self._hints[site] = attribute

    def hints(self) -> dict[str, str]:
        return dict(self._hints)

    def malloc(self, size: int, site: str, *, name: str | None = None) -> Buffer:
        attribute = self._hints.get(site, "Locality")
        return self.hetero.mem_alloc(
            size, attribute, self.initiator, name=name
        )

    def free(self, buffer: Buffer | str) -> None:
        self.hetero.free(buffer)
