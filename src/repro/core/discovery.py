"""Native attribute discovery from platform firmware (paper §IV-A1).

:func:`discover_from_sysfs` parses the Linux-5.2-style
``/sys/devices/system/node/nodeN/access0/initiators`` files that the
virtual sysfs (:mod:`repro.firmware.sysfs`) renders from the synthetic
HMAT, and records Bandwidth/Latency (+ R/W variants) values in a
:class:`~repro.core.api.MemAttrs` store.

Like the real kernel interface, sysfs only carries **local** access
performance, so after native discovery an initiator cannot compare its
local DRAM with another package's HBM — the gap the benchmark feeding path
(:mod:`repro.bench.runner`) fills.
"""

from __future__ import annotations

from ..errors import FirmwareError
from ..firmware.sysfs import VirtualSysfs, build_sysfs, parse_ranges
from ..topology.bitmap import Bitmap
from ..topology.build import Topology
from .api import MemAttrs
from .attrs import (
    BANDWIDTH,
    LATENCY,
    READ_BANDWIDTH,
    READ_LATENCY,
    WRITE_BANDWIDTH,
    WRITE_LATENCY,
)

__all__ = ["discover_from_sysfs", "native_discovery"]

_NODE_ROOT = "/sys/devices/system/node"
_MB = 10 ** 6
_NS = 1e-9


def discover_from_sysfs(memattrs: MemAttrs, sysfs: VirtualSysfs) -> int:
    """Parse HMAT-derived sysfs attributes into the value store.

    Returns the number of (target, attribute) data points recorded; 0 on
    platforms without HMAT (e.g. KNL) where the ``access0`` directories
    are absent — callers then fall back to benchmarking.
    """
    topology = memattrs.topology
    recorded = 0
    for node in topology.numanodes():
        base = f"{_NODE_ROOT}/node{node.os_index}/access0/initiators"
        if not sysfs.exists(base):
            continue
        initiator_nodes = [
            int(name[len("node"):])
            for name in sysfs.listdir(base)
            if name.startswith("node")
        ]
        if not initiator_nodes:
            continue
        # The initiator cpuset is the union of the CPU lists of the listed
        # initiator nodes (hwloc builds its initiator the same way).
        cpuset = Bitmap()
        for ini in initiator_nodes:
            cpulist = sysfs.read(f"{_NODE_ROOT}/node{ini}/cpulist").strip()
            cpuset = cpuset | Bitmap(parse_ranges(cpulist))
        if cpuset.is_empty():
            raise FirmwareError(
                f"node{node.os_index}: initiator nodes {initiator_nodes} "
                "have no CPUs"
            )

        def read_field(name: str) -> float | None:
            path = f"{base}/{name}"
            if not sysfs.exists(path):
                return None
            return float(sysfs.read(path).strip())

        rbw = read_field("read_bandwidth")
        wbw = read_field("write_bandwidth")
        rlat = read_field("read_latency")
        wlat = read_field("write_latency")

        if rbw is not None:
            memattrs.set_value(READ_BANDWIDTH, node, cpuset, rbw * _MB)
            recorded += 1
        if wbw is not None:
            memattrs.set_value(WRITE_BANDWIDTH, node, cpuset, wbw * _MB)
            recorded += 1
        if rbw is not None and wbw is not None:
            memattrs.set_value(BANDWIDTH, node, cpuset, min(rbw, wbw) * _MB)
            recorded += 1
        if rlat is not None:
            memattrs.set_value(READ_LATENCY, node, cpuset, rlat * _NS)
            recorded += 1
        if wlat is not None:
            memattrs.set_value(WRITE_LATENCY, node, cpuset, wlat * _NS)
            recorded += 1
        if rlat is not None and wlat is not None:
            memattrs.set_value(LATENCY, node, cpuset, max(rlat, wlat) * _NS)
            recorded += 1
    return recorded


def native_discovery(topology: Topology) -> MemAttrs:
    """Build a :class:`MemAttrs` and run the full native path:
    Capacity/Locality from the topology, Bandwidth/Latency from the
    machine's firmware when it has an HMAT."""
    memattrs = MemAttrs(topology)
    machine = topology.machine_spec
    if machine.has_hmat:
        sysfs = build_sysfs(machine)
        discover_from_sysfs(memattrs, sysfs)
    return memattrs
