"""hwloc-named function aliases (the paper's Fig. 4 spelling).

For readers coming from the paper or from C hwloc, these free functions
mirror ``hwloc/memattrs.h`` one-to-one over a :class:`MemAttrs`:

=============================================  ==============================
paper / hwloc                                   here
=============================================  ==============================
``hwloc_get_local_numanode_objs(t, i, …)``      :func:`hwloc_get_local_numanode_objs`
``hwloc_memattr_get_best_target(t, a, i, …)``   :func:`hwloc_memattr_get_best_target`
``hwloc_memattr_get_best_initiator(t, a, n)``   :func:`hwloc_memattr_get_best_initiator`
``hwloc_memattr_get_value(t, a, n, i, …)``      :func:`hwloc_memattr_get_value`
``hwloc_memattr_set_value``                     :func:`hwloc_memattr_set_value`
``hwloc_memattr_register``                      :func:`hwloc_memattr_register`
=============================================  ==============================

C-style out-parameters become return values; error codes become the
library's exceptions.
"""

from __future__ import annotations

from ..topology.objects import TopoObject
from .api import MemAttrs
from .attrs import MemAttrFlag, MemAttribute

__all__ = [
    "hwloc_get_local_numanode_objs",
    "hwloc_memattr_get_best_target",
    "hwloc_memattr_get_best_initiator",
    "hwloc_memattr_get_value",
    "hwloc_memattr_set_value",
    "hwloc_memattr_register",
]


def hwloc_get_local_numanode_objs(
    memattrs: MemAttrs, initiator, flags=None
) -> tuple[TopoObject, ...]:
    """Fig. 4, first call: the targets local to an initiator."""
    return memattrs.get_local_numanode_objs(initiator, flags)


def hwloc_memattr_get_best_target(
    memattrs: MemAttrs, attribute, initiator
) -> tuple[TopoObject, float]:
    """Fig. 4, second call: returns ``(best_target, target_value)``."""
    tv = memattrs.get_best_target(attribute, initiator)
    return tv.target, tv.value


def hwloc_memattr_get_best_initiator(
    memattrs: MemAttrs, attribute, target: TopoObject
):
    """Returns ``(best_initiator_cpuset, value)`` for a target."""
    tv = memattrs.get_best_initiator(attribute, target)
    return tv.initiator, tv.value


def hwloc_memattr_get_value(
    memattrs: MemAttrs, attribute, target: TopoObject, initiator=None
) -> float:
    """Fig. 4, third call: one attribute value."""
    return memattrs.get_value(attribute, target, initiator)


def hwloc_memattr_set_value(
    memattrs: MemAttrs, attribute, target: TopoObject, initiator, value: float
) -> None:
    """Feed one externally-measured value (Table I's external sources)."""
    memattrs.set_value(attribute, target, initiator, value)


def hwloc_memattr_register(
    memattrs: MemAttrs, name: str, flags: MemAttrFlag
) -> MemAttribute:
    """Register a custom attribute and return its handle."""
    return memattrs.register(name, flags)
