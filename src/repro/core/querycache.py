"""Memoized attribute-query engine (generation-based invalidation).

The paper's ``mem_alloc(..., attribute)`` flow re-derives the same answers
on every call — local-target discovery, attribute-fallback resolution,
per-target ``get_value`` with a linear initiator scan, and a full re-sort
in ``rank_targets`` — even though attribute values change rarely while
allocations happen constantly.  :class:`QueryCache` makes the steady-state
query path O(cache-hit):

* Every cached answer lives in a named **family** (``"rank_targets"``,
  ``"local_nodes"``, ``"fallback_chain"``, ...), so the observability
  surface (:meth:`stats`) can attribute hits and misses to the query kind.
* Keys always embed the owning :class:`~repro.core.api.MemAttrs`
  **generation** — a counter bumped on every ``set_value``/``register``.
  A stale entry therefore can never be served: its generation no longer
  matches the key being looked up.  On top of that,
  :meth:`invalidate` drops value-dependent families eagerly so memory
  stays bounded across long value-feeding phases.
* Families that depend only on the (immutable) topology — cpuset
  normalization, local-target discovery — survive invalidation: their
  answers cannot go stale.

Cached values are immutable (tuples of frozen dataclasses, ``Bitmap``\\ s)
so sharing them between callers is safe; a cached answer is bit-identical
to what the uncached code path would recompute.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import TypeVar

from ..errors import ReproError
from ..obs import OBS

__all__ = [
    "MISSING",
    "CacheStats",
    "QueryCache",
    "TOPOLOGY_FAMILIES",
    "consistent_read",
    "render_cache_stats",
]

_T = TypeVar("_T")


def consistent_read(
    read: Callable[[], _T],
    generation: Callable[[], int],
    *,
    max_retries: int = 8,
) -> tuple[_T, int]:
    """Seqlock-style read: retry ``read()`` until the generation is stable.

    A multi-part query (ranking + per-target values + free capacity) is
    only meaningful if the attribute store did not change *between* its
    parts.  This samples ``generation()`` before and after ``read()`` and
    retries on mismatch, returning ``(value, generation)`` — the
    generation tag the ``repro.serve`` query verb stamps on responses so
    clients can correlate answers with attribute epochs.  Raises
    :class:`~repro.errors.ReproError` if the store keeps changing for
    ``max_retries`` attempts (a writer livelock, not a cache bug).
    """
    for _ in range(max_retries):
        before = generation()
        value = read()
        if generation() == before:
            return value, before
    raise ReproError(
        f"attribute store generation kept changing across {max_retries} "
        "read attempts"
    )


class _Missing:
    """Sentinel distinguishing 'not cached' from a cached ``None``."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<MISSING>"


MISSING = _Missing()

#: Families keyed purely by topology facts; they never go stale when
#: attribute values change and so survive :meth:`QueryCache.invalidate`.
TOPOLOGY_FAMILIES = frozenset({"as_cpuset", "local_nodes", "initiator_pus"})


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss accounting for one cache family (or the totals)."""

    hits: int = 0
    misses: int = 0
    entries: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class QueryCache:
    """Family-partitioned memo store with FIFO bounding per family.

    ``enabled=False`` turns every lookup into a miss-without-accounting
    and every store into a no-op — the uncached baseline the throughput
    benchmark compares against.
    """

    def __init__(self, *, enabled: bool = True, max_entries_per_family: int = 4096) -> None:
        self.enabled = enabled
        self.max_entries_per_family = max_entries_per_family
        self._families: dict[str, dict] = {}
        self._hits: dict[str, int] = {}
        self._misses: dict[str, int] = {}
        self.invalidations = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def get(self, family: str, key, default=MISSING):
        """The cached value, or ``default`` (also when disabled).

        ``default`` lets callers that cannot import :data:`MISSING`
        (e.g. :mod:`repro.topology.traversal`, which must not depend on
        ``core``) supply their own sentinel.
        """
        if not self.enabled:
            return default
        value = self._families.get(family, {}).get(key, MISSING)
        if value is MISSING:
            self._misses[family] = self._misses.get(family, 0) + 1
            if OBS.enabled:
                OBS.metrics.counter("querycache.misses", family=family).inc()
            return default
        self._hits[family] = self._hits.get(family, 0) + 1
        if OBS.enabled:
            OBS.metrics.counter("querycache.hits", family=family).inc()
        return value

    def store(self, family: str, key, value) -> None:
        if not self.enabled:
            return
        entries = self._families.setdefault(family, {})
        if key not in entries and len(entries) >= self.max_entries_per_family:
            # FIFO: dicts preserve insertion order, so the oldest goes first.
            entries.pop(next(iter(entries)))
            self.evictions += 1
        entries[key] = value

    def invalidate(self, *, keep_topology_families: bool = True) -> None:
        """Drop value-dependent entries (generation keys already shield
        correctness; this bounds memory and feeds the counter)."""
        self.invalidations += 1
        if OBS.enabled:
            OBS.metrics.counter("querycache.invalidations").inc()
        for family in list(self._families):
            if keep_topology_families and family in TOPOLOGY_FAMILIES:
                continue
            del self._families[family]

    def clear(self) -> None:
        """Drop everything, counters included (for test isolation)."""
        self._families.clear()
        self._hits.clear()
        self._misses.clear()
        self.invalidations = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def family_stats(self, family: str) -> CacheStats:
        return CacheStats(
            hits=self._hits.get(family, 0),
            misses=self._misses.get(family, 0),
            entries=len(self._families.get(family, {})),
        )

    def stats(self) -> dict:
        """The observability surface behind ``cache_stats()``."""
        families = sorted(
            set(self._families) | set(self._hits) | set(self._misses)
        )
        per_family = {f: self.family_stats(f) for f in families}
        total = CacheStats(
            hits=sum(s.hits for s in per_family.values()),
            misses=sum(s.misses for s in per_family.values()),
            entries=sum(s.entries for s in per_family.values()),
        )
        return {
            "enabled": self.enabled,
            "hits": total.hits,
            "misses": total.misses,
            "entries": total.entries,
            "hit_rate": total.hit_rate,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "families": {
                f: {
                    "hits": s.hits,
                    "misses": s.misses,
                    "entries": s.entries,
                    "hit_rate": s.hit_rate,
                }
                for f, s in per_family.items()
            },
        }


def render_cache_stats(stats: dict) -> str:
    """Human-readable stats table (used by the CLI's ``--cache-stats``)."""
    lines = [
        f"{'family':<18} {'hits':>8} {'misses':>8} {'entries':>8} {'hit rate':>9}"
    ]
    for family, s in sorted(stats["families"].items()):
        lines.append(
            f"{family:<18} {s['hits']:>8} {s['misses']:>8} "
            f"{s['entries']:>8} {s['hit_rate']:>8.1%}"
        )
    lines.append(
        f"{'total':<18} {stats['hits']:>8} {stats['misses']:>8} "
        f"{stats['entries']:>8} {stats['hit_rate']:>8.1%}"
    )
    lines.append(
        f"invalidations: {stats['invalidations']}   "
        f"evictions: {stats['evictions']}   "
        f"enabled: {stats['enabled']}"
    )
    return "\n".join(lines)
