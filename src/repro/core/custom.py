"""User-defined (custom) attributes — last row of the paper's Table I.

The API "lets users create attributes for metrics characterizing memories
under specific circumstances" (§IV).  :func:`register_derived_attribute`
registers a new attribute and fills it by combining existing per-(target,
initiator) values; :func:`stream_triad_attribute` is the paper's worked
example: a STREAM-Triad score built from Read and Write bandwidth in the
kernel's 2-reads-per-write ratio (footnote 16).
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..errors import NoValueError
from ..topology.bitmap import Bitmap
from .api import MemAttrs
from .attrs import (
    MemAttrFlag,
    MemAttribute,
    READ_BANDWIDTH,
    WRITE_BANDWIDTH,
)

__all__ = ["register_derived_attribute", "stream_triad_attribute"]


def register_derived_attribute(
    memattrs: MemAttrs,
    name: str,
    source_attrs: Sequence[MemAttribute | str],
    combine: Callable[[Sequence[float]], float],
    *,
    flags: MemAttrFlag,
    unit: str = "",
    description: str = "",
) -> MemAttribute:
    """Register ``name`` and value it as ``combine([v1, v2, ...])``.

    The combination runs for every (target, initiator) pair for which
    *all* source attributes have values — pairs with missing inputs are
    skipped (a target without Write bandwidth simply gets no Triad score).
    Returns the new attribute.
    """
    sources = [memattrs.get_by_name(a if isinstance(a, str) else a.name)
               for a in source_attrs]
    if not sources:
        raise NoValueError("derived attribute needs at least one source")
    attr = memattrs.register(
        name, flags, unit=unit, description=description
    )

    needs_initiator = bool(flags & MemAttrFlag.NEED_INITIATOR)
    for target in memattrs.topology.numanodes():
        for initiator in _candidate_initiators(memattrs, target, sources):
            try:
                values = [
                    memattrs.get_value(
                        s, target, initiator if s.needs_initiator else None
                    )
                    for s in sources
                ]
            except NoValueError:
                continue
            memattrs.set_value(
                attr,
                target,
                initiator if needs_initiator else None,
                combine(values),
            )
            if not needs_initiator:
                break
    return attr


def _candidate_initiators(
    memattrs: MemAttrs, target, sources
) -> tuple[Bitmap | None, ...]:
    """Initiator cpusets for which any initiator-aware source has a value
    on this target; ``(None,)`` when no source needs an initiator."""
    needs = [s for s in sources if s.needs_initiator]
    if not needs:
        return (None,)
    keys: set[Bitmap] = set()
    for s in needs:
        per_initiator = memattrs._store.get_map(s.id, target.os_index)
        keys.update(k for k in per_initiator if k is not None)
    # No initiator has values for any initiator-aware source: no candidates
    # (the derived attribute simply records nothing for this target).
    return tuple(sorted(keys, key=lambda b: (b.weight(), b.first())))


def stream_triad_attribute(memattrs: MemAttrs, name: str = "StreamTriad") -> MemAttribute:
    """The paper's example custom metric (§IV and footnote 16).

    Triad (``a[i] = b[i] + s*c[i]``) moves 2 reads per 1 write, so the
    sustainable rate from per-direction bandwidths BRead and BWrite is the
    weighted harmonic combination ``3 / (2/BRead + 1/BWrite)``.
    """
    def combine(values) -> float:
        read_bw, write_bw = values
        return 3.0 / (2.0 / read_bw + 1.0 / write_bw)

    return register_derived_attribute(
        memattrs,
        name,
        [READ_BANDWIDTH, WRITE_BANDWIDTH],
        combine,
        flags=MemAttrFlag.HIGHER_FIRST | MemAttrFlag.NEED_INITIATOR,
        unit="MB/s",
        description="STREAM Triad sustainable rate (2 reads : 1 write)",
    )
