"""Attribute definitions and flags.

Mirrors hwloc's ``hwloc_memattr_id_e`` and ``hwloc_memattr_flag_e``:

* ``HIGHER_FIRST`` / ``LOWER_FIRST`` say which direction is *better* —
  bandwidth and capacity rank higher-first, latency ranks lower-first
  (the paper's Eq. 1-3 orderings fall out of these flags).
* ``NEED_INITIATOR`` marks attributes whose value depends on who performs
  the access (bandwidth/latency do; capacity does not).

Builtin attribute IDs match hwloc's numbering so that Fig. 5's
"Memory attribute #2 name 'Bandwidth'" renders identically.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import AttributeFlagError

__all__ = [
    "MemAttrFlag",
    "MemAttribute",
    "CAPACITY",
    "LOCALITY",
    "BANDWIDTH",
    "LATENCY",
    "READ_BANDWIDTH",
    "WRITE_BANDWIDTH",
    "READ_LATENCY",
    "WRITE_LATENCY",
    "BUILTIN_ATTRIBUTES",
]


class MemAttrFlag(enum.Flag):
    HIGHER_FIRST = enum.auto()
    LOWER_FIRST = enum.auto()
    NEED_INITIATOR = enum.auto()


@dataclass(frozen=True)
class MemAttribute:
    """One registered memory attribute."""

    id: int
    name: str
    flags: MemAttrFlag
    unit: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise AttributeFlagError("attribute name must be non-empty")
        higher = bool(self.flags & MemAttrFlag.HIGHER_FIRST)
        lower = bool(self.flags & MemAttrFlag.LOWER_FIRST)
        if higher == lower:
            raise AttributeFlagError(
                f"attribute {self.name!r} must set exactly one of "
                "HIGHER_FIRST / LOWER_FIRST"
            )

    @property
    def higher_is_better(self) -> bool:
        return bool(self.flags & MemAttrFlag.HIGHER_FIRST)

    @property
    def needs_initiator(self) -> bool:
        return bool(self.flags & MemAttrFlag.NEED_INITIATOR)

    def better(self, a: float, b: float) -> bool:
        """True when value ``a`` ranks strictly better than ``b``."""
        return a > b if self.higher_is_better else a < b


# Builtin attributes with hwloc's IDs.
CAPACITY = MemAttribute(
    id=0,
    name="Capacity",
    flags=MemAttrFlag.HIGHER_FIRST,
    unit="bytes",
    description="Total size of the target node",
)
LOCALITY = MemAttribute(
    id=1,
    name="Locality",
    flags=MemAttrFlag.LOWER_FIRST,
    unit="PUs",
    description="Number of PUs sharing the target (smaller = more local)",
)
BANDWIDTH = MemAttribute(
    id=2,
    name="Bandwidth",
    flags=MemAttrFlag.HIGHER_FIRST | MemAttrFlag.NEED_INITIATOR,
    unit="MB/s",
    description="Access bandwidth from the initiator (min of read/write)",
)
LATENCY = MemAttribute(
    id=3,
    name="Latency",
    flags=MemAttrFlag.LOWER_FIRST | MemAttrFlag.NEED_INITIATOR,
    unit="ns",
    description="Access latency from the initiator (max of read/write)",
)
READ_BANDWIDTH = MemAttribute(
    id=4,
    name="ReadBandwidth",
    flags=MemAttrFlag.HIGHER_FIRST | MemAttrFlag.NEED_INITIATOR,
    unit="MB/s",
)
WRITE_BANDWIDTH = MemAttribute(
    id=5,
    name="WriteBandwidth",
    flags=MemAttrFlag.HIGHER_FIRST | MemAttrFlag.NEED_INITIATOR,
    unit="MB/s",
)
READ_LATENCY = MemAttribute(
    id=6,
    name="ReadLatency",
    flags=MemAttrFlag.LOWER_FIRST | MemAttrFlag.NEED_INITIATOR,
    unit="ns",
)
WRITE_LATENCY = MemAttribute(
    id=7,
    name="WriteLatency",
    flags=MemAttrFlag.LOWER_FIRST | MemAttrFlag.NEED_INITIATOR,
    unit="ns",
)

BUILTIN_ATTRIBUTES: tuple[MemAttribute, ...] = (
    CAPACITY,
    LOCALITY,
    BANDWIDTH,
    LATENCY,
    READ_BANDWIDTH,
    WRITE_BANDWIDTH,
    READ_LATENCY,
    WRITE_LATENCY,
)
