"""Dynamic and under-investigation attributes (§III-B3, §VIII, Table I).

* :func:`refresh_available_capacity` — "If several applications are
  running on the same machine, their dynamic behavior could impose to
  consider the **available** capacity rather than the total capacity"
  (§III-B3).  The attribute reads the kernel's live free-page counters;
  call it again whenever placement decisions are about to be made.
* :func:`register_power_attribute` / :func:`register_endurance_attribute`
  — the "Persistence, Endurance, Power: under investigation" row of
  Table I, fed from the technology models.
"""

from __future__ import annotations

from ..errors import UnknownAttributeError
from ..kernel.pagealloc import KernelMemoryManager
from .api import MemAttrs
from .attrs import MemAttrFlag, MemAttribute

__all__ = [
    "refresh_available_capacity",
    "register_power_attribute",
    "register_endurance_attribute",
    "register_persistence_attribute",
    "register_memside_cache_attribute",
    "register_coherency_attribute",
    "register_availability_attribute",
]


def refresh_available_capacity(
    memattrs: MemAttrs, kernel: KernelMemoryManager, *, name: str = "AvailableCapacity"
) -> MemAttribute:
    """Register (first call) and refresh the free-bytes-per-node attribute.

    Returns the attribute so callers can pass it straight to
    ``mem_alloc``/``rank_targets``.
    """
    try:
        attr = memattrs.get_by_name(name)
    except UnknownAttributeError:
        attr = memattrs.register(
            name,
            MemAttrFlag.HIGHER_FIRST,
            unit="bytes",
            description="Currently-free capacity of the target node",
        )
    for node in memattrs.topology.numanodes():
        memattrs.set_value(attr, node, None, float(kernel.free_bytes(node.os_index)))
    return attr


def register_power_attribute(
    memattrs: MemAttrs, *, name: str = "Power"
) -> MemAttribute:
    """Access energy per byte (lower is better); targets whose technology
    publishes no figure simply carry no value."""
    attr = memattrs.register(
        name,
        MemAttrFlag.LOWER_FIRST,
        unit="pJ/B",
        description="Access energy per byte",
    )
    for node in memattrs.topology.numanodes():
        tech = memattrs.topology.node_instance(node).tech
        if tech.power_pj_per_byte is not None:
            memattrs.set_value(attr, node, None, tech.power_pj_per_byte)
    return attr


def register_endurance_attribute(
    memattrs: MemAttrs, *, name: str = "Endurance"
) -> MemAttribute:
    """Device write endurance (higher is better); volatile technologies
    are treated as unlimited and get a large sentinel value."""
    attr = memattrs.register(
        name,
        MemAttrFlag.HIGHER_FIRST,
        unit="writes",
        description="Write endurance of the target's cells",
    )
    unlimited = 1e18
    for node in memattrs.topology.numanodes():
        tech = memattrs.topology.node_instance(node).tech
        value = tech.endurance_writes if tech.endurance_writes else unlimited
        memattrs.set_value(attr, node, None, value)
    return attr


def register_memside_cache_attribute(
    memattrs: MemAttrs, *, name: str = "MemsideCacheSize"
) -> MemAttribute:
    """Memory-side cache size in front of each target (§VIII).

    The paper's closing discussion: attribute values do not include
    memory-side caches, so "application-observed performance [may] be
    different from our attribute values" — exposing the cache size lets
    runtimes anticipate that.  Targets without a cache carry 0.
    """
    attr = memattrs.register(
        name,
        MemAttrFlag.HIGHER_FIRST,
        unit="bytes",
        description="Size of the memory-side cache in front of the target",
    )
    for node in memattrs.topology.numanodes():
        cache = memattrs.topology.node_instance(node).spec.memside_cache
        memattrs.set_value(attr, node, None, float(cache.size if cache else 0))
    return attr


def register_persistence_attribute(
    memattrs: MemAttrs, *, name: str = "Persistence"
) -> MemAttribute:
    """1.0 for persistent targets, 0.0 otherwise (higher first: ranking
    by Persistence finds the NVDIMMs)."""
    attr = memattrs.register(
        name,
        MemAttrFlag.HIGHER_FIRST,
        unit="bool",
        description="Whether the target retains data across power loss",
    )
    for node in memattrs.topology.numanodes():
        tech = memattrs.topology.node_instance(node).tech
        memattrs.set_value(attr, node, None, 1.0 if tech.persistent else 0.0)
    return attr


def register_coherency_attribute(
    memattrs: MemAttrs, *, name: str = "Coherency"
) -> MemAttribute:
    """Cache-coherency of peripheral-exposed memory (§VIII's closing
    question: "additional attributes for describing different
    constraints, for example in terms of coherency or availability").

    1.0 = fully coherent with host caches (DRAM/HBM/NVDIMM/CXL.mem);
    0.0 = device memory whose coherence needs explicit management (GPU
    memory over NVLink, network-attached memory).
    """
    from ..hw.techs import MemoryKind

    attr = memattrs.register(
        name,
        MemAttrFlag.HIGHER_FIRST,
        unit="bool",
        description="Whether host caches stay coherent with the target",
    )
    non_coherent = {MemoryKind.GPU, MemoryKind.NAM}
    for node in memattrs.topology.numanodes():
        kind = memattrs.topology.node_instance(node).kind
        memattrs.set_value(
            attr, node, None, 0.0 if kind in non_coherent else 1.0
        )
    return attr


def register_availability_attribute(
    memattrs: MemAttrs, *, name: str = "Availability"
) -> MemAttribute:
    """Availability of disaggregated memory (§II-C / §VIII).

    Node-local memory is always reachable (1.0); network-attached memory
    depends on the fabric and the remote pool (modeled at 0.99, i.e.
    lower-ranked whenever a local alternative exists).
    """
    from ..hw.spec import AttachLevel

    attr = memattrs.register(
        name,
        MemAttrFlag.HIGHER_FIRST,
        unit="fraction",
        description="Probability the target is reachable when needed",
    )
    for node in memattrs.topology.numanodes():
        inst = memattrs.topology.node_instance(node)
        remote_fabric = inst.attach_level == AttachLevel.MACHINE
        memattrs.set_value(attr, node, None, 0.99 if remote_fabric else 1.0)
    return attr
