"""Target ranking helpers.

Thin functional layer over :meth:`MemAttrs.rank_targets` adding the
secondary-criterion composition the paper describes in §III-B2: when the
primary attribute ties (KNL: DRAM and HBM latencies are similar), break
the tie with another attribute (capacity — don't burn scarce HBM when it
buys nothing).

Composed rankings are memoized in the owning :class:`MemAttrs`' query
cache (family ``"rank_tiebreak"``), keyed by its generation — the hot
``rank_for`` path of the heterogeneous allocator lands here on every
``mem_alloc``.
"""

from __future__ import annotations

from ..errors import NoTargetError, TopologyError, UnknownAttributeError
from ..topology.traversal import as_cpuset
from .api import MemAttrs, TargetValue
from .attrs import MemAttribute
from .querycache import MISSING

__all__ = ["rank_targets", "best_target_with_tiebreak"]


def rank_targets(
    memattrs: MemAttrs,
    attr: MemAttribute | str,
    initiator=None,
    *,
    targets=None,
    tie_attr: MemAttribute | str | None = None,
    tie_tolerance: float = 0.0,
) -> tuple[TargetValue, ...]:
    """Rank targets by ``attr``; optionally re-rank near-ties by ``tie_attr``.

    Two values tie when they differ by at most ``tie_tolerance`` (relative,
    e.g. ``0.1`` = 10%).  Tied runs are reordered best-first by
    ``tie_attr``.
    """
    if targets is None:
        if initiator is None:
            targets = memattrs.topology.numanodes()
        else:
            targets = memattrs.get_local_numanode_objs(initiator)
    else:
        targets = tuple(targets)
    cache_key = _tiebreak_cache_key(
        memattrs, attr, initiator, targets, tie_attr, tie_tolerance
    )
    if cache_key is not None:
        cached = memattrs.query_cache.get("rank_tiebreak", cache_key)
        if cached is not MISSING:
            return cached

    primary = memattrs.rank_targets(attr, targets, initiator)
    if tie_attr is None or len(primary) < 2:
        result = primary
    else:
        out: list[TargetValue] = []
        i = 0
        while i < len(primary):
            j = i + 1
            while j < len(primary) and _ties(
                primary[i].value, primary[j].value, tie_tolerance
            ):
                j += 1
            run = list(primary[i:j])
            if len(run) > 1:
                rerank = memattrs.rank_targets(
                    tie_attr, [tv.target for tv in run], initiator
                )
                reranked_targets = [tv.target for tv in rerank]
                # Targets lacking the tie attribute keep their primary position
                # at the end of the run.
                missing = [tv for tv in run if tv.target not in reranked_targets]
                by_target = {tv.target: tv for tv in run}
                run = [by_target[t] for t in reranked_targets] + missing
            out.extend(run)
            i = j
        # Re-ranking within tied runs never moves a strictly-better primary
        # value below a strictly-worse one.
        assert len(out) == len(primary)
        result = tuple(out)

    if cache_key is not None:
        memattrs.query_cache.store("rank_tiebreak", cache_key, result)
    return result


def _tiebreak_cache_key(
    memattrs: MemAttrs,
    attr: MemAttribute | str,
    initiator,
    targets: tuple,
    tie_attr: MemAttribute | str | None,
    tie_tolerance: float,
):
    """Key for one composed ranking, or ``None`` when the query is
    malformed / uncacheable — the uncached path then raises exactly as
    it always did."""
    try:
        primary = memattrs.get_by_name(
            attr if isinstance(attr, str) else attr.name
        )
        tie = (
            memattrs.get_by_name(
                tie_attr if isinstance(tie_attr, str) else tie_attr.name
            )
            if tie_attr is not None
            else None
        )
    except UnknownAttributeError:
        return None
    needs_initiator = primary.needs_initiator or (
        tie is not None and tie.needs_initiator
    )
    if initiator is None:
        if needs_initiator:
            return None
        init_key = None
    else:
        try:
            init_key = as_cpuset(
                memattrs.topology, initiator, cache=memattrs.query_cache
            )
        except TopologyError:
            return None
    return (
        memattrs.generation,
        primary.id,
        None if tie is None else tie.id,
        float(tie_tolerance),
        tuple(id(t) for t in targets),
        init_key,
    )


def _ties(a: float, b: float, tolerance: float) -> bool:
    if tolerance <= 0:
        return a == b
    scale = max(abs(a), abs(b))
    return scale == 0 or abs(a - b) <= tolerance * scale


def best_target_with_tiebreak(
    memattrs: MemAttrs,
    attr: MemAttribute | str,
    initiator,
    *,
    tie_attr: MemAttribute | str | None = None,
    tie_tolerance: float = 0.1,
) -> TargetValue:
    """Best local target with near-tie resolution (§III-B2's KNL case)."""
    ranked = rank_targets(
        memattrs,
        attr,
        initiator,
        tie_attr=tie_attr,
        tie_tolerance=tie_tolerance,
    )
    if not ranked:
        raise NoTargetError(
            f"no local target carries a value for {attr!r}"
        )
    return ranked[0]
