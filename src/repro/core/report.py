"""``lstopo --memattrs`` rendering (paper Fig. 5).

Produces the exact textual shape of the paper's Fig. 5: one section per
attribute, one line per (target, initiator) value, with hwloc's display
units — Capacity in bytes, bandwidths in MB/s, latencies in integral
nanoseconds — and initiators named by the smallest topology object whose
cpuset matches (``... from Group0 L#0``).
"""

from __future__ import annotations

from ..topology.bitmap import Bitmap
from ..topology.build import Topology
from ..topology.objects import ObjType
from ..units import bytes_to_mbps_field, ns_field
from .api import MemAttrs
from .attrs import MemAttribute

__all__ = ["render_memattrs", "initiator_label"]

_NORMAL_SCOPES = (
    ObjType.PU,
    ObjType.CORE,
    ObjType.GROUP,
    ObjType.PACKAGE,
    ObjType.MACHINE,
)


def initiator_label(topology: Topology, cpuset: Bitmap) -> str:
    """Name an initiator cpuset by the smallest matching normal object."""
    for scope in _NORMAL_SCOPES:
        for obj in topology.objs(scope):
            if obj.cpuset == cpuset:
                if obj.type is ObjType.GROUP:
                    return f"{obj.subtype or 'Group'} L#{obj.logical_index}"
                return f"{obj.type.value} L#{obj.logical_index}"
    # Fall back to the smallest object covering the cpuset.
    for scope in _NORMAL_SCOPES:
        for obj in topology.objs(scope):
            if obj.cpuset.includes(cpuset):
                return f"{obj.type.value} L#{obj.logical_index}"
    return f"cpuset {cpuset.to_list_syntax()}"


def _format_value(attr: MemAttribute, value: float) -> str:
    if attr.unit == "MB/s":
        return str(bytes_to_mbps_field(value))
    if attr.unit == "ns":
        return str(ns_field(value))
    if attr.unit == "bytes":
        return str(int(value))
    if attr.unit == "PUs":
        return str(int(value))
    return f"{value:g}"


def render_memattrs(
    memattrs: MemAttrs,
    *,
    only: tuple[str, ...] | None = None,
    skip_empty: bool = True,
) -> str:
    """Render every attribute's values, Fig. 5 style."""
    topology = memattrs.topology
    lines: list[str] = []
    for attr in memattrs.attributes():
        if only is not None and attr.name not in only:
            continue
        section: list[str] = [f"Memory attribute #{attr.id} name '{attr.name}'"]
        for node in sorted(topology.numanodes(), key=lambda n: n.logical_index):
            per_initiator = memattrs._store.get_map(attr.id, node.os_index)
            if not attr.needs_initiator:
                if None in per_initiator:
                    section.append(
                        f"  NUMANode L#{node.logical_index} = "
                        f"{_format_value(attr, per_initiator[None])}"
                    )
                continue
            for cpuset in sorted(
                (k for k in per_initiator if k is not None),
                key=lambda b: (b.first(), b.weight()),
            ):
                label = initiator_label(topology, cpuset)
                section.append(
                    f"  NUMANode L#{node.logical_index} = "
                    f"{_format_value(attr, per_initiator[cpuset])} from {label}"
                )
        if len(section) > 1 or not skip_empty:
            lines.extend(section)
    return "\n".join(lines)
