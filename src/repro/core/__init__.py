"""Memory performance attributes — the paper's primary contribution.

This package is the Python equivalent of hwloc's ``hwloc/memattrs.h``
(released in hwloc 2.3; paper §IV).  Memory **targets** (NUMA nodes) are
characterized by **attributes** — Capacity, Locality, Bandwidth, Latency,
their Read/Write variants, and user-registered custom metrics — whose
values may depend on the **initiator** (a cpuset or topology object)
performing the access.

The main entry point is :class:`MemAttrs`, which owns the attribute
registry and the per-(target, initiator) value store for one topology and
offers the queries of the paper's Fig. 4:

* :meth:`MemAttrs.get_local_numanode_objs`
* :meth:`MemAttrs.get_best_target`
* :meth:`MemAttrs.get_best_initiator`
* :meth:`MemAttrs.get_value` / :meth:`MemAttrs.set_value`

Values arrive through two discovery paths (§IV-A): natively from the
platform firmware via :func:`discover_from_sysfs`, or experimentally via
:func:`repro.bench.runner.feed_attributes`.
"""

from .attrs import (
    MemAttrFlag,
    MemAttribute,
    CAPACITY,
    LOCALITY,
    BANDWIDTH,
    LATENCY,
    READ_BANDWIDTH,
    WRITE_BANDWIDTH,
    READ_LATENCY,
    WRITE_LATENCY,
    BUILTIN_ATTRIBUTES,
)
from .api import MemAttrs
from .discovery import discover_from_sysfs, native_discovery
from .querycache import (
    CacheStats,
    QueryCache,
    consistent_read,
    render_cache_stats,
)
from .ranking import rank_targets
from .custom import register_derived_attribute, stream_triad_attribute
from .dynamic import (
    refresh_available_capacity,
    register_availability_attribute,
    register_coherency_attribute,
    register_endurance_attribute,
    register_memside_cache_attribute,
    register_persistence_attribute,
    register_power_attribute,
)
from .report import render_memattrs

__all__ = [
    "MemAttrFlag",
    "MemAttribute",
    "CAPACITY",
    "LOCALITY",
    "BANDWIDTH",
    "LATENCY",
    "READ_BANDWIDTH",
    "WRITE_BANDWIDTH",
    "READ_LATENCY",
    "WRITE_LATENCY",
    "BUILTIN_ATTRIBUTES",
    "MemAttrs",
    "discover_from_sysfs",
    "native_discovery",
    "CacheStats",
    "QueryCache",
    "consistent_read",
    "render_cache_stats",
    "rank_targets",
    "register_derived_attribute",
    "stream_triad_attribute",
    "refresh_available_capacity",
    "register_power_attribute",
    "register_endurance_attribute",
    "register_memside_cache_attribute",
    "register_coherency_attribute",
    "register_availability_attribute",
    "register_persistence_attribute",
    "render_memattrs",
]
