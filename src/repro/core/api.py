"""The memory-attributes API façade (paper Fig. 4).

:class:`MemAttrs` binds an attribute registry and a value store to one
topology.  Builtin Capacity and Locality values are populated from the
topology itself ("always supported" in the paper's Table I); Bandwidth and
Latency values arrive from firmware discovery or benchmarking.

Initiator semantics follow hwloc: values are stored against the cpuset of
the initiator that measured/reported them (typically a whole SubNUMA
cluster or package).  Queries with a *smaller* cpuset (a single PU of that
cluster) match the smallest stored initiator containing it; exact matches
win.  Queries with a non-matching initiator raise
:class:`~repro.errors.NoValueError`, mirroring hwloc's error return.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import (
    AttributeFlagError,
    NoTargetError,
    NoValueError,
    TopologyError,
    UnknownAttributeError,
)
from ..obs import OBS
from ..topology.bitmap import Bitmap
from ..topology.build import Topology
from ..topology.objects import ObjType, TopoObject
from ..topology.traversal import (
    LocalNumanodeFlags,
    as_cpuset,
    get_local_numanode_objs,
)
from .attrs import (
    BUILTIN_ATTRIBUTES,
    CAPACITY,
    LOCALITY,
    MemAttrFlag,
    MemAttribute,
)
from .querycache import MISSING, QueryCache

__all__ = ["MemAttrs", "TargetValue"]


@dataclass(frozen=True)
class TargetValue:
    """One (target, value) answer from a ranking query."""

    target: TopoObject
    value: float
    initiator: Bitmap | None = None


@dataclass
class _Store:
    """Value store: attr id → target os index → initiator cpuset → value."""

    values: dict[int, dict[int, dict[Bitmap | None, float]]] = field(
        default_factory=dict
    )

    def put(
        self, attr_id: int, target: int, initiator: Bitmap | None, value: float
    ) -> None:
        self.values.setdefault(attr_id, {}).setdefault(target, {})[initiator] = value

    def get_map(self, attr_id: int, target: int) -> dict[Bitmap | None, float]:
        return self.values.get(attr_id, {}).get(target, {})

    def targets_with_values(self, attr_id: int) -> tuple[int, ...]:
        return tuple(sorted(self.values.get(attr_id, {})))


class MemAttrs:
    """Memory attributes of one topology."""

    def __init__(self, topology: Topology, *, query_cache: QueryCache | None = None) -> None:
        self.topology = topology
        self._attrs: dict[str, MemAttribute] = {}
        self._store = _Store()
        self._next_custom_id = 64  # leave room below for future builtins
        #: Memoized query engine; every cache key embeds :attr:`generation`
        #: so entries recorded before a mutation can never be served after.
        self.query_cache = query_cache if query_cache is not None else QueryCache()
        self._generation = 0
        for attr in BUILTIN_ATTRIBUTES:
            self._attrs[attr.name.lower()] = attr
        self._populate_builtin_values()

    @property
    def generation(self) -> int:
        """Bumped on every ``set_value``/``register``; cached query answers
        are keyed by it, which is what invalidates them."""
        return self._generation

    def _bump_generation(self) -> None:
        self._generation += 1
        self.query_cache.invalidate()
        if OBS.enabled:
            OBS.metrics.counter("core.generation_bumps").inc()

    def cache_stats(self) -> dict:
        """Hit/miss/invalidation counters of the query engine."""
        stats = self.query_cache.stats()
        stats["generation"] = self._generation
        return stats

    def notify_topology_event(
        self, event: str = "topology", node: int | None = None
    ) -> None:
        """The machine changed under us (node offline/online, co-tenant
        capacity shift): bump the generation so every memoized query —
        rankings, fallback chains, initiator matches — is invalidated
        exactly as an attribute update would.

        The kernel layer fires this through a topology listener
        (:meth:`repro.kernel.KernelMemoryManager.add_topology_listener`);
        the heterogeneous allocator wires the two together.
        """
        self._bump_generation()
        if OBS.enabled:
            OBS.metrics.counter("core.topology_events", event=event).inc()

    def degrade_target(
        self, attr: MemAttribute | str, target: TopoObject, factor: float
    ) -> int:
        """Scale every stored value of ``attr`` for one target by ``factor``.

        This is the staleness/degradation fault model of
        :mod:`repro.resilience`: co-tenant interference makes measured
        bandwidth values optimistic (``factor < 1``) or latencies
        pessimistic (``factor > 1``).  Returns how many stored values were
        rescaled; the generation is bumped when any were.
        """
        attr = self._resolve(attr)
        self._check_target(target)
        if factor <= 0:
            raise AttributeFlagError("degradation factor must be positive")
        per_initiator = self._store.get_map(attr.id, target.os_index)
        for key in per_initiator:
            per_initiator[key] *= factor
        if per_initiator:
            self._bump_generation()
            if OBS.enabled:
                OBS.metrics.counter(
                    "core.values_degraded", attribute=attr.name
                ).inc(len(per_initiator))
        return len(per_initiator)

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        flags: MemAttrFlag,
        *,
        unit: str = "",
        description: str = "",
    ) -> MemAttribute:
        """Register a custom attribute (paper §IV, Table I last row).

        Custom metrics let users characterize memories "under specific
        circumstances", e.g. a STREAM-Triad score combining read and write
        bandwidth.
        """
        key = name.lower()
        if key in self._attrs:
            raise AttributeFlagError(f"attribute {name!r} already registered")
        attr = MemAttribute(
            id=self._next_custom_id,
            name=name,
            flags=flags,
            unit=unit,
            description=description,
        )
        self._next_custom_id += 1
        self._attrs[key] = attr
        self._bump_generation()
        return attr

    def get_by_name(self, name: str) -> MemAttribute:
        try:
            return self._attrs[name.lower()]
        except KeyError:
            known = ", ".join(sorted(a.name for a in self._attrs.values()))
            raise UnknownAttributeError(
                f"unknown attribute {name!r}; known: {known}"
            ) from None

    def attributes(self) -> tuple[MemAttribute, ...]:
        return tuple(sorted(self._attrs.values(), key=lambda a: a.id))

    def _resolve(self, attr: MemAttribute | str) -> MemAttribute:
        if isinstance(attr, MemAttribute):
            # Accept only attributes registered here (or builtins).
            return self.get_by_name(attr.name)
        return self.get_by_name(attr)

    # ------------------------------------------------------------------
    # values
    # ------------------------------------------------------------------
    def set_value(
        self,
        attr: MemAttribute | str,
        target: TopoObject,
        initiator,
        value: float,
    ) -> None:
        """Record a value (external sources path of the paper's Table I)."""
        attr = self._resolve(attr)
        self._check_target(target)
        if attr.needs_initiator:
            if initiator is None:
                raise AttributeFlagError(
                    f"attribute {attr.name} needs an initiator"
                )
            key: Bitmap | None = as_cpuset(
                self.topology, initiator, cache=self.query_cache
            )
        else:
            if initiator is not None:
                raise AttributeFlagError(
                    f"attribute {attr.name} takes no initiator"
                )
            key = None
        if value < 0:
            raise AttributeFlagError(f"{attr.name} value must be non-negative")
        self._store.put(attr.id, target.os_index, key, float(value))
        self._bump_generation()

    def get_value(
        self,
        attr: MemAttribute | str,
        target: TopoObject,
        initiator=None,
    ) -> float:
        """``hwloc_memattr_get_value`` (paper Fig. 4, third call)."""
        attr = self._resolve(attr)
        self._check_target(target)
        per_initiator = self._store.get_map(attr.id, target.os_index)
        if not attr.needs_initiator:
            if initiator is not None:
                raise AttributeFlagError(f"attribute {attr.name} takes no initiator")
            if None not in per_initiator:
                raise NoValueError(f"no {attr.name} value for {target.label}")
            return per_initiator[None]
        if initiator is None:
            raise AttributeFlagError(f"attribute {attr.name} needs an initiator")
        cpuset = as_cpuset(self.topology, initiator, cache=self.query_cache)
        cache_key = (self._generation, attr.id, target.os_index, cpuset)
        match = self.query_cache.get("match_initiator", cache_key)
        if match is MISSING:
            match = self._match_initiator(per_initiator, cpuset)
            self.query_cache.store("match_initiator", cache_key, match)
        if match is None:
            raise NoValueError(
                f"no {attr.name} value for {target.label} from initiator "
                f"{cpuset.to_list_syntax()!r}"
            )
        return per_initiator[match]

    @staticmethod
    def _match_initiator(
        per_initiator: dict[Bitmap | None, float], cpuset: Bitmap
    ) -> Bitmap | None:
        """Exact match first, else the smallest stored initiator ⊇ query.

        Equal-weight candidates tie-break on the lowest first set bit
        (then remaining bits, lexicographically) — never on dict
        insertion order, so the answer is stable across value-feeding
        orders.
        """
        if cpuset in per_initiator:
            return cpuset
        best: Bitmap | None = None
        best_rank: tuple[int, tuple[int, ...]] | None = None
        for stored in per_initiator:
            if stored is None or not stored.includes(cpuset):
                continue
            rank = (stored.weight(), tuple(stored))
            if best_rank is None or rank < best_rank:
                best, best_rank = stored, rank
        return best

    def has_values(self, attr: MemAttribute | str) -> bool:
        """Whether any target carries a value for this attribute —
        the allocator's attribute-fallback test (§IV-B)."""
        attr = self._resolve(attr)
        return bool(self._store.targets_with_values(attr.id))

    # ------------------------------------------------------------------
    # queries of Fig. 4
    # ------------------------------------------------------------------
    def get_local_numanode_objs(
        self, initiator, flags: LocalNumanodeFlags | None = None
    ) -> tuple[TopoObject, ...]:
        """Memory targets local to an initiator (Fig. 4, first call)."""
        return get_local_numanode_objs(
            self.topology, initiator, flags, cache=self.query_cache
        )

    def get_best_target(
        self,
        attr: MemAttribute | str,
        initiator=None,
        *,
        local_only: bool = True,
    ) -> TargetValue:
        """``hwloc_memattr_get_best_target`` (Fig. 4, second call).

        Considers the targets local to the initiator (NUMA affinity first,
        then memory-kind affinity — §IV), unless ``local_only=False``.
        Raises :class:`NoTargetError` when no candidate has a value.
        """
        attr = self._resolve(attr)
        if attr.needs_initiator or local_only:
            if initiator is None:
                raise AttributeFlagError(
                    f"get_best_target({attr.name}) requires an initiator"
                )
        if local_only:
            candidates = self.get_local_numanode_objs(initiator)
        else:
            candidates = self.topology.numanodes()
        ranked = self.rank_targets(attr, candidates, initiator)
        if not ranked:
            raise NoTargetError(
                f"no target carries a {attr.name} value "
                f"({'local to initiator' if local_only else 'anywhere'})"
            )
        return ranked[0]

    def get_best_initiator(
        self, attr: MemAttribute | str, target: TopoObject
    ) -> TargetValue:
        """``hwloc_memattr_get_best_initiator``: the initiator with the best
        value for a target (who should run near this memory)."""
        attr = self._resolve(attr)
        if not attr.needs_initiator:
            raise AttributeFlagError(
                f"attribute {attr.name} has no initiators"
            )
        self._check_target(target)
        per_initiator = self._store.get_map(attr.id, target.os_index)
        best_key: Bitmap | None = None
        best_val = 0.0
        for key, value in per_initiator.items():
            if key is None:
                continue
            if best_key is None or attr.better(value, best_val):
                best_key, best_val = key, value
        if best_key is None:
            raise NoValueError(
                f"no {attr.name} values with initiators for {target.label}"
            )
        return TargetValue(target=target, value=best_val, initiator=best_key)

    def rank_targets(
        self,
        attr: MemAttribute | str,
        targets,
        initiator=None,
    ) -> tuple[TargetValue, ...]:
        """Order targets best-first by an attribute, skipping valueless ones.

        This is the ranking the heterogeneous allocator walks on capacity
        fallback (§IV-B).  Ties keep logical order (stable), letting
        callers apply secondary criteria themselves (§III-B2: on KNL,
        latency ties between DRAM and HBM are broken by capacity at a
        higher level).
        """
        attr = self._resolve(attr)
        targets = tuple(targets)
        cache_key = self._rank_cache_key(attr, targets, initiator)
        if cache_key is not None:
            cached = self.query_cache.get("rank_targets", cache_key)
            if cached is not MISSING:
                return cached
        scored: list[TargetValue] = []
        for target in targets:
            try:
                value = self.get_value(attr, target, initiator if attr.needs_initiator else None)
            except NoValueError:
                continue
            scored.append(TargetValue(target=target, value=value))
        scored.sort(
            key=lambda tv: (-tv.value if attr.higher_is_better else tv.value)
        )
        ranked = tuple(scored)
        if cache_key is not None:
            self.query_cache.store("rank_targets", cache_key, ranked)
        if OBS.enabled:
            OBS.metrics.counter("core.rankings_computed", attribute=attr.name).inc()
        return ranked

    def _rank_cache_key(self, attr: MemAttribute, targets, initiator):
        """Key for one ranking: (generation, attr id, target ids,
        normalized initiator).  ``None`` when the query is malformed —
        the uncached path then raises exactly as before."""
        if attr.needs_initiator:
            if initiator is None:
                return None
            try:
                init_key: Bitmap | None = as_cpuset(
                    self.topology, initiator, cache=self.query_cache
                )
            except TopologyError:
                return None
        else:
            init_key = None
        return (
            self._generation,
            attr.id,
            tuple(id(t) for t in targets),
            init_key,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_target(self, target: TopoObject) -> None:
        if target.type is not ObjType.NUMANODE:
            raise AttributeFlagError(
                f"memory targets must be NUMANode objects, got {target.label}"
            )

    def _populate_builtin_values(self) -> None:
        """Capacity and Locality come straight from the topology
        ("Always supported" row of the paper's Table I)."""
        for node in self.topology.numanodes():
            self._store.put(
                CAPACITY.id, node.os_index, None, float(node.attrs["capacity"])
            )
            self._store.put(
                LOCALITY.id, node.os_index, None, float(node.cpuset.weight())
            )
