"""repro — reproduction of *Using Performance Attributes for Managing
Heterogeneous Memory in HPC Applications* (Goglin & Rubio Proaño,
PDSEC/IPDPS 2022).

The package layers, bottom to top:

* :mod:`repro.hw` — declarative platform models (KNL, Xeon+NVDIMM, ...).
* :mod:`repro.firmware` — synthetic ACPI SRAT/SLIT/HMAT + virtual sysfs.
* :mod:`repro.kernel` — Linux-like NUMA page allocator, policies, migration.
* :mod:`repro.topology` — hwloc-like object tree, bitmaps, lstopo rendering.
* :mod:`repro.core` — **the paper's memory-attributes API** (hwloc memattrs).
* :mod:`repro.sim` — analytic memory-performance simulator.
* :mod:`repro.bench` — STREAM / lat_mem_rd / multichase feeding attributes.
* :mod:`repro.alloc` — **the heterogeneous allocator** ``mem_alloc(..., attr)``.
* :mod:`repro.profiler` — VTune-style Memory Access analysis.
* :mod:`repro.sensitivity` — benchmarking / profiling / static methods.
* :mod:`repro.apps` — Graph500, STREAM and pointer-chase workloads.
* :mod:`repro.omp` — OpenMP memory spaces and allocators on top.
* :mod:`repro.serve` — multi-tenant placement daemon (``repro-serve``).

Quickstart::

    from repro import quick_setup
    setup = quick_setup("knl-snc4-flat")
    buf = setup.allocator.mem_alloc(1 << 30, "Bandwidth", initiator=0)
    print(buf.describe())          # lands on the local MCDRAM
"""

from __future__ import annotations

from dataclasses import dataclass

from . import (
    alloc,
    apps,
    baselines,
    bench,
    core,
    errors,
    firmware,
    hw,
    kernel,
    obs,
    omp,
    profiler,
    resilience,
    sensitivity,
    serve,
    sim,
    topology,
    units,
)
from .alloc import HeterogeneousAllocator
from .bench import characterize_machine, feed_attributes
from .core import MemAttrs, native_discovery
from .hw import MachineSpec, get_platform
from .kernel import KernelMemoryManager
from .sim import SimEngine
from .topology import Topology, build_topology

__version__ = "1.0.0"

__all__ = [
    "alloc",
    "apps",
    "baselines",
    "bench",
    "core",
    "errors",
    "firmware",
    "hw",
    "kernel",
    "obs",
    "omp",
    "profiler",
    "resilience",
    "sensitivity",
    "serve",
    "sim",
    "topology",
    "units",
    "ReproSetup",
    "quick_setup",
    "__version__",
]


@dataclass
class ReproSetup:
    """Everything wired together for one machine."""

    machine: MachineSpec
    topology: Topology
    engine: SimEngine
    memattrs: MemAttrs
    kernel: KernelMemoryManager
    allocator: HeterogeneousAllocator


def quick_setup(
    platform: str = "xeon-cascadelake-1lm",
    *,
    benchmark: bool | None = None,
    **platform_kwargs,
) -> ReproSetup:
    """Build the full stack for a preset platform.

    Attributes come from native HMAT discovery when the platform firmware
    provides one, else from the benchmark sweep; pass ``benchmark=True``
    to force benchmarking (it also measures remote accesses).
    """
    machine = get_platform(platform, **platform_kwargs)
    topo = build_topology(machine)
    engine = SimEngine(machine, topo)
    if benchmark is None:
        benchmark = not machine.has_hmat
    if benchmark:
        memattrs = MemAttrs(topo)
        feed_attributes(memattrs, characterize_machine(engine))
    else:
        memattrs = native_discovery(topo)
    km = KernelMemoryManager(machine)
    allocator = HeterogeneousAllocator(memattrs, km)
    # Tie the engine's pricing memo (and compiled-phase validity) to the
    # attribute store's generation so degraded attrs never serve stale
    # prices.
    engine.bind_attrs(memattrs)
    return ReproSetup(
        machine=machine,
        topology=topo,
        engine=engine,
        memattrs=memattrs,
        kernel=km,
        allocator=allocator,
    )
