"""Attribute fallback chains (paper §IV-B).

"If the attribute is not available on the platform, the allocator may
also fallback to other similar attributes, for instance *Bandwidth*
instead of *Read Bandwidth*."  Chains end at Capacity, which the topology
always provides, so ``mem_alloc`` can always produce *some* ranking.
"""

from __future__ import annotations

from ..core.api import MemAttrs
from ..core.attrs import MemAttribute
from ..core.querycache import MISSING
from ..errors import UnknownAttributeError
from ..obs import OBS

__all__ = ["DEFAULT_ATTRIBUTE_FALLBACK", "attribute_fallback_chain"]

#: attribute name -> ordered similar attributes to try instead.
DEFAULT_ATTRIBUTE_FALLBACK: dict[str, tuple[str, ...]] = {
    "ReadBandwidth": ("Bandwidth", "WriteBandwidth", "Capacity"),
    "WriteBandwidth": ("Bandwidth", "ReadBandwidth", "Capacity"),
    "Bandwidth": ("ReadBandwidth", "WriteBandwidth", "Capacity"),
    "ReadLatency": ("Latency", "WriteLatency", "Capacity"),
    "WriteLatency": ("Latency", "ReadLatency", "Capacity"),
    "Latency": ("ReadLatency", "WriteLatency", "Capacity"),
    "Locality": ("Capacity",),
    "Capacity": (),
}


def attribute_fallback_chain(
    memattrs: MemAttrs,
    attribute: MemAttribute | str,
    *,
    overrides: dict[str, tuple[str, ...]] | None = None,
) -> tuple[MemAttribute, ...]:
    """The requested attribute followed by its fallbacks, resolved.

    Unknown names raise; custom attributes without a configured chain
    fall back to Capacity.  Resolved chains are memoized in the
    ``MemAttrs`` query cache (family ``"fallback_chain"``) keyed by its
    generation, since ``register`` can extend what a chain resolves to.
    """
    attr = memattrs.get_by_name(
        attribute if isinstance(attribute, str) else attribute.name
    )
    overrides_key = (
        None
        if overrides is None
        else tuple(sorted((k, tuple(v)) for k, v in overrides.items()))
    )
    cache_key = (memattrs.generation, attr.id, overrides_key)
    cached = memattrs.query_cache.get("fallback_chain", cache_key)
    if cached is not MISSING:
        return cached
    table = dict(DEFAULT_ATTRIBUTE_FALLBACK)
    if overrides:
        table.update(overrides)
    names = table.get(attr.name)
    if names is None:
        names = ("Capacity",)
    chain: list[MemAttribute] = [attr]
    for name in names:
        try:
            nxt = memattrs.get_by_name(name)
        except UnknownAttributeError:
            continue
        if nxt not in chain:
            chain.append(nxt)
    resolved = tuple(chain)
    memattrs.query_cache.store("fallback_chain", cache_key, resolved)
    if OBS.enabled:
        OBS.metrics.counter(
            "alloc.fallback_chains_resolved", attribute=attr.name
        ).inc()
        OBS.metrics.histogram("alloc.fallback_chain_len").observe(len(resolved))
    return resolved
