"""Phase-aware migration decisions (§VII).

"[Migration] is quite expensive in operating systems.  Hence, it should
likely be avoided unless the application behavior changes significantly
between phases."  :class:`PhaseManager` turns that sentence into a
procedure: before a phase starts, price the phase under the current
placement and under the placement a migration would produce, and migrate
only when the predicted saving exceeds the kernel's migration cost (times
a safety factor).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AllocationError
from ..kernel.migration import estimate_migration
from ..sim.access import KernelPhase, Placement
from ..sim.engine import SimEngine
from .allocator import Buffer, HeterogeneousAllocator

__all__ = ["MigrationDecision", "PhaseManager"]


@dataclass(frozen=True)
class MigrationDecision:
    """The outcome of one migrate-or-not evaluation."""

    buffer: str
    target_attribute: str
    migrate: bool
    current_phase_seconds: float
    migrated_phase_seconds: float
    migration_cost_seconds: float

    @property
    def predicted_saving(self) -> float:
        return self.current_phase_seconds - (
            self.migrated_phase_seconds + self.migration_cost_seconds
        )

    def describe(self) -> str:
        verdict = "MIGRATE" if self.migrate else "STAY"
        return (
            f"{verdict} {self.buffer} -> best[{self.target_attribute}]: "
            f"phase {self.current_phase_seconds:.3f}s vs "
            f"{self.migrated_phase_seconds:.3f}s + "
            f"{self.migration_cost_seconds:.3f}s migration"
        )


class PhaseManager:
    """Decides and applies phase-boundary migrations."""

    def __init__(
        self,
        allocator: HeterogeneousAllocator,
        engine: SimEngine,
        *,
        safety_factor: float = 1.2,
    ) -> None:
        if safety_factor < 1.0:
            raise AllocationError("safety_factor must be >= 1")
        self.allocator = allocator
        self.engine = engine
        self.safety_factor = safety_factor

    # ------------------------------------------------------------------
    def evaluate(
        self,
        buffer: Buffer | str,
        attribute: str,
        next_phases: tuple[KernelPhase, ...],
        *,
        pus: tuple[int, ...],
    ) -> MigrationDecision:
        """Would migrating ``buffer`` to the best ``attribute`` target pay
        off over ``next_phases``?"""
        buffer = self.allocator._resolve_buffer(buffer)
        placement_now = self.allocator.placement()
        current = self.engine.price_run(next_phases, placement_now, pus=pus)

        _, ranked = self.allocator.rank_for(attribute, buffer.initiator)
        dest = None
        for tv in ranked:
            node = tv.target.os_index
            already = buffer.allocation.fraction_on(node)
            if already >= 0.999:
                break  # already there: nothing to gain
            needed = buffer.size * (1 - already)
            if self.allocator.kernel.free_bytes(node) >= needed:
                dest = node
                break
        if dest is None:
            return MigrationDecision(
                buffer=buffer.name,
                target_attribute=attribute,
                migrate=False,
                current_phase_seconds=current.seconds,
                migrated_phase_seconds=current.seconds,
                migration_cost_seconds=0.0,
            )

        hypothetical = Placement(dict(placement_now.fractions))
        hypothetical.set(buffer.name, {dest: 1.0})
        migrated = self.engine.price_run(next_phases, hypothetical, pus=pus)

        moved = {
            node: pages
            for node, pages in buffer.allocation.pages_by_node.items()
            if node != dest
        }
        cost = estimate_migration(
            self.engine.machine,
            moved,
            dest,
            page_size=buffer.allocation.page_size,
        ).estimated_seconds

        worthwhile = (
            current.seconds
            > (migrated.seconds + cost) * self.safety_factor
        )
        return MigrationDecision(
            buffer=buffer.name,
            target_attribute=attribute,
            migrate=worthwhile,
            current_phase_seconds=current.seconds,
            migrated_phase_seconds=migrated.seconds,
            migration_cost_seconds=cost,
        )

    def apply(
        self,
        buffer: Buffer | str,
        attribute: str,
        next_phases: tuple[KernelPhase, ...],
        *,
        pus: tuple[int, ...],
    ) -> MigrationDecision:
        """Evaluate and, when worthwhile, actually migrate."""
        decision = self.evaluate(buffer, attribute, next_phases, pus=pus)
        if decision.migrate:
            self.allocator.migrate(buffer, attribute)
        return decision
