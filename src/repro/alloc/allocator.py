"""``mem_alloc(..., attribute)`` — the experimental allocator of §IV-B.

:class:`HeterogeneousAllocator` combines a :class:`~repro.core.api.MemAttrs`
(to *rank* targets) with a :class:`~repro.kernel.pagealloc.KernelMemoryManager`
(to actually *place* pages), giving applications the single-call interface
the paper proposes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..core.api import MemAttrs, TargetValue
from ..core.querycache import MISSING
from ..core.ranking import rank_targets
from ..errors import AllocationError, CapacityError, SpecError, TopologyError
from ..kernel.migration import MigrationReport
from ..kernel.pagealloc import KernelMemoryManager, PageAllocation
from ..kernel.policy import bind_policy
from ..obs import OBS
from ..sim.access import Placement
from ..topology.objects import TopoObject
from ..topology.traversal import as_cpuset
from .fallback import attribute_fallback_chain

__all__ = ["AllocRequest", "Buffer", "HeterogeneousAllocator"]

_buffer_ids = itertools.count(1)


@dataclass(frozen=True)
class AllocRequest:
    """One request of a :meth:`HeterogeneousAllocator.mem_alloc_many` batch.

    Mirrors the keyword surface of :meth:`~HeterogeneousAllocator.mem_alloc`.
    """

    size: int
    attribute: str
    initiator: object
    name: str | None = None
    allow_partial: bool = False
    allow_fallback: bool = True
    scope: str = "local"


@dataclass
class Buffer:
    """A buffer placed by the heterogeneous allocator."""

    name: str
    size: int
    requested_attribute: str
    used_attribute: str
    allocation: PageAllocation
    target: TopoObject | None          # primary target (None if fully split)
    fallback_rank: int                 # 0 = got the best target
    initiator: tuple[int, ...]
    # Allocation plan this buffer was placed by (recycling handle of the
    # warm fast path); None for buffers placed outside the fast path.
    _plan: object = field(default=None, repr=False, compare=False)

    @property
    def nodes(self) -> tuple[int, ...]:
        return self.allocation.nodes

    @property
    def is_split(self) -> bool:
        return self.allocation.is_split

    def placement_fractions(self) -> dict[int, float]:
        return {n: self.allocation.fraction_on(n) for n in self.allocation.nodes}

    def describe(self) -> str:
        where = ", ".join(
            f"node{n}:{f:.0%}" for n, f in sorted(self.placement_fractions().items())
        )
        note = "" if self.fallback_rank == 0 else f" (fallback #{self.fallback_rank})"
        return (
            f"{self.name}[{self.size}B] attr={self.requested_attribute}"
            f"->{self.used_attribute} on {where}{note}"
        )


#: Upper bound on recycled buffers kept per allocation plan.  Large
#: enough that a freed batch can be recycled wholesale, small enough
#: that pools stay negligible next to the page bookkeeping itself.
_POOL_MAX = 256


class _AllocPlan:
    """One memoized allocation plan: the resolved ranking of a
    ``(attribute, initiator, scope)`` triple, flattened for the warm path.

    A plan is valid only while ``generation`` matches the attribute
    store's — attribute updates *and* topology events (offline/online,
    co-tenant capacity shifts) bump the generation, so a stale plan can
    never place onto a dead node or follow an outdated ranking.

    ``entries`` holds the online ranked targets as
    ``(node_state, os_index, target, bind_policy, original_rank)`` tuples:
    everything the first-fit walk needs without touching the topology,
    the policy constructor, or the query cache.  ``pool`` recycles
    freed fast-path buffers (object + name + kernel allocation record)
    so a warm alloc/free cycle is a handful of counter updates.
    """

    __slots__ = (
        "generation",
        "used_attr",
        "entries",
        "state",
        "node",
        "best_rank",
        "best_node_orig",
        "best_target_orig",
        "nodeset",
        "initiator_pus",
        "pool",
    )


class HeterogeneousAllocator:
    """The paper's ``mem_alloc`` built on attributes + the kernel."""

    def __init__(
        self,
        memattrs: MemAttrs,
        kernel: KernelMemoryManager,
        *,
        attribute_fallback: dict[str, tuple[str, ...]] | None = None,
        tie_tolerance: float = 0.10,
        tie_attr: str | None = "Capacity",
    ) -> None:
        if memattrs.topology.machine_spec is not kernel.machine:
            raise SpecError("memattrs and kernel manager describe different machines")
        self.memattrs = memattrs
        self.kernel = kernel
        self._attribute_fallback = attribute_fallback
        self._overrides_key = (
            None
            if attribute_fallback is None
            else tuple(sorted((k, tuple(v)) for k, v in attribute_fallback.items()))
        )
        self.tie_tolerance = tie_tolerance
        self.tie_attr = tie_attr
        self.buffers: dict[str, Buffer] = {}
        # Warm-path plan cache: (attribute, initiator, scope) -> _AllocPlan.
        # Entries self-invalidate via the generation check; the dict itself
        # only grows with the number of distinct request triples.
        self._plans: dict[tuple, _AllocPlan] = {}
        # Hot-path aliases: one attribute load instead of two per call.
        self._qc = memattrs.query_cache
        self._kernel_live = kernel._live
        self._page_size = kernel.page_size
        # Topology events (node offline/online, co-tenant capacity shifts)
        # must invalidate the memoized rankings exactly like attribute
        # updates do, or mem_alloc would keep placing onto a dead node.
        kernel.add_topology_listener(self._on_topology_event)

    def _on_topology_event(self, event: str, node: int) -> None:
        self.memattrs.notify_topology_event(event=event, node=node)

    # ------------------------------------------------------------------
    def rank_for(
        self, attribute: str, initiator, *, scope: str = "local"
    ) -> tuple[str, tuple[TargetValue, ...]]:
        """Resolve the attribute (with fallback) and rank targets.

        ``scope="local"`` considers the initiator's local targets (the
        paper's default flow); ``scope="machine"`` ranks every node —
        the §VIII question "is it better to allocate in the local NVDIMM
        or in another DRAM?", answerable once benchmarking measured the
        remote pairs.  Returns ``(used_attribute_name, ranked_targets)``.

        This is the allocator's hot path: the resolved
        ``(used_attribute, ranking)`` pair is memoized in the MemAttrs
        query cache (family ``"alloc_rank"``) keyed by its generation,
        so repeated ``mem_alloc`` calls between attribute updates only
        re-walk the free-capacity check.
        """
        if scope not in ("local", "machine"):
            raise AllocationError(f"unknown scope {scope!r}")
        cache_key = self._rank_for_cache_key(attribute, initiator, scope)
        if cache_key is not None:
            cached = self.memattrs.query_cache.get("alloc_rank", cache_key)
            if cached is not MISSING:
                return cached
        if scope == "local":
            # Memoryless-initiator fallback: a CPU whose package has no
            # memory at all (CPU-only NUMA nodes exist) allocates from the
            # whole machine, like the kernel's zonelist would.
            local = self.memattrs.get_local_numanode_objs(initiator)
            targets = local if local else self.memattrs.topology.numanodes()
        else:
            targets = self.memattrs.topology.numanodes()
        chain = attribute_fallback_chain(
            self.memattrs, attribute, overrides=self._attribute_fallback
        )
        for attr in chain:
            if not self.memattrs.has_values(attr):
                continue
            ranked = rank_targets(
                self.memattrs,
                attr,
                initiator,
                targets=targets,
                tie_attr=self.tie_attr if self.tie_attr != attr.name else None,
                tie_tolerance=self.tie_tolerance,
            )
            if ranked:
                if cache_key is not None:
                    self.memattrs.query_cache.store(
                        "alloc_rank", cache_key, (attr.name, ranked)
                    )
                return attr.name, ranked
        raise AllocationError(
            f"no attribute in the fallback chain of {attribute!r} has values "
            "for any local target"
        )

    def _rank_for_cache_key(self, attribute: str, initiator, scope: str):
        """Key for one resolved ranking, or ``None`` when uncacheable (the
        uncached path then raises exactly as before)."""
        try:
            init_key = as_cpuset(
                self.memattrs.topology, initiator, cache=self.memattrs.query_cache
            )
        except TopologyError:
            return None
        return (
            self.memattrs.generation,
            attribute.lower() if isinstance(attribute, str) else attribute,
            init_key,
            scope,
            self.tie_attr,
            self.tie_tolerance,
            self._overrides_key,
        )

    # ------------------------------------------------------------------
    def mem_alloc(
        self,
        size: int,
        attribute: str,
        initiator,
        *,
        name: str | None = None,
        allow_partial: bool = False,
        allow_fallback: bool = True,
        scope: str = "local",
    ) -> Buffer:
        """Allocate ``size`` bytes on the best local target for ``attribute``.

        The default reproduces hwloc's allocator: walk the target ranking
        on capacity exhaustion, placing the **whole buffer** on the first
        target that fits.  ``allow_partial=True`` switches to the *hybrid
        allocation* alternative of §VII: fill the best target first and
        spill the remainder down the ranking — more fast-memory use, at
        the price of the irregular performance the paper warns about.
        ``allow_fallback=False`` insists on the best-ranked target
        (strict binding): the request fails when it is full, like the
        whole-process-binding runs of Tables II/III.
        """
        if OBS.enabled:
            # Sampling gate: with obs.enable(sample_every=N) only every
            # N-th request pays for span + metric recording; the rest run
            # the same placement logic untraced.
            skip = OBS.hot_countdown
            if skip:
                OBS.hot_countdown = skip - 1
            else:
                OBS.hot_countdown = OBS.sample_every - 1
                return self._mem_alloc_traced(
                    size, attribute, initiator, name,
                    allow_partial, allow_fallback, scope,
                )
        # Warm fast path — recycle a pooled buffer of the valid plan for
        # this request triple.  Twin of _fast_alloc (keep in lockstep):
        # inlined here because a delegating call costs more than the
        # entire recycle.
        if name is None and allow_fallback and not allow_partial:
            try:
                plan = self._plans.get((attribute, initiator, scope))
            except TypeError:
                plan = None
            if (
                plan is not None
                and plan.generation == self.memattrs._generation
                and self._qc.enabled
            ):
                pool = plan.pool
                if pool:
                    buf = pool[-1]
                    alloc = buf.allocation
                    if alloc.size_bytes == size:
                        state = plan.state
                        pages = alloc.pages_by_node[plan.node]
                        if (
                            state.free_pages >= pages
                            and self.buffers.setdefault(buf.name, buf) is buf
                        ):
                            del pool[-1]
                            state.free_pages -= pages
                            alloc.freed = False
                            self._kernel_live[alloc.allocation_id] = alloc
                            return buf
                buf = self._plan_alloc(plan, size, attribute)
                if buf is not None:
                    return buf
        return self._mem_alloc_impl(
            size,
            attribute,
            initiator,
            name=name,
            allow_partial=allow_partial,
            allow_fallback=allow_fallback,
            scope=scope,
        )

    def _mem_alloc_traced(
        self, size, attribute, initiator, name,
        allow_partial, allow_fallback, scope,
    ) -> Buffer:
        """The sampled-in branch: record span + metrics around the same
        placement route the untraced path takes."""
        metrics = OBS.metrics
        with OBS.tracer.span(
            "mem_alloc", attribute=attribute, size=size, scope=scope
        ) as span:
            metrics.counter("alloc.requests", attribute=attribute).inc()
            try:
                buffer = self._alloc_route(
                    size, attribute, initiator, name,
                    allow_partial, allow_fallback, scope,
                )
            except CapacityError:
                metrics.counter("alloc.capacity_errors", attribute=attribute).inc()
                raise
            primary = None if buffer.target is None else buffer.target.os_index
            metrics.counter(
                "alloc.placed",
                attribute=buffer.used_attribute,
                node="split" if primary is None else primary,
            ).inc()
            metrics.histogram("alloc.fallback_rank").observe(buffer.fallback_rank)
            if buffer.fallback_rank > 0:
                metrics.counter("alloc.capacity_fallbacks").inc()
            if buffer.used_attribute.lower() != str(attribute).lower():
                metrics.counter(
                    "alloc.attribute_fallbacks",
                    requested=attribute,
                    used=buffer.used_attribute,
                ).inc()
            span.fields.update(
                buffer=buffer.name,
                used_attribute=buffer.used_attribute,
                fallback_rank=buffer.fallback_rank,
                nodes=list(buffer.nodes),
            )
            return buffer

    def _alloc_route(
        self, size, attribute, initiator, name,
        allow_partial, allow_fallback, scope,
    ) -> Buffer:
        """Fast path when eligible, else the legacy body — the placement
        decisions are identical to the untraced route in mem_alloc."""
        if name is None and allow_fallback and not allow_partial:
            buf = self._fast_alloc(size, attribute, initiator, scope)
            if buf is not None:
                return buf
        return self._mem_alloc_impl(
            size,
            attribute,
            initiator,
            name=name,
            allow_partial=allow_partial,
            allow_fallback=allow_fallback,
            scope=scope,
        )

    def _fast_alloc(self, size, attribute, initiator, scope) -> Buffer | None:
        """Plan-cache fast allocation; None means "take the legacy path".

        Twin of the inline block in mem_alloc — keep in lockstep.  The
        only addition is kernel counter parity: a recycled commit never
        reaches the kernel's instrumented allocate, so it emits the page
        accounting counters itself.
        """
        try:
            plan = self._plans.get((attribute, initiator, scope))
        except TypeError:
            return None
        if (
            plan is None
            or plan.generation != self.memattrs._generation
            or not self._qc.enabled
        ):
            return None
        pool = plan.pool
        if pool:
            buf = pool[-1]
            alloc = buf.allocation
            if alloc.size_bytes == size:
                state = plan.state
                pages = alloc.pages_by_node[plan.node]
                if (
                    state.free_pages >= pages
                    and self.buffers.setdefault(buf.name, buf) is buf
                ):
                    del pool[-1]
                    state.free_pages -= pages
                    alloc.freed = False
                    self._kernel_live[alloc.allocation_id] = alloc
                    if OBS.enabled:
                        OBS.metrics.counter("kernel.allocations").inc()
                        OBS.metrics.counter("kernel.pages_allocated").inc(pages)
                    return buf
        return self._plan_alloc(plan, size, attribute)

    def _plan_alloc(self, plan: _AllocPlan, size, attribute) -> Buffer | None:
        """First-fit over a valid plan's online entries, committing through
        the kernel's no-walk fast commit.  None when nothing fits (the
        legacy path then re-walks and raises the canonical error)."""
        pages = -(-size // self._page_size)
        for state, node, target, policy, rank in plan.entries:
            if state.free_pages >= pages:
                alloc = self.kernel.place_pages(node, pages, size, policy)
                bufname = f"buf{next(_buffer_ids)}"
                buffer = Buffer(
                    name=bufname,
                    size=size,
                    requested_attribute=attribute,
                    used_attribute=plan.used_attr,
                    allocation=alloc,
                    target=target,
                    fallback_rank=rank,
                    initiator=plan.initiator_pus,
                )
                if rank == plan.best_rank:
                    buffer._plan = plan
                self.buffers[bufname] = buffer
                return buffer
        return None

    def _build_plan(self, used_attr, ranked, initiator_pus) -> _AllocPlan:
        """Flatten one resolved ranking into a warm-path plan."""
        nodes = self.kernel.nodes
        offline = self.kernel._offline
        entries = tuple(
            (
                nodes[tv.target.os_index],
                tv.target.os_index,
                tv.target,
                bind_policy(tv.target.os_index),
                rank,
            )
            for rank, tv in enumerate(ranked)
            if tv.target.os_index not in offline
        )
        plan = _AllocPlan()
        plan.generation = self.memattrs._generation
        plan.used_attr = used_attr
        plan.entries = entries
        if entries:
            plan.state = entries[0][0]
            plan.node = entries[0][1]
            plan.best_rank = entries[0][4]
        else:
            plan.state = None
            plan.node = -1
            plan.best_rank = -1
        plan.best_node_orig = ranked[0].target.os_index
        plan.best_target_orig = ranked[0].target
        plan.nodeset = tuple(tv.target.os_index for tv in ranked)
        plan.initiator_pus = initiator_pus
        plan.pool = []
        return plan

    def _mem_alloc_impl(
        self,
        size: int,
        attribute: str,
        initiator,
        *,
        name: str | None,
        allow_partial: bool,
        allow_fallback: bool,
        scope: str,
    ) -> Buffer:
        if size <= 0:
            raise AllocationError("allocation size must be positive")
        auto_named = name is None
        name = name or f"buf{next(_buffer_ids)}"
        if name in self.buffers:
            raise AllocationError(f"buffer name {name!r} already in use")
        initiator_pus = self._initiator_pus(initiator)
        used_attr, ranked = self.rank_for(attribute, initiator, scope=scope)
        # (Re)build the warm-path plan for this triple while the resolved
        # ranking is in hand, so the next request takes the fast path.
        plan = None
        if self._qc.enabled:
            try:
                plan = self._plans.get((attribute, initiator, scope))
                if plan is None or plan.generation != self.memattrs._generation:
                    plan = self._build_plan(used_attr, ranked, initiator_pus)
                    self._plans[(attribute, initiator, scope)] = plan
            except TypeError:      # unhashable initiator: uncacheable
                plan = None
        if not allow_fallback:
            ranked = ranked[:1]

        if allow_partial:
            # Greedy spill down the ranking ("at least partially", §VII).
            nodeset = tuple(tv.target.os_index for tv in ranked)
            total_free = sum(self.kernel.free_bytes(n) for n in nodeset)
            if total_free >= size:
                allocation = self.kernel.allocate_ordered(size, nodeset)
                best_node = ranked[0].target.os_index
                buffer = Buffer(
                    name=name,
                    size=size,
                    requested_attribute=attribute,
                    used_attribute=used_attr,
                    allocation=allocation,
                    target=(
                        ranked[0].target
                        if allocation.fraction_on(best_node) > 0
                        else None
                    ),
                    fallback_rank=0 if allocation.fraction_on(best_node) >= 0.999 else 1,
                    initiator=initiator_pus,
                )
                self.buffers[name] = buffer
                return buffer
        else:
            for rank, tv in enumerate(ranked):
                node = tv.target.os_index
                if self.kernel.free_bytes(node) >= size:
                    allocation = self.kernel.allocate(
                        size, bind_policy(node), initiator_pu=initiator_pus[0]
                    )
                    buffer = Buffer(
                        name=name,
                        size=size,
                        requested_attribute=attribute,
                        used_attribute=used_attr,
                        allocation=allocation,
                        target=tv.target,
                        fallback_rank=rank,
                        initiator=initiator_pus,
                    )
                    if auto_named and plan is not None and node == plan.node:
                        # Eligible for pool recycling when freed: unnamed,
                        # whole-buffer, sitting on the plan's best target.
                        buffer._plan = plan
                    self.buffers[name] = buffer
                    return buffer

        raise CapacityError(
            f"cannot place {size} bytes for attribute {attribute!r}: "
            + "; ".join(
                f"{tv.target.label} free={self.kernel.free_bytes(tv.target.os_index)}"
                for tv in ranked
            )
        )

    def mem_alloc_many(
        self,
        requests,
        *,
        rollback_on_error: bool = True,
    ) -> tuple[Buffer, ...]:
        """Allocate a batch of buffers in one call.

        ``requests`` is an iterable of :class:`AllocRequest` (or dicts /
        tuples with the same fields).  Requests sharing an (attribute,
        initiator, scope) resolve their target ranking once — the query
        cache serves every repeat — so the per-buffer cost is only the
        free-capacity walk and the page placement.

        By default the batch is all-or-nothing: when any request fails,
        buffers already placed by this call are freed before the error
        propagates.  ``rollback_on_error=False`` keeps the partial batch
        (the failed request's error still propagates).
        """
        if not OBS.enabled:
            return self._mem_alloc_many_impl(
                requests, rollback_on_error=rollback_on_error
            )
        with OBS.tracer.span("mem_alloc_many") as span:
            OBS.metrics.counter("alloc.batches").inc()
            try:
                placed = self._mem_alloc_many_impl(
                    requests, rollback_on_error=rollback_on_error
                )
            except Exception:
                OBS.metrics.counter("alloc.batch_failures").inc()
                raise
            span.fields.update(buffers=len(placed))
            OBS.metrics.histogram("alloc.batch_size").observe(len(placed))
            return placed

    def _mem_alloc_many_impl(
        self,
        requests,
        *,
        rollback_on_error: bool,
    ) -> tuple[Buffer, ...]:
        reqs = requests if type(requests) is list else list(requests)
        if reqs and not OBS.enabled and reqs[0].__class__ is AllocRequest:
            # Batch fast paths.  Both bail to the sequential loop (None)
            # whenever any request is not plan-eligible or capacity is
            # tight enough that first-fit order matters — the loop is the
            # semantic definition of a batch.  Mixed dict/tuple request
            # shapes also fall through (normalization happens in the
            # loop below).
            fast = (
                self._batch_partial_fast(reqs)
                if reqs[0].allow_partial
                else self._batch_fast(reqs)
            )
            if fast is not None:
                return fast
        placed: list[Buffer] = []
        try:
            for req in reqs:
                if isinstance(req, AllocRequest):
                    r = req
                elif isinstance(req, dict):
                    r = AllocRequest(**req)
                else:
                    r = AllocRequest(*req)
                placed.append(
                    self.mem_alloc(
                        r.size,
                        r.attribute,
                        r.initiator,
                        name=r.name,
                        allow_partial=r.allow_partial,
                        allow_fallback=r.allow_fallback,
                        scope=r.scope,
                    )
                )
        except Exception:
            if rollback_on_error:
                for buf in reversed(placed):
                    self.free(buf)
            raise
        return tuple(placed)

    def _batch_fast(self, reqs: list[AllocRequest]) -> tuple[Buffer, ...] | None:
        """Whole-buffer batch commit: one fused fast-path pass per request.

        Runs the warm fast path (pool recycle, else plan first-fit) over
        the batch in request order — by construction the same placement
        decisions as the sequential ``mem_alloc`` loop, minus the
        per-request dispatch, telemetry-gate and capacity re-derivation
        overhead.  Any ineligible request (named, partial, stale plan,
        nothing fits) undoes the committed prefix exactly (fast free
        restores counters and pools) and returns None, and the caller
        replays through the sequential loop.
        """
        if not self._qc.enabled:
            return None
        gen = self.memattrs._generation
        plans = self._plans
        live = self._kernel_live
        buffers = self.buffers
        out: list[Buffer] = []
        for r in reqs:
            if (
                r.__class__ is not AllocRequest
                or r.name is not None
                or r.allow_partial
                or not r.allow_fallback
            ):
                break
            try:
                plan = plans.get((r.attribute, r.initiator, r.scope))
            except TypeError:
                break
            if plan is None or plan.generation != gen:
                break
            size = r.size
            pool = plan.pool
            if pool:
                buf = pool[-1]
                alloc = buf.allocation
                if alloc.size_bytes == size:
                    state = plan.state
                    pages = alloc.pages_by_node[plan.node]
                    if (
                        state.free_pages >= pages
                        and buffers.setdefault(buf.name, buf) is buf
                    ):
                        del pool[-1]
                        state.free_pages -= pages
                        alloc.freed = False
                        live[alloc.allocation_id] = alloc
                        out.append(buf)
                        continue
            buf = self._plan_alloc(plan, size, r.attribute)
            if buf is None:
                break
            out.append(buf)
        else:
            return tuple(out)
        for buf in reversed(out):
            self.free(buf)
        return None

    def _batch_partial_fast(
        self, reqs: list[AllocRequest]
    ) -> tuple[Buffer, ...] | None:
        """Hybrid (spill) batch via the kernel's vectorized ordered fill.

        Applies when the whole batch shares one plan-eligible
        ``(attribute, initiator, scope)`` triple with ``allow_partial``
        set and the ranked nodeset can hold the batch total — exactly the
        regime where a sequence of ``allocate_ordered`` calls equals one
        cumulative fill, which :meth:`KernelMemoryManager.
        allocate_many_ordered` computes with numpy array ops.
        """
        r0 = reqs[0]
        for r in reqs:
            if (
                r.__class__ is not AllocRequest
                or r.name is not None
                or not r.allow_partial
                or not r.allow_fallback
                or r.attribute != r0.attribute
                or r.initiator != r0.initiator
                or r.scope != r0.scope
            ):
                return None
        if not self._qc.enabled:
            return None
        try:
            plan = self._plans.get((r0.attribute, r0.initiator, r0.scope))
        except TypeError:
            return None
        if plan is None or plan.generation != self.memattrs._generation:
            return None
        ps = self._page_size
        total_pages = sum(-(-r.size // ps) for r in reqs)
        free_total = int(self.kernel.free_pages_array(plan.nodeset).sum())
        if total_pages > free_total:
            return None
        allocs = self.kernel.allocate_many_ordered(
            [r.size for r in reqs], plan.nodeset
        )
        best = plan.best_node_orig
        out: list[Buffer] = []
        for r, alloc in zip(reqs, allocs):
            frac = alloc.fraction_on(best)
            bufname = f"buf{next(_buffer_ids)}"
            buffer = Buffer(
                name=bufname,
                size=r.size,
                requested_attribute=r.attribute,
                used_attribute=plan.used_attr,
                allocation=alloc,
                target=plan.best_target_orig if frac > 0 else None,
                fallback_rank=0 if frac >= 0.999 else 1,
                initiator=plan.initiator_pus,
            )
            self.buffers[bufname] = buffer
            out.append(buffer)
        return tuple(out)

    def cache_stats(self) -> dict:
        """Hit/miss/invalidation counters of the shared query cache."""
        return self.memattrs.cache_stats()

    def free(self, buffer: Buffer | str) -> None:
        # Fast path: a live fast-path buffer releases its pages straight
        # to its plan's node counter and parks itself in the plan's pool
        # for recycling.  Everything else (names, migrated/split buffers,
        # double frees) takes the legacy route below.
        if buffer.__class__ is Buffer:
            plan = buffer._plan
            if plan is not None:
                alloc = buffer.allocation
                pbn = alloc.pages_by_node
                pages = pbn.get(plan.node)
                if pages is not None and len(pbn) == 1 and not alloc.freed:
                    got = self.buffers.pop(buffer.name, None)
                    if got is buffer:
                        del self._kernel_live[alloc.allocation_id]
                        alloc.freed = True
                        plan.state.free_pages += pages
                        pool = plan.pool
                        if len(pool) < _POOL_MAX:
                            pool.append(buffer)
                        return
                    if got is not None:
                        # A different live buffer owns this name (the
                        # caller's handle is stale): restore and let the
                        # legacy route raise its canonical error.
                        self.buffers[buffer.name] = got
        buffer = self._resolve_buffer(buffer)
        self.kernel.free(buffer.allocation)
        del self.buffers[buffer.name]

    def migrate(self, buffer: Buffer | str, attribute: str) -> MigrationReport:
        """Move a buffer to the (possibly new) best target for ``attribute``.

        Used at phase changes (§VII): expensive, so callers should check
        :attr:`MigrationReport.estimated_seconds` against the expected
        gain.
        """
        if not OBS.enabled:
            return self._migrate_impl(buffer, attribute)
        with OBS.tracer.span("alloc.migrate", attribute=attribute) as span:
            report = self._migrate_impl(buffer, attribute)
            span.fields.update(
                moved_pages=report.moved_pages, to_node=report.to_node
            )
            return report

    def _migrate_impl(self, buffer: Buffer | str, attribute: str) -> MigrationReport:
        buffer = self._resolve_buffer(buffer)
        used_attr, ranked = self.rank_for(attribute, buffer.initiator)
        for tv in ranked:
            node = tv.target.os_index
            already = buffer.allocation.fraction_on(node)
            needed = buffer.size * (1 - already)
            if self.kernel.free_bytes(node) >= needed:
                report = self.kernel.migrate(buffer.allocation, node)
                buffer.target = tv.target
                buffer.used_attribute = used_attr
                buffer.requested_attribute = attribute
                return report
        raise CapacityError(
            f"no target can absorb {buffer.name} for attribute {attribute!r}"
        )

    # ------------------------------------------------------------------
    def placement(self) -> Placement:
        """The live buffers as a simulator placement."""
        return Placement(
            {
                name: buf.placement_fractions()
                for name, buf in self.buffers.items()
            }
        )

    def _resolve_buffer(self, buffer: Buffer | str) -> Buffer:
        if isinstance(buffer, Buffer):
            key = buffer.name
        else:
            key = buffer
        try:
            return self.buffers[key]
        except KeyError:
            raise AllocationError(f"unknown buffer {key!r}") from None

    def _initiator_pus(self, initiator) -> tuple[int, ...]:
        cache = self.memattrs.query_cache
        cpuset = as_cpuset(self.memattrs.topology, initiator, cache=cache)
        pus = cache.get("initiator_pus", cpuset)
        if pus is not MISSING:
            return pus
        if cpuset.is_empty():
            raise AllocationError("initiator has no PUs")
        pus = tuple(cpuset)
        cache.store("initiator_pus", cpuset, pus)
        return pus
