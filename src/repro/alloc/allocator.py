"""``mem_alloc(..., attribute)`` — the experimental allocator of §IV-B.

:class:`HeterogeneousAllocator` combines a :class:`~repro.core.api.MemAttrs`
(to *rank* targets) with a :class:`~repro.kernel.pagealloc.KernelMemoryManager`
(to actually *place* pages), giving applications the single-call interface
the paper proposes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..core.api import MemAttrs, TargetValue
from ..core.querycache import MISSING
from ..core.ranking import rank_targets
from ..errors import AllocationError, CapacityError, SpecError, TopologyError
from ..kernel.migration import MigrationReport
from ..kernel.pagealloc import KernelMemoryManager, PageAllocation
from ..kernel.policy import bind_policy
from ..obs import OBS
from ..sim.access import Placement
from ..topology.objects import TopoObject
from ..topology.traversal import as_cpuset
from .fallback import attribute_fallback_chain

__all__ = ["AllocRequest", "Buffer", "HeterogeneousAllocator"]

_buffer_ids = itertools.count(1)


@dataclass(frozen=True)
class AllocRequest:
    """One request of a :meth:`HeterogeneousAllocator.mem_alloc_many` batch.

    Mirrors the keyword surface of :meth:`~HeterogeneousAllocator.mem_alloc`.
    """

    size: int
    attribute: str
    initiator: object
    name: str | None = None
    allow_partial: bool = False
    allow_fallback: bool = True
    scope: str = "local"


@dataclass
class Buffer:
    """A buffer placed by the heterogeneous allocator."""

    name: str
    size: int
    requested_attribute: str
    used_attribute: str
    allocation: PageAllocation
    target: TopoObject | None          # primary target (None if fully split)
    fallback_rank: int                 # 0 = got the best target
    initiator: tuple[int, ...]

    @property
    def nodes(self) -> tuple[int, ...]:
        return self.allocation.nodes

    @property
    def is_split(self) -> bool:
        return self.allocation.is_split

    def placement_fractions(self) -> dict[int, float]:
        return {n: self.allocation.fraction_on(n) for n in self.allocation.nodes}

    def describe(self) -> str:
        where = ", ".join(
            f"node{n}:{f:.0%}" for n, f in sorted(self.placement_fractions().items())
        )
        note = "" if self.fallback_rank == 0 else f" (fallback #{self.fallback_rank})"
        return (
            f"{self.name}[{self.size}B] attr={self.requested_attribute}"
            f"->{self.used_attribute} on {where}{note}"
        )


class HeterogeneousAllocator:
    """The paper's ``mem_alloc`` built on attributes + the kernel."""

    def __init__(
        self,
        memattrs: MemAttrs,
        kernel: KernelMemoryManager,
        *,
        attribute_fallback: dict[str, tuple[str, ...]] | None = None,
        tie_tolerance: float = 0.10,
        tie_attr: str | None = "Capacity",
    ) -> None:
        if memattrs.topology.machine_spec is not kernel.machine:
            raise SpecError("memattrs and kernel manager describe different machines")
        self.memattrs = memattrs
        self.kernel = kernel
        self._attribute_fallback = attribute_fallback
        self._overrides_key = (
            None
            if attribute_fallback is None
            else tuple(sorted((k, tuple(v)) for k, v in attribute_fallback.items()))
        )
        self.tie_tolerance = tie_tolerance
        self.tie_attr = tie_attr
        self.buffers: dict[str, Buffer] = {}
        # Topology events (node offline/online, co-tenant capacity shifts)
        # must invalidate the memoized rankings exactly like attribute
        # updates do, or mem_alloc would keep placing onto a dead node.
        kernel.add_topology_listener(self._on_topology_event)

    def _on_topology_event(self, event: str, node: int) -> None:
        self.memattrs.notify_topology_event(event=event, node=node)

    # ------------------------------------------------------------------
    def rank_for(
        self, attribute: str, initiator, *, scope: str = "local"
    ) -> tuple[str, tuple[TargetValue, ...]]:
        """Resolve the attribute (with fallback) and rank targets.

        ``scope="local"`` considers the initiator's local targets (the
        paper's default flow); ``scope="machine"`` ranks every node —
        the §VIII question "is it better to allocate in the local NVDIMM
        or in another DRAM?", answerable once benchmarking measured the
        remote pairs.  Returns ``(used_attribute_name, ranked_targets)``.

        This is the allocator's hot path: the resolved
        ``(used_attribute, ranking)`` pair is memoized in the MemAttrs
        query cache (family ``"alloc_rank"``) keyed by its generation,
        so repeated ``mem_alloc`` calls between attribute updates only
        re-walk the free-capacity check.
        """
        if scope not in ("local", "machine"):
            raise AllocationError(f"unknown scope {scope!r}")
        cache_key = self._rank_for_cache_key(attribute, initiator, scope)
        if cache_key is not None:
            cached = self.memattrs.query_cache.get("alloc_rank", cache_key)
            if cached is not MISSING:
                return cached
        if scope == "local":
            # Memoryless-initiator fallback: a CPU whose package has no
            # memory at all (CPU-only NUMA nodes exist) allocates from the
            # whole machine, like the kernel's zonelist would.
            local = self.memattrs.get_local_numanode_objs(initiator)
            targets = local if local else self.memattrs.topology.numanodes()
        else:
            targets = self.memattrs.topology.numanodes()
        chain = attribute_fallback_chain(
            self.memattrs, attribute, overrides=self._attribute_fallback
        )
        for attr in chain:
            if not self.memattrs.has_values(attr):
                continue
            ranked = rank_targets(
                self.memattrs,
                attr,
                initiator,
                targets=targets,
                tie_attr=self.tie_attr if self.tie_attr != attr.name else None,
                tie_tolerance=self.tie_tolerance,
            )
            if ranked:
                if cache_key is not None:
                    self.memattrs.query_cache.store(
                        "alloc_rank", cache_key, (attr.name, ranked)
                    )
                return attr.name, ranked
        raise AllocationError(
            f"no attribute in the fallback chain of {attribute!r} has values "
            "for any local target"
        )

    def _rank_for_cache_key(self, attribute: str, initiator, scope: str):
        """Key for one resolved ranking, or ``None`` when uncacheable (the
        uncached path then raises exactly as before)."""
        try:
            init_key = as_cpuset(
                self.memattrs.topology, initiator, cache=self.memattrs.query_cache
            )
        except TopologyError:
            return None
        return (
            self.memattrs.generation,
            attribute.lower() if isinstance(attribute, str) else attribute,
            init_key,
            scope,
            self.tie_attr,
            self.tie_tolerance,
            self._overrides_key,
        )

    # ------------------------------------------------------------------
    def mem_alloc(
        self,
        size: int,
        attribute: str,
        initiator,
        *,
        name: str | None = None,
        allow_partial: bool = False,
        allow_fallback: bool = True,
        scope: str = "local",
    ) -> Buffer:
        """Allocate ``size`` bytes on the best local target for ``attribute``.

        The default reproduces hwloc's allocator: walk the target ranking
        on capacity exhaustion, placing the **whole buffer** on the first
        target that fits.  ``allow_partial=True`` switches to the *hybrid
        allocation* alternative of §VII: fill the best target first and
        spill the remainder down the ranking — more fast-memory use, at
        the price of the irregular performance the paper warns about.
        ``allow_fallback=False`` insists on the best-ranked target
        (strict binding): the request fails when it is full, like the
        whole-process-binding runs of Tables II/III.
        """
        if not OBS.enabled:
            return self._mem_alloc_impl(
                size,
                attribute,
                initiator,
                name=name,
                allow_partial=allow_partial,
                allow_fallback=allow_fallback,
                scope=scope,
            )
        metrics = OBS.metrics
        with OBS.tracer.span(
            "mem_alloc", attribute=attribute, size=size, scope=scope
        ) as span:
            metrics.counter("alloc.requests", attribute=attribute).inc()
            try:
                buffer = self._mem_alloc_impl(
                    size,
                    attribute,
                    initiator,
                    name=name,
                    allow_partial=allow_partial,
                    allow_fallback=allow_fallback,
                    scope=scope,
                )
            except CapacityError:
                metrics.counter("alloc.capacity_errors", attribute=attribute).inc()
                raise
            primary = None if buffer.target is None else buffer.target.os_index
            metrics.counter(
                "alloc.placed",
                attribute=buffer.used_attribute,
                node="split" if primary is None else primary,
            ).inc()
            metrics.histogram("alloc.fallback_rank").observe(buffer.fallback_rank)
            if buffer.fallback_rank > 0:
                metrics.counter("alloc.capacity_fallbacks").inc()
            if buffer.used_attribute.lower() != str(attribute).lower():
                metrics.counter(
                    "alloc.attribute_fallbacks",
                    requested=attribute,
                    used=buffer.used_attribute,
                ).inc()
            span.fields.update(
                buffer=buffer.name,
                used_attribute=buffer.used_attribute,
                fallback_rank=buffer.fallback_rank,
                nodes=list(buffer.nodes),
            )
            return buffer

    def _mem_alloc_impl(
        self,
        size: int,
        attribute: str,
        initiator,
        *,
        name: str | None,
        allow_partial: bool,
        allow_fallback: bool,
        scope: str,
    ) -> Buffer:
        if size <= 0:
            raise AllocationError("allocation size must be positive")
        name = name or f"buf{next(_buffer_ids)}"
        if name in self.buffers:
            raise AllocationError(f"buffer name {name!r} already in use")
        initiator_pus = self._initiator_pus(initiator)
        used_attr, ranked = self.rank_for(attribute, initiator, scope=scope)
        if not allow_fallback:
            ranked = ranked[:1]

        if allow_partial:
            # Greedy spill down the ranking ("at least partially", §VII).
            nodeset = tuple(tv.target.os_index for tv in ranked)
            total_free = sum(self.kernel.free_bytes(n) for n in nodeset)
            if total_free >= size:
                allocation = self.kernel.allocate_ordered(size, nodeset)
                best_node = ranked[0].target.os_index
                buffer = Buffer(
                    name=name,
                    size=size,
                    requested_attribute=attribute,
                    used_attribute=used_attr,
                    allocation=allocation,
                    target=(
                        ranked[0].target
                        if allocation.fraction_on(best_node) > 0
                        else None
                    ),
                    fallback_rank=0 if allocation.fraction_on(best_node) >= 0.999 else 1,
                    initiator=initiator_pus,
                )
                self.buffers[name] = buffer
                return buffer
        else:
            for rank, tv in enumerate(ranked):
                node = tv.target.os_index
                if self.kernel.free_bytes(node) >= size:
                    allocation = self.kernel.allocate(
                        size, bind_policy(node), initiator_pu=initiator_pus[0]
                    )
                    buffer = Buffer(
                        name=name,
                        size=size,
                        requested_attribute=attribute,
                        used_attribute=used_attr,
                        allocation=allocation,
                        target=tv.target,
                        fallback_rank=rank,
                        initiator=initiator_pus,
                    )
                    self.buffers[name] = buffer
                    return buffer

        raise CapacityError(
            f"cannot place {size} bytes for attribute {attribute!r}: "
            + "; ".join(
                f"{tv.target.label} free={self.kernel.free_bytes(tv.target.os_index)}"
                for tv in ranked
            )
        )

    def mem_alloc_many(
        self,
        requests,
        *,
        rollback_on_error: bool = True,
    ) -> tuple[Buffer, ...]:
        """Allocate a batch of buffers in one call.

        ``requests`` is an iterable of :class:`AllocRequest` (or dicts /
        tuples with the same fields).  Requests sharing an (attribute,
        initiator, scope) resolve their target ranking once — the query
        cache serves every repeat — so the per-buffer cost is only the
        free-capacity walk and the page placement.

        By default the batch is all-or-nothing: when any request fails,
        buffers already placed by this call are freed before the error
        propagates.  ``rollback_on_error=False`` keeps the partial batch
        (the failed request's error still propagates).
        """
        if not OBS.enabled:
            return self._mem_alloc_many_impl(
                requests, rollback_on_error=rollback_on_error
            )
        with OBS.tracer.span("mem_alloc_many") as span:
            OBS.metrics.counter("alloc.batches").inc()
            try:
                placed = self._mem_alloc_many_impl(
                    requests, rollback_on_error=rollback_on_error
                )
            except Exception:
                OBS.metrics.counter("alloc.batch_failures").inc()
                raise
            span.fields.update(buffers=len(placed))
            OBS.metrics.histogram("alloc.batch_size").observe(len(placed))
            return placed

    def _mem_alloc_many_impl(
        self,
        requests,
        *,
        rollback_on_error: bool,
    ) -> tuple[Buffer, ...]:
        placed: list[Buffer] = []
        try:
            for req in requests:
                if isinstance(req, AllocRequest):
                    r = req
                elif isinstance(req, dict):
                    r = AllocRequest(**req)
                else:
                    r = AllocRequest(*req)
                placed.append(
                    self.mem_alloc(
                        r.size,
                        r.attribute,
                        r.initiator,
                        name=r.name,
                        allow_partial=r.allow_partial,
                        allow_fallback=r.allow_fallback,
                        scope=r.scope,
                    )
                )
        except Exception:
            if rollback_on_error:
                for buf in reversed(placed):
                    self.free(buf)
            raise
        return tuple(placed)

    def cache_stats(self) -> dict:
        """Hit/miss/invalidation counters of the shared query cache."""
        return self.memattrs.cache_stats()

    def free(self, buffer: Buffer | str) -> None:
        buffer = self._resolve_buffer(buffer)
        self.kernel.free(buffer.allocation)
        del self.buffers[buffer.name]

    def migrate(self, buffer: Buffer | str, attribute: str) -> MigrationReport:
        """Move a buffer to the (possibly new) best target for ``attribute``.

        Used at phase changes (§VII): expensive, so callers should check
        :attr:`MigrationReport.estimated_seconds` against the expected
        gain.
        """
        if not OBS.enabled:
            return self._migrate_impl(buffer, attribute)
        with OBS.tracer.span("alloc.migrate", attribute=attribute) as span:
            report = self._migrate_impl(buffer, attribute)
            span.fields.update(
                moved_pages=report.moved_pages, to_node=report.to_node
            )
            return report

    def _migrate_impl(self, buffer: Buffer | str, attribute: str) -> MigrationReport:
        buffer = self._resolve_buffer(buffer)
        used_attr, ranked = self.rank_for(attribute, buffer.initiator)
        for tv in ranked:
            node = tv.target.os_index
            already = buffer.allocation.fraction_on(node)
            needed = buffer.size * (1 - already)
            if self.kernel.free_bytes(node) >= needed:
                report = self.kernel.migrate(buffer.allocation, node)
                buffer.target = tv.target
                buffer.used_attribute = used_attr
                buffer.requested_attribute = attribute
                return report
        raise CapacityError(
            f"no target can absorb {buffer.name} for attribute {attribute!r}"
        )

    # ------------------------------------------------------------------
    def placement(self) -> Placement:
        """The live buffers as a simulator placement."""
        return Placement(
            {
                name: buf.placement_fractions()
                for name, buf in self.buffers.items()
            }
        )

    def _resolve_buffer(self, buffer: Buffer | str) -> Buffer:
        if isinstance(buffer, Buffer):
            key = buffer.name
        else:
            key = buffer
        try:
            return self.buffers[key]
        except KeyError:
            raise AllocationError(f"unknown buffer {key!r}") from None

    def _initiator_pus(self, initiator) -> tuple[int, ...]:
        cache = self.memattrs.query_cache
        cpuset = as_cpuset(self.memattrs.topology, initiator, cache=cache)
        pus = cache.get("initiator_pus", cpuset)
        if pus is not MISSING:
            return pus
        if cpuset.is_empty():
            raise AllocationError("initiator has no PUs")
        pus = tuple(cpuset)
        cache.store("initiator_pus", cpuset, pus)
        return pus
