"""The heterogeneous memory allocator (paper §IV-B).

``mem_alloc(..., attribute)`` allocates on the **best local memory
target** for the requested criterion — Bandwidth, Latency, Capacity, or
any registered attribute — with two fallback dimensions:

* **target fallback** — if the best target is full, walk down the
  attribute's ranking (whole-buffer, like hwloc's allocator; optional
  partial/hybrid splits reproduce the §VII discussion);
* **attribute fallback** — if the platform carries no values for the
  requested attribute, fall back to a similar one (ReadBandwidth →
  Bandwidth, ...).

The key portability property (paper §VI-A): code requests *what matters
to it* (``"Latency"``), never a memory kind (``"HBM"``), so the same call
lands on DRAM on the Xeon and on DRAM on KNL — or on HBM where that is
genuinely the right answer.
"""

from .allocator import AllocRequest, Buffer, HeterogeneousAllocator
from .fallback import DEFAULT_ATTRIBUTE_FALLBACK, attribute_fallback_chain
from .policy import AllocationRequest, PlacementPlanner, PlanReport
from .phases import MigrationDecision, PhaseManager

__all__ = [
    "AllocRequest",
    "Buffer",
    "HeterogeneousAllocator",
    "DEFAULT_ATTRIBUTE_FALLBACK",
    "attribute_fallback_chain",
    "AllocationRequest",
    "PlacementPlanner",
    "PlanReport",
    "MigrationDecision",
    "PhaseManager",
]
