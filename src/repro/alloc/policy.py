"""Priority-ordered allocation planning (paper §VII).

First-Come-First-Served placement wastes scarce fast memory on whichever
buffer happens to allocate first.  The paper argues capacity conflicts
"should be managed by using priorities: allocate buffer X on HBM first,
and then buffer Y if possible" — i.e. late allocations of
performance-sensitive buffers should be *moved earlier*.

:class:`PlacementPlanner` takes a set of allocation requests with
priorities, serves them highest-priority-first through the heterogeneous
allocator, and reports who got their preferred target.  The
``bench_ablation_priority`` benchmark quantifies the win over FCFS.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import AllocationError, CapacityError
from .allocator import Buffer, HeterogeneousAllocator

__all__ = ["AllocationRequest", "PlanReport", "PlacementPlanner"]


@dataclass(frozen=True)
class AllocationRequest:
    """One buffer the application will allocate."""

    name: str
    size: int
    attribute: str
    priority: int = 0          # higher = placed earlier
    allow_partial: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise AllocationError("request name must be non-empty")
        if self.size <= 0:
            raise AllocationError(f"{self.name}: size must be positive")


@dataclass
class PlanReport:
    """Outcome of serving a plan."""

    buffers: dict[str, Buffer] = field(default_factory=dict)
    got_best_target: dict[str, bool] = field(default_factory=dict)
    failed: dict[str, str] = field(default_factory=dict)

    @property
    def all_placed(self) -> bool:
        return not self.failed

    def describe(self) -> str:
        lines = []
        for name, buf in self.buffers.items():
            mark = "best" if self.got_best_target.get(name) else "fallback"
            lines.append(f"  {buf.describe()} [{mark}]")
        for name, err in self.failed.items():
            lines.append(f"  {name}: FAILED ({err})")
        return "\n".join(lines)


class PlacementPlanner:
    """Serve allocation requests priority-first."""

    def __init__(self, allocator: HeterogeneousAllocator) -> None:
        self.allocator = allocator

    def plan(
        self,
        requests,
        initiator,
        *,
        fcfs: bool = False,
    ) -> PlanReport:
        """Place all requests.

        ``fcfs=True`` keeps submission order (the baseline the paper
        criticizes); the default sorts by descending priority, stable
        within equal priorities.
        """
        requests = list(requests)
        names = [r.name for r in requests]
        if len(set(names)) != len(names):
            raise AllocationError("duplicate request names in plan")
        if not fcfs:
            requests.sort(key=lambda r: -r.priority)

        report = PlanReport()
        for req in requests:
            try:
                buf = self.allocator.mem_alloc(
                    req.size,
                    req.attribute,
                    initiator,
                    name=req.name,
                    allow_partial=req.allow_partial,
                )
            except CapacityError as exc:
                report.failed[req.name] = str(exc)
                continue
            report.buffers[req.name] = buf
            report.got_best_target[req.name] = buf.fallback_rank == 0
        return report

    def headroom(self, initiator, attribute: str) -> dict[int, int]:
        """Free bytes on each local target, best-ranked first (§VII:
        "the caller may query NUMA node capacity from hwloc to make sure
        HBM capacity will not be used earlier")."""
        _, ranked = self.allocator.rank_for(attribute, initiator)
        return {
            tv.target.os_index: self.allocator.kernel.free_bytes(tv.target.os_index)
            for tv in ranked
        }
