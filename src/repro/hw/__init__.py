"""Hardware platform models.

This package declares *what a machine looks like* — packages, SubNUMA
clusters, cores, and the heterogeneous memory nodes attached at each level —
together with the performance characteristics of each memory technology.

Everything downstream (firmware tables, the topology tree, the performance
simulator) is derived from these declarative specifications, so a new
platform is a single function in :mod:`repro.hw.platforms`.
"""

from .techs import MemoryKind, MemoryTechnology, TECH_PRESETS, tech
from .spec import (
    MemsideCacheSpec,
    MemoryNodeSpec,
    CacheSpec,
    GroupSpec,
    PackageSpec,
    InterconnectSpec,
    MachineSpec,
)
from . import platforms
from .serialize import (
    load_machine,
    machine_from_dict,
    machine_to_dict,
    save_machine,
)
from .platforms import (
    knl_snc4_flat,
    knl_snc4_hybrid50,
    knl_snc4_cache,
    knl_quadrant_flat,
    xeon_cascadelake_1lm,
    xeon_cascadelake_2lm,
    fictitious_four_kind,
    fugaku_like,
    power9_v100,
    uniform_dram,
    xeon_max,
    PLATFORM_REGISTRY,
    get_platform,
)

__all__ = [
    "MemoryKind",
    "MemoryTechnology",
    "TECH_PRESETS",
    "tech",
    "MemsideCacheSpec",
    "MemoryNodeSpec",
    "CacheSpec",
    "GroupSpec",
    "PackageSpec",
    "InterconnectSpec",
    "MachineSpec",
    "platforms",
    "knl_snc4_flat",
    "knl_snc4_hybrid50",
    "knl_snc4_cache",
    "knl_quadrant_flat",
    "xeon_cascadelake_1lm",
    "xeon_cascadelake_2lm",
    "fictitious_four_kind",
    "fugaku_like",
    "power9_v100",
    "uniform_dram",
    "xeon_max",
    "PLATFORM_REGISTRY",
    "get_platform",
    "machine_to_dict",
    "machine_from_dict",
    "save_machine",
    "load_machine",
]
