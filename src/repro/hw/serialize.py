"""Machine-spec serialization: declarative platforms as JSON documents.

Real deployments describe their machines once and ship the description
(hwloc does this with XML).  Here a :class:`~repro.hw.spec.MachineSpec`
round-trips through a plain JSON-compatible dict, so users can keep
platform files next to their experiments and load them with
:func:`machine_from_dict` / :func:`load_machine`::

    spec = load_machine("myplatform.json")
    setup = repro.quick_setup_from(spec)          # or build manually

Technologies can either reference a preset by name (``"tech":
"ddr4-xeon"``) or inline every field.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

from ..errors import SpecError
from .spec import (
    CacheSpec,
    GroupSpec,
    InterconnectSpec,
    MachineSpec,
    MemoryNodeSpec,
    MemsideCacheSpec,
    PackageSpec,
)
from .techs import TECH_PRESETS, MemoryKind, MemoryTechnology

__all__ = [
    "machine_to_dict",
    "machine_from_dict",
    "save_machine",
    "load_machine",
]


# ----------------------------------------------------------------------
# to dict
# ----------------------------------------------------------------------
def _tech_to_dict(tech: MemoryTechnology) -> dict | str:
    preset = TECH_PRESETS.get(tech.name)
    if preset is not None and preset == tech:
        return tech.name
    out = dataclasses.asdict(tech)
    out["kind"] = tech.kind.value
    return out


def _memside_to_dict(cache: MemsideCacheSpec | None) -> dict | None:
    return None if cache is None else dataclasses.asdict(cache)


def _memory_to_dict(mem: MemoryNodeSpec) -> dict:
    return {
        "tech": _tech_to_dict(mem.tech),
        "capacity": mem.capacity,
        "memside_cache": _memside_to_dict(mem.memside_cache),
        "subtype": mem.subtype,
    }


def _cache_to_dict(cache: CacheSpec) -> dict:
    return dataclasses.asdict(cache)


def _group_to_dict(group: GroupSpec) -> dict:
    return {
        "cores": group.cores,
        "pus_per_core": group.pus_per_core,
        "memories": [_memory_to_dict(m) for m in group.memories],
        "caches": [_cache_to_dict(c) for c in group.caches],
        "name": group.name,
    }


def _package_to_dict(pkg: PackageSpec) -> dict:
    return {
        "groups": [_group_to_dict(g) for g in pkg.groups],
        "cores": pkg.cores,
        "pus_per_core": pkg.pus_per_core,
        "memories": [_memory_to_dict(m) for m in pkg.memories],
        "caches": [_cache_to_dict(c) for c in pkg.caches],
    }


def machine_to_dict(machine: MachineSpec) -> dict:
    """Serialize a machine spec to a JSON-compatible dict."""
    return {
        "name": machine.name,
        "packages": [_package_to_dict(p) for p in machine.packages],
        "machine_memories": [
            _memory_to_dict(m) for m in machine.machine_memories
        ],
        "interconnect": dataclasses.asdict(machine.interconnect),
        "core_ops_per_second": machine.core_ops_per_second,
        "has_hmat": machine.has_hmat,
        "hmat_local_only": machine.hmat_local_only,
    }


# ----------------------------------------------------------------------
# from dict
# ----------------------------------------------------------------------
def _tech_from(obj) -> MemoryTechnology:
    if isinstance(obj, str):
        try:
            return TECH_PRESETS[obj]
        except KeyError:
            raise SpecError(f"unknown technology preset {obj!r}") from None
    if not isinstance(obj, dict):
        raise SpecError(f"bad technology description: {obj!r}")
    data = dict(obj)
    try:
        data["kind"] = MemoryKind(data["kind"])
    except (KeyError, ValueError):
        raise SpecError(f"technology needs a valid 'kind': {obj!r}") from None
    try:
        return MemoryTechnology(**data)
    except TypeError as exc:
        raise SpecError(f"bad technology fields: {exc}") from None


def _memside_from(obj) -> MemsideCacheSpec | None:
    if obj is None:
        return None
    return MemsideCacheSpec(**obj)


def _memory_from(obj: dict) -> MemoryNodeSpec:
    return MemoryNodeSpec(
        tech=_tech_from(obj["tech"]),
        capacity=int(obj["capacity"]),
        memside_cache=_memside_from(obj.get("memside_cache")),
        subtype=obj.get("subtype", ""),
    )


def _cache_from(obj: dict) -> CacheSpec:
    return CacheSpec(**obj)


def _group_from(obj: dict) -> GroupSpec:
    return GroupSpec(
        cores=int(obj["cores"]),
        pus_per_core=int(obj.get("pus_per_core", 1)),
        memories=tuple(_memory_from(m) for m in obj.get("memories", [])),
        caches=tuple(_cache_from(c) for c in obj.get("caches", [])),
        name=obj.get("name", "Group0"),
    )


def _package_from(obj: dict) -> PackageSpec:
    return PackageSpec(
        groups=tuple(_group_from(g) for g in obj.get("groups", [])),
        cores=int(obj.get("cores", 0)),
        pus_per_core=int(obj.get("pus_per_core", 1)),
        memories=tuple(_memory_from(m) for m in obj.get("memories", [])),
        caches=tuple(_cache_from(c) for c in obj.get("caches", [])),
    )


def machine_from_dict(data: dict) -> MachineSpec:
    """Rebuild a machine spec from :func:`machine_to_dict` output."""
    if not isinstance(data, dict):
        raise SpecError("machine description must be a dict")
    try:
        packages = tuple(_package_from(p) for p in data["packages"])
    except KeyError:
        raise SpecError("machine description needs 'packages'") from None
    interconnect = (
        InterconnectSpec(**data["interconnect"])
        if "interconnect" in data
        else InterconnectSpec()
    )
    return MachineSpec(
        name=data.get("name", "unnamed"),
        packages=packages,
        machine_memories=tuple(
            _memory_from(m) for m in data.get("machine_memories", [])
        ),
        interconnect=interconnect,
        core_ops_per_second=float(data.get("core_ops_per_second", 2.0e9)),
        has_hmat=bool(data.get("has_hmat", True)),
        hmat_local_only=bool(data.get("hmat_local_only", True)),
    )


def save_machine(machine: MachineSpec, path: str | pathlib.Path) -> None:
    """Write a machine description to a JSON file."""
    pathlib.Path(path).write_text(
        json.dumps(machine_to_dict(machine), indent=2) + "\n"
    )


def load_machine(path: str | pathlib.Path) -> MachineSpec:
    """Load a machine description from a JSON file."""
    try:
        data = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SpecError(f"cannot load machine file {path}: {exc}") from None
    return machine_from_dict(data)
