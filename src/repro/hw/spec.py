"""Declarative machine specifications.

A :class:`MachineSpec` is the single source of truth for one platform.  It
is a pure-data tree::

    MachineSpec
      ├── PackageSpec (×N)
      │     ├── GroupSpec (×M SubNUMA clusters, optional)
      │     │     ├── cores / PUs
      │     │     └── MemoryNodeSpec (group-local memories, e.g. MCDRAM)
      │     └── MemoryNodeSpec (package-local memories, e.g. NVDIMM)
      └── MemoryNodeSpec (machine-wide memories, e.g. network-attached)

From a spec the rest of the library derives: synthetic ACPI tables
(:mod:`repro.firmware`), the hwloc-like object tree (:mod:`repro.topology`),
the kernel's NUMA node table (:mod:`repro.kernel`), and simulator inputs
(:mod:`repro.sim`).

Node numbering follows the OS convention the paper leans on in §VII:
conventional DRAM nodes receive the lowest OS indexes (so that default
allocations go to DRAM), then other kinds by
:attr:`MemoryKind.os_numbering_priority`, breaking ties by position in the
tree.  The *logical* order (hwloc-style, depth-first by attach point) is
also exposed because Fig. 5 numbers nodes logically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SpecError
from ..units import format_size
from .techs import MemoryKind, MemoryTechnology

__all__ = [
    "MemsideCacheSpec",
    "MemoryNodeSpec",
    "CacheSpec",
    "GroupSpec",
    "PackageSpec",
    "InterconnectSpec",
    "MachineSpec",
    "AttachLevel",
    "NodeInstance",
]


@dataclass(frozen=True)
class MemsideCacheSpec:
    """A memory-side cache in front of a NUMA node.

    KNL *Cache*/*Hybrid* modes place MCDRAM as a direct-mapped memory-side
    cache in front of the DDR4; Xeon *2-Level-Memory* places DRAM in front
    of NVDIMMs.  The cache is transparent to software but changes observed
    performance (paper §VIII: attribute values do not include it).
    """

    size: int                      # bytes
    hit_latency: float             # seconds
    hit_bandwidth: float           # bytes/s
    associativity: int = 1         # KNL memside cache is direct-mapped
    label: str = "MemCache"

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise SpecError("memory-side cache size must be positive")
        if self.hit_latency <= 0 or self.hit_bandwidth <= 0:
            raise SpecError("memory-side cache performance must be positive")
        if self.associativity < 1:
            raise SpecError("associativity must be >= 1")


@dataclass(frozen=True)
class MemoryNodeSpec:
    """One NUMA memory node (a *memory target* in the paper's terms)."""

    tech: MemoryTechnology
    capacity: int                          # bytes
    memside_cache: MemsideCacheSpec | None = None
    subtype: str = ""                      # lstopo label, e.g. "MCDRAM"

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise SpecError("memory node capacity must be positive")

    @property
    def kind(self) -> MemoryKind:
        return self.tech.kind

    def describe(self) -> str:
        label = self.subtype or self.tech.kind.value
        return f"{label}({format_size(self.capacity)})"


@dataclass(frozen=True)
class CacheSpec:
    """A CPU cache level (per core or shared per group/package)."""

    level: int
    size: int
    line_size: int = 64
    shared: bool = False      # shared by all cores of the enclosing scope

    def __post_init__(self) -> None:
        if self.level < 1:
            raise SpecError("cache level must be >= 1")
        if self.size <= 0 or self.line_size <= 0:
            raise SpecError("cache size/line must be positive")


@dataclass(frozen=True)
class GroupSpec:
    """A SubNUMA cluster: cores plus cluster-local memories."""

    cores: int
    pus_per_core: int = 1
    memories: tuple[MemoryNodeSpec, ...] = ()
    caches: tuple[CacheSpec, ...] = ()
    name: str = "Group0"

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise SpecError("group must contain at least one core")
        if self.pus_per_core < 1:
            raise SpecError("pus_per_core must be >= 1")


@dataclass(frozen=True)
class PackageSpec:
    """A processor package: SubNUMA clusters (or a flat core set) plus
    package-local memories."""

    groups: tuple[GroupSpec, ...] = ()
    cores: int = 0                         # used when groups is empty
    pus_per_core: int = 1
    memories: tuple[MemoryNodeSpec, ...] = ()
    caches: tuple[CacheSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.groups and self.cores:
            raise SpecError("give either groups or a flat core count, not both")
        if not self.groups and self.cores < 1:
            raise SpecError("package must contain cores")

    @property
    def total_cores(self) -> int:
        if self.groups:
            return sum(g.cores for g in self.groups)
        return self.cores

    @property
    def total_pus(self) -> int:
        if self.groups:
            return sum(g.cores * g.pus_per_core for g in self.groups)
        return self.cores * self.pus_per_core


@dataclass(frozen=True)
class InterconnectSpec:
    """Penalties for non-local accesses.

    ``*_latency_add`` values are added to the technology latency;
    ``*_bandwidth_factor`` multiplies (caps) the technology bandwidth.
    ``cross_group`` applies between SubNUMA clusters of the same package,
    ``cross_package`` between packages.
    """

    cross_group_latency_add: float = 10e-9
    cross_group_bandwidth_factor: float = 0.85
    cross_package_latency_add: float = 60e-9
    cross_package_bandwidth_factor: float = 0.55

    def __post_init__(self) -> None:
        for name in ("cross_group_latency_add", "cross_package_latency_add"):
            if getattr(self, name) < 0:
                raise SpecError(f"{name} must be non-negative")
        for name in ("cross_group_bandwidth_factor", "cross_package_bandwidth_factor"):
            v = getattr(self, name)
            if not 0 < v <= 1:
                raise SpecError(f"{name} must be in (0, 1]")


class AttachLevel:
    """Where a memory node hangs in the tree (hwloc attach point)."""

    GROUP = "group"
    PACKAGE = "package"
    MACHINE = "machine"


@dataclass(frozen=True)
class NodeInstance:
    """A fully-resolved NUMA node of a machine.

    Produced by :meth:`MachineSpec.numa_nodes`; carries both numbering
    schemes and the locality coordinates needed to compute access
    performance from any core.
    """

    os_index: int
    logical_index: int
    spec: MemoryNodeSpec
    attach_level: str                      # AttachLevel.*
    package: int | None                    # None for machine-level nodes
    group: int | None                      # None unless attached to a group
    local_pu_indices: tuple[int, ...]      # PUs considered local (empty ⇒ CPU-less w/ whole machine local)

    @property
    def tech(self) -> MemoryTechnology:
        return self.spec.tech

    @property
    def kind(self) -> MemoryKind:
        return self.spec.kind

    @property
    def capacity(self) -> int:
        return self.spec.capacity

    def describe(self) -> str:
        where = (
            f"pkg{self.package}/grp{self.group}"
            if self.group is not None
            else (f"pkg{self.package}" if self.package is not None else "machine")
        )
        return f"node{self.os_index}[{self.spec.describe()}@{where}]"


@dataclass(frozen=True)
class MachineSpec:
    """A whole machine."""

    name: str
    packages: tuple[PackageSpec, ...]
    machine_memories: tuple[MemoryNodeSpec, ...] = ()
    interconnect: InterconnectSpec = field(default_factory=InterconnectSpec)
    #: per-core non-memory work rate used by app models (FLOP-ish ops/s);
    #: keeps compute cost out of the memory model's way.
    core_ops_per_second: float = 2.0e9
    #: does the platform's firmware publish an HMAT?  (older machines do not)
    has_hmat: bool = True
    #: real Linux ≥5.2 only exposes HMAT performance for *local* accesses
    #: (paper §IV-A1); mirrors that limitation when True.
    hmat_local_only: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("machine name must be non-empty")
        if not self.packages:
            raise SpecError("machine must contain at least one package")
        if self.core_ops_per_second <= 0:
            raise SpecError("core_ops_per_second must be positive")
        # Validate every package eagerly so errors surface at build time.
        if not self.numa_nodes():
            raise SpecError("machine must contain at least one NUMA node")

    # ------------------------------------------------------------------
    # PU numbering: PUs are numbered depth-first: package 0 group 0 core 0
    # pu 0, ...  (SMT threads contiguous per core, hwloc physical-ish).
    # ------------------------------------------------------------------
    @property
    def total_pus(self) -> int:
        return sum(p.total_pus for p in self.packages)

    @property
    def total_cores(self) -> int:
        return sum(p.total_cores for p in self.packages)

    def pu_ranges(self) -> list[tuple[int, int, int, range]]:
        """Yield ``(package, group_or_-1, first_pu, range_of_pus)`` per group.

        Flat packages (no SNC) are reported as a single pseudo-group ``-1``.
        """
        out: list[tuple[int, int, int, range]] = []
        pu = 0
        for pi, pkg in enumerate(self.packages):
            if pkg.groups:
                for gi, grp in enumerate(pkg.groups):
                    n = grp.cores * grp.pus_per_core
                    out.append((pi, gi, pu, range(pu, pu + n)))
                    pu += n
            else:
                n = pkg.cores * pkg.pus_per_core
                out.append((pi, -1, pu, range(pu, pu + n)))
                pu += n
        return out

    # ------------------------------------------------------------------
    # NUMA node resolution
    # ------------------------------------------------------------------
    def numa_nodes(self) -> tuple[NodeInstance, ...]:
        """Resolve all memory nodes with OS and logical numbering.

        Logical order: depth-first by attach point (group memories inside
        their group, then package memories, then machine memories) — the
        order Fig. 2/Fig. 5 display.  OS order: sorted by
        (kind priority, logical order) — the order Linux would use.
        """
        raw: list[tuple[MemoryNodeSpec, str, int | None, int | None, tuple[int, ...]]] = []
        ranges = self.pu_ranges()

        def group_pus(pi: int, gi: int) -> tuple[int, ...]:
            for rp, rg, _first, rng in ranges:
                if rp == pi and rg == gi:
                    return tuple(rng)
            return ()

        def package_pus(pi: int) -> tuple[int, ...]:
            out: list[int] = []
            for rp, _rg, _first, rng in ranges:
                if rp == pi:
                    out.extend(rng)
            return tuple(out)

        for pi, pkg in enumerate(self.packages):
            if pkg.groups:
                for gi, grp in enumerate(pkg.groups):
                    for mem in grp.memories:
                        raw.append((mem, AttachLevel.GROUP, pi, gi, group_pus(pi, gi)))
            for mem in pkg.memories:
                raw.append((mem, AttachLevel.PACKAGE, pi, None, package_pus(pi)))
        all_pus = tuple(range(self.total_pus))
        for mem in self.machine_memories:
            raw.append((mem, AttachLevel.MACHINE, None, None, all_pus))

        # logical numbering = raw order re-sorted so that group-level nodes of
        # a package appear before its package-level ones, package by package —
        # which the construction above already guarantees except that group
        # memories of *later* groups must precede package memories; fix by a
        # stable sort on (package ordinal, level rank, group ordinal).
        level_rank = {AttachLevel.GROUP: 0, AttachLevel.PACKAGE: 1, AttachLevel.MACHINE: 2}
        raw.sort(
            key=lambda r: (
                99 if r[2] is None else r[2],       # package (machine last)
                level_rank[r[1]],
                -1 if r[3] is None else r[3],
            )
        )

        os_order = sorted(
            range(len(raw)), key=lambda i: (raw[i][0].kind.os_numbering_priority, i)
        )
        os_index_of = {raw_i: os_i for os_i, raw_i in enumerate(os_order)}

        nodes = tuple(
            NodeInstance(
                os_index=os_index_of[i],
                logical_index=i,
                spec=mem,
                attach_level=level,
                package=pi,
                group=gi,
                local_pu_indices=pus,
            )
            for i, (mem, level, pi, gi, pus) in enumerate(raw)
        )
        return nodes

    def node_by_os_index(self, os_index: int) -> NodeInstance:
        for node in self.numa_nodes():
            if node.os_index == os_index:
                return node
        raise SpecError(f"{self.name}: no NUMA node with OS index {os_index}")

    def total_capacity(self) -> int:
        return sum(n.capacity for n in self.numa_nodes())

    # ------------------------------------------------------------------
    # Locality / performance resolution between a PU and a node
    # ------------------------------------------------------------------
    def pu_location(self, pu: int) -> tuple[int, int]:
        """Return (package, group) of a PU; group is -1 for flat packages."""
        for pi, gi, _first, rng in self.pu_ranges():
            if pu in rng:
                return pi, gi
        raise SpecError(f"{self.name}: no PU {pu}")

    def locality_class(self, pu: int, node: NodeInstance) -> str:
        """Classify an access: 'local' | 'cross_group' | 'cross_package'."""
        if node.attach_level == AttachLevel.MACHINE:
            return "local"          # equidistant from everyone
        ppkg, pgrp = self.pu_location(pu)
        if node.package != ppkg:
            return "cross_package"
        if node.attach_level == AttachLevel.PACKAGE:
            return "local"
        if node.group == pgrp:
            return "local"
        return "cross_group"

    def access_performance(
        self, pu: int, node: NodeInstance, *, loaded: bool = True
    ) -> tuple[float, float, float]:
        """(latency_s, read_bw, write_bw) for one PU accessing one node.

        ``loaded=False`` returns the theoretical (HMAT-flavoured) numbers
        used for firmware synthesis; ``loaded=True`` the benchmark-flavoured
        numbers used by the simulator.
        """
        t = node.tech
        if loaded:
            lat, rbw, wbw = t.loaded_latency, t.peak_read_bandwidth, t.peak_write_bandwidth
        else:
            lat, rbw, wbw = (
                t.hmat_read_latency,
                t.hmat_read_bandwidth,
                t.hmat_write_bandwidth,
            )
        cls = self.locality_class(pu, node)
        ic = self.interconnect
        if cls == "cross_group":
            lat += ic.cross_group_latency_add
            rbw *= ic.cross_group_bandwidth_factor
            wbw *= ic.cross_group_bandwidth_factor
        elif cls == "cross_package":
            lat += ic.cross_package_latency_add
            rbw *= ic.cross_package_bandwidth_factor
            wbw *= ic.cross_package_bandwidth_factor
        return lat, rbw, wbw

    def describe(self) -> str:
        """One-paragraph human summary (used by the CLI and docs)."""
        parts = [f"{self.name}: {len(self.packages)} package(s), "
                 f"{self.total_cores} cores / {self.total_pus} PUs"]
        for node in sorted(self.numa_nodes(), key=lambda n: n.os_index):
            parts.append("  " + node.describe())
        return "\n".join(parts)
