"""Preset platform models.

Each function returns a fresh :class:`~repro.hw.spec.MachineSpec` for one of
the machines the paper depicts or evaluates on:

* :func:`knl_snc4_hybrid50` — Fig. 1: Xeon Phi in SNC4/Hybrid50 mode.
* :func:`xeon_cascadelake_1lm` — Fig. 2 (``snc=2``) and the §VI test server
  (``snc=1``, footnote 18): dual Xeon 6230 with Optane NVDIMMs in
  1-Level-Memory.
* :func:`knl_snc4_flat` — the §VI KNL server (footnote 19): 7230 in SNC-4
  Flat, memory-side cache disabled.
* :func:`fictitious_four_kind` — Fig. 3: per-SNC HBM, per-package DRAM and
  NVDIMM, machine-wide network-attached memory.
* plus the surrounding landscape of §II (KNL cache/quadrant modes, Xeon
  2-Level-Memory, Fugaku-like HBM-only, POWER9+V100) and a homogeneous
  control platform.
"""

from __future__ import annotations

from ..errors import SpecError
from ..units import GB, MiB, parse_size
from .spec import (
    CacheSpec,
    GroupSpec,
    InterconnectSpec,
    MachineSpec,
    MemoryNodeSpec,
    MemsideCacheSpec,
    PackageSpec,
)
from .techs import tech

__all__ = [
    "knl_snc4_flat",
    "knl_snc4_hybrid50",
    "knl_snc4_cache",
    "knl_quadrant_flat",
    "xeon_cascadelake_1lm",
    "xeon_cascadelake_2lm",
    "fictitious_four_kind",
    "fugaku_like",
    "power9_v100",
    "uniform_dram",
    "PLATFORM_REGISTRY",
    "get_platform",
]


def _knl_caches() -> tuple[CacheSpec, ...]:
    # KNL: 32KB L1 per core, 1MB L2 per tile (modelled per-core 512KB share);
    # no L3 — the memory-side MCDRAM cache plays that role in cache mode.
    return (
        CacheSpec(level=1, size=32 * 1024),
        CacheSpec(level=2, size=512 * 1024),
    )


def _xeon_caches() -> tuple[CacheSpec, ...]:
    # Cascade Lake 6230: 32KB L1, 1MB L2 per core, 27.5MB shared LLC.
    return (
        CacheSpec(level=1, size=32 * 1024),
        CacheSpec(level=2, size=1024 * 1024),
        CacheSpec(level=3, size=parse_size("27.5MB"), shared=True),
    )


def _mcdram_as_cache(size: int) -> MemsideCacheSpec:
    t = tech("mcdram-knl-snc")
    return MemsideCacheSpec(
        size=size,
        hit_latency=t.loaded_latency,
        hit_bandwidth=t.peak_read_bandwidth,
        associativity=1,
        label="MemSideCache(MCDRAM)",
    )


def knl_snc4_flat(
    *,
    cores_per_cluster: int = 16,
    dram_per_cluster: int | str = 24 * GB,
    mcdram_per_cluster: int | str = 4 * GB,
) -> MachineSpec:
    """Xeon Phi 7230, SNC-4 **Flat**: the §VI KNL server (footnote 19).

    Four SubNUMA clusters, each with a DDR4 node and a 4 GB MCDRAM node;
    the memory-side cache is disabled so the entire MCDRAM is a separate
    NUMA node per cluster.
    """
    dram = parse_size(dram_per_cluster)
    mcdram = parse_size(mcdram_per_cluster)
    groups = tuple(
        GroupSpec(
            cores=cores_per_cluster,
            pus_per_core=4,
            name=f"Group0 L#{i}",
            memories=(
                MemoryNodeSpec(tech=tech("ddr4-knl-snc"), capacity=dram),
                MemoryNodeSpec(
                    tech=tech("mcdram-knl-snc"), capacity=mcdram, subtype="MCDRAM"
                ),
            ),
            caches=_knl_caches(),
        )
        for i in range(4)
    )
    return MachineSpec(
        name="knl-snc4-flat",
        packages=(PackageSpec(groups=groups),),
        interconnect=InterconnectSpec(
            cross_group_latency_add=15e-9,
            cross_group_bandwidth_factor=0.8,
        ),
        core_ops_per_second=0.16e9,  # 1.3 GHz in-order-ish cores, scalar irregular code
        has_hmat=False,   # KNL predates ACPI HMAT: benchmarking required
    )


def knl_snc4_hybrid50(
    *,
    cores_per_cluster: int = 18,
    dram_per_cluster: int | str = 12 * GB,
    mcdram_flat_per_cluster: int | str = 2 * GB,
    mcdram_cache_per_cluster: int | str = 2 * GB,
) -> MachineSpec:
    """Xeon Phi in SNC4/**Hybrid50** mode — the Fig. 1 machine.

    Each cluster: 18 cores, 12 GB DRAM behind a 2 GB MCDRAM memory-side
    cache, plus 2 GB of MCDRAM exposed flat.
    """
    dram = parse_size(dram_per_cluster)
    flat = parse_size(mcdram_flat_per_cluster)
    cache = parse_size(mcdram_cache_per_cluster)
    groups = tuple(
        GroupSpec(
            cores=cores_per_cluster,
            pus_per_core=4,
            name=f"Group0 L#{i}",
            memories=(
                MemoryNodeSpec(
                    tech=tech("ddr4-knl-snc"),
                    capacity=dram,
                    memside_cache=_mcdram_as_cache(cache),
                ),
                MemoryNodeSpec(
                    tech=tech("mcdram-knl-snc"), capacity=flat, subtype="MCDRAM"
                ),
            ),
            caches=_knl_caches(),
        )
        for i in range(4)
    )
    return MachineSpec(
        name="knl-snc4-hybrid50",
        packages=(PackageSpec(groups=groups),),
        interconnect=InterconnectSpec(
            cross_group_latency_add=15e-9,
            cross_group_bandwidth_factor=0.8,
        ),
        core_ops_per_second=0.16e9,
        has_hmat=False,
    )


def knl_snc4_cache(
    *,
    cores_per_cluster: int = 16,
    dram_per_cluster: int | str = 24 * GB,
    mcdram_cache_per_cluster: int | str = 4 * GB,
) -> MachineSpec:
    """Xeon Phi SNC-4 **Cache** mode: MCDRAM entirely a memory-side cache."""
    dram = parse_size(dram_per_cluster)
    cache = parse_size(mcdram_cache_per_cluster)
    groups = tuple(
        GroupSpec(
            cores=cores_per_cluster,
            pus_per_core=4,
            name=f"Group0 L#{i}",
            memories=(
                MemoryNodeSpec(
                    tech=tech("ddr4-knl-snc"),
                    capacity=dram,
                    memside_cache=_mcdram_as_cache(cache),
                ),
            ),
            caches=_knl_caches(),
        )
        for i in range(4)
    )
    return MachineSpec(
        name="knl-snc4-cache",
        packages=(PackageSpec(groups=groups),),
        has_hmat=False,
    )


def knl_quadrant_flat(
    *,
    cores: int = 64,
    dram: int | str = 96 * GB,
    mcdram: int | str = 16 * GB,
) -> MachineSpec:
    """Xeon Phi Quadrant/Flat: one package, one DRAM + one MCDRAM node.

    Machine-wide MCDRAM bandwidth is ~4× the per-SNC figure.
    """
    mc = tech("mcdram-knl-snc")
    dd = tech("ddr4-knl-snc")
    mc_full = mc.scaled(
        name="mcdram-knl",
        hmat_read_bandwidth=mc.hmat_read_bandwidth * 4,
        hmat_write_bandwidth=mc.hmat_write_bandwidth * 4,
        peak_read_bandwidth=mc.peak_read_bandwidth * 4,
        peak_write_bandwidth=mc.peak_write_bandwidth * 4,
    )
    dd_full = dd.scaled(
        name="ddr4-knl",
        hmat_read_bandwidth=dd.hmat_read_bandwidth * 3,
        hmat_write_bandwidth=dd.hmat_write_bandwidth * 3,
        peak_read_bandwidth=dd.peak_read_bandwidth * 3,
        peak_write_bandwidth=dd.peak_write_bandwidth * 3,
    )
    pkg = PackageSpec(
        cores=cores,
        pus_per_core=4,
        memories=(
            MemoryNodeSpec(tech=dd_full, capacity=parse_size(dram)),
            MemoryNodeSpec(tech=mc_full, capacity=parse_size(mcdram), subtype="MCDRAM"),
        ),
        caches=_knl_caches(),
    )
    return MachineSpec(name="knl-quadrant-flat", packages=(pkg,), has_hmat=False)


def xeon_cascadelake_1lm(
    *,
    snc: int = 1,
    cores_per_package: int = 20,
    dram_per_package: int | str = 192 * GB,
    nvdimm_per_package: int | str = 768 * GB,
    packages: int = 2,
) -> MachineSpec:
    """Dual Xeon 6230 with Optane NVDIMMs in **1-Level-Memory**.

    ``snc=2`` reproduces Fig. 2 (four 96 GB DRAM nodes + two NVDIMM nodes);
    ``snc=1`` reproduces the §VI test configuration (footnote 18: SNC
    disabled, one 192 GB DRAM node and one 768 GB NVDIMM node per package).
    """
    if snc not in (1, 2):
        raise SpecError("snc must be 1 or 2")
    if cores_per_package % snc:
        raise SpecError("cores_per_package must divide evenly among SNCs")
    dram = parse_size(dram_per_package)
    nvd = parse_size(nvdimm_per_package)
    ddr = tech("ddr4-xeon")
    if snc == 2:
        # Each SNC owns half the DRAM channels: half capacity and bandwidth.
        ddr_snc = ddr.scaled(
            name="ddr4-xeon-snc",
            hmat_read_bandwidth=ddr.hmat_read_bandwidth,
            hmat_write_bandwidth=ddr.hmat_write_bandwidth,
            peak_read_bandwidth=ddr.peak_read_bandwidth / 2,
            peak_write_bandwidth=ddr.peak_write_bandwidth / 2,
        )
        groups = tuple(
            GroupSpec(
                cores=cores_per_package // 2,
                pus_per_core=2,
                name=f"Group0 L#{g}",
                memories=(MemoryNodeSpec(tech=ddr_snc, capacity=dram // 2),),
                caches=_xeon_caches(),
            )
            for g in range(2)
        )
        pkg_proto = lambda: PackageSpec(  # noqa: E731 - tiny local factory
            groups=groups,
            memories=(MemoryNodeSpec(tech=tech("optane-nvdimm"), capacity=nvd),),
        )
    else:
        pkg_proto = lambda: PackageSpec(  # noqa: E731
            cores=cores_per_package,
            pus_per_core=2,
            memories=(
                MemoryNodeSpec(tech=ddr, capacity=dram),
                MemoryNodeSpec(tech=tech("optane-nvdimm"), capacity=nvd),
            ),
            caches=_xeon_caches(),
        )
    return MachineSpec(
        name=f"xeon-cascadelake-1lm-snc{snc}",
        packages=tuple(pkg_proto() for _ in range(packages)),
        core_ops_per_second=2.5e9,
    )


def xeon_cascadelake_2lm(
    *,
    cores_per_package: int = 20,
    dram_cache_per_package: int | str = 192 * GB,
    nvdimm_per_package: int | str = 768 * GB,
    packages: int = 2,
) -> MachineSpec:
    """Xeon with NVDIMMs in **2-Level-Memory**: DRAM is a memory-side cache."""
    ddr = tech("ddr4-xeon")
    cache = MemsideCacheSpec(
        size=parse_size(dram_cache_per_package),
        hit_latency=ddr.loaded_latency,
        hit_bandwidth=ddr.peak_read_bandwidth,
        associativity=1,
        label="MemSideCache(DRAM)",
    )
    pkgs = tuple(
        PackageSpec(
            cores=cores_per_package,
            pus_per_core=2,
            memories=(
                MemoryNodeSpec(
                    tech=tech("optane-nvdimm"),
                    capacity=parse_size(nvdimm_per_package),
                    memside_cache=cache,
                ),
            ),
            caches=_xeon_caches(),
        )
        for _ in range(packages)
    )
    return MachineSpec(name="xeon-cascadelake-2lm", packages=pkgs)


def fictitious_four_kind(
    *,
    packages: int = 2,
    groups_per_package: int = 2,
    cores_per_group: int = 4,
    hbm_per_group: int | str = 16 * GB,
    dram_per_package: int | str = 128 * GB,
    nvdimm_per_package: int | str = 512 * GB,
    nam_capacity: int | str = 1024 * GB,
) -> MachineSpec:
    """The Fig. 3 fictitious platform with four simultaneous memory kinds.

    Per SubNUMA cluster: an HBM node.  Per package: a DRAM node and an
    NVDIMM node.  Machine-wide: a network-attached memory node.

    The NVDIMM here publishes honest (loaded-flavoured) HMAT latencies —
    unlike the Optane firmware of Fig. 5, whose theoretical 77 ns would
    rank it *ahead* of DDR5 (the paper's footnote 6: "Some NVDIMM
    technologies are not slower than DRAM").  A four-kind machine where
    each criterion picks a different kind makes the better demonstrator.
    """
    nvdimm = tech(
        "optane-nvdimm",
        hmat_read_latency=340e-9,
        hmat_write_latency=400e-9,
    )
    groups = tuple(
        GroupSpec(
            cores=cores_per_group,
            pus_per_core=2,
            name=f"Group0 L#{g}",
            memories=(
                MemoryNodeSpec(
                    tech=tech("hbm2"), capacity=parse_size(hbm_per_group), subtype="HBM"
                ),
            ),
            caches=_xeon_caches(),
        )
        for g in range(groups_per_package)
    )
    pkgs = tuple(
        PackageSpec(
            groups=groups,
            memories=(
                MemoryNodeSpec(tech=tech("ddr5"), capacity=parse_size(dram_per_package)),
                MemoryNodeSpec(
                    tech=nvdimm,
                    capacity=parse_size(nvdimm_per_package),
                ),
            ),
        )
        for _ in range(packages)
    )
    return MachineSpec(
        name="fictitious-four-kind",
        packages=pkgs,
        machine_memories=(
            MemoryNodeSpec(
                tech=tech("nam"), capacity=parse_size(nam_capacity), subtype="NAM"
            ),
        ),
    )


def fugaku_like(
    *,
    cmgs: int = 4,
    cores_per_cmg: int = 12,
    hbm_per_cmg: int | str = 8 * GB,
) -> MachineSpec:
    """A64FX-like node: HBM2-only memory, one node per core memory group.

    §II-C: Fugaku combines HBM with nothing else, so there is no
    performance/productivity trade-off — a useful control platform where
    every attribute ranking is trivial.
    """
    groups = tuple(
        GroupSpec(
            cores=cores_per_cmg,
            pus_per_core=1,
            name=f"CMG L#{i}",
            memories=(
                MemoryNodeSpec(
                    tech=tech("hbm2"), capacity=parse_size(hbm_per_cmg), subtype="HBM"
                ),
            ),
            caches=(
                CacheSpec(level=1, size=64 * 1024),
                CacheSpec(level=2, size=8 * MiB, shared=True),
            ),
        )
        for i in range(cmgs)
    )
    return MachineSpec(name="fugaku-like", packages=(PackageSpec(groups=groups),))


def power9_v100(
    *,
    packages: int = 2,
    cores_per_package: int = 16,
    dram_per_package: int | str = 256 * GB,
    gpu_mem_per_package: int | str = 16 * GB,
) -> MachineSpec:
    """POWER9-style node exposing V100 GPU memory as host NUMA nodes (§II-C)."""
    pkgs = tuple(
        PackageSpec(
            cores=cores_per_package,
            pus_per_core=4,
            memories=(
                MemoryNodeSpec(tech=tech("ddr4-xeon"), capacity=parse_size(dram_per_package)),
                MemoryNodeSpec(
                    tech=tech("gpu-hbm2"),
                    capacity=parse_size(gpu_mem_per_package),
                    subtype="GPUMemory",
                ),
            ),
            caches=_xeon_caches(),
        )
        for _ in range(packages)
    )
    return MachineSpec(name="power9-v100", packages=pkgs)


def uniform_dram(
    *,
    packages: int = 2,
    cores_per_package: int = 8,
    dram_per_package: int | str = 64 * GB,
) -> MachineSpec:
    """Homogeneous NUMA control platform (§IV: the API also ranks plain
    NUMA platforms, where latency/bandwidth encode near vs far)."""
    pkgs = tuple(
        PackageSpec(
            cores=cores_per_package,
            pus_per_core=2,
            memories=(
                MemoryNodeSpec(tech=tech("ddr4-xeon"), capacity=parse_size(dram_per_package)),
            ),
            caches=_xeon_caches(),
        )
        for _ in range(packages)
    )
    return MachineSpec(name="uniform-dram", packages=pkgs)


PLATFORM_REGISTRY = {
    "knl-snc4-flat": knl_snc4_flat,
    "knl-snc4-hybrid50": knl_snc4_hybrid50,
    "knl-snc4-cache": knl_snc4_cache,
    "knl-quadrant-flat": knl_quadrant_flat,
    "xeon-cascadelake-1lm": xeon_cascadelake_1lm,
    "xeon-cascadelake-2lm": xeon_cascadelake_2lm,
    "fictitious-four-kind": fictitious_four_kind,
    "fugaku-like": fugaku_like,
    "power9-v100": power9_v100,
    "uniform-dram": uniform_dram,
}


def get_platform(name: str, **kwargs) -> MachineSpec:
    """Instantiate a preset platform by registry name."""
    try:
        factory = PLATFORM_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(PLATFORM_REGISTRY))
        raise SpecError(f"unknown platform {name!r}; known: {known}") from None
    return factory(**kwargs)


def xeon_max(
    *,
    mode: str = "flat",
    quadrants: int = 4,
    cores_per_quadrant: int = 14,
    hbm_per_quadrant: int | str = 16 * GB,
    ddr5_per_quadrant: int | str = 64 * GB,
    packages: int = 1,
) -> MachineSpec:
    """Intel Xeon Max (Sapphire Rapids + HBM) — the HBM+DDR Xeon the
    paper's §II-C anticipated ("HBM capacity may be too low to avoid a
    combination with another kind of slower but larger memory").

    Modes mirror the product's BIOS options, which are KNL's reborn:

    * ``flat``   — HBM and DDR5 as separate NUMA nodes per quadrant;
    * ``cache``  — HBM as a memory-side cache in front of the DDR5;
    * ``hbm-only`` — no DDR5 populated: HBM is the only memory.
    """
    if mode not in ("flat", "cache", "hbm-only"):
        raise SpecError(f"unknown Xeon Max mode {mode!r}")
    hbm = parse_size(hbm_per_quadrant)
    ddr = parse_size(ddr5_per_quadrant)
    hbm_tech = tech("hbm2e-spr-quadrant")
    ddr_tech = tech("ddr5-spr-quadrant")
    caches = (
        CacheSpec(level=1, size=48 * 1024),
        CacheSpec(level=2, size=2 * 1024 * 1024),
        CacheSpec(level=3, size=parse_size("28MB"), shared=True),
    )

    def quadrant_memories() -> tuple[MemoryNodeSpec, ...]:
        if mode == "hbm-only":
            return (
                MemoryNodeSpec(tech=hbm_tech, capacity=hbm, subtype="HBM"),
            )
        if mode == "cache":
            cache = MemsideCacheSpec(
                size=hbm,
                hit_latency=hbm_tech.loaded_latency,
                hit_bandwidth=hbm_tech.peak_read_bandwidth,
                associativity=1,
                label="MemSideCache(HBM)",
            )
            return (
                MemoryNodeSpec(tech=ddr_tech, capacity=ddr, memside_cache=cache),
            )
        return (
            MemoryNodeSpec(tech=ddr_tech, capacity=ddr),
            MemoryNodeSpec(tech=hbm_tech, capacity=hbm, subtype="HBM"),
        )

    pkgs = tuple(
        PackageSpec(
            groups=tuple(
                GroupSpec(
                    cores=cores_per_quadrant,
                    pus_per_core=2,
                    name=f"Quadrant L#{q}",
                    memories=quadrant_memories(),
                    caches=caches,
                )
                for q in range(quadrants)
            )
        )
        for _ in range(packages)
    )
    return MachineSpec(
        name=f"xeon-max-{mode}",
        packages=pkgs,
        core_ops_per_second=2.2e9,
    )


PLATFORM_REGISTRY["xeon-max"] = xeon_max
__all__.append("xeon_max")
