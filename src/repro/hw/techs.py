"""Memory technology definitions.

A :class:`MemoryTechnology` bundles every performance characteristic the
simulator and the firmware synthesizer need for one *kind* of memory:
theoretical (HMAT-style) latency/bandwidth, loaded (benchmark-style)
latency/bandwidth, capacity-independent properties such as persistence, and
the behavioural quirks that shape the paper's measured curves — most
importantly the Optane-style internal write buffer whose exhaustion causes
the bandwidth collapse visible in Tables II(a) and III(a).

Parameter provenance is recorded in DESIGN.md §5: values come from the
paper's Fig. 5 (HMAT numbers), §IV-A2 / van Renen et al. (loaded numbers)
and Table III (per-SubNUMA-cluster KNL numbers).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from ..errors import SpecError
from ..units import GB, MB, parse_bandwidth, parse_size, parse_time

__all__ = ["MemoryKind", "MemoryTechnology", "TECH_PRESETS", "tech"]


class MemoryKind(enum.Enum):
    """Broad technology family of a memory node.

    The paper's point is precisely that application code should *not* branch
    on this enum — it should query performance attributes instead.  The kind
    is kept for the identification step (§III-A), for human-readable output
    (lstopo subtype labels such as ``MCDRAM``), and for the OS node-numbering
    conventions the paper discusses in §VII.
    """

    DRAM = "DRAM"
    HBM = "HBM"
    NVDIMM = "NVDIMM"
    NAM = "NAM"            # network-attached memory
    GPU = "GPU"            # coprocessor memory exposed as a host NUMA node

    @property
    def os_numbering_priority(self) -> int:
        """Lower value ⇒ lower OS NUMA node index.

        Linux numbers conventional DRAM nodes first so that default
        allocations land on DRAM; special-purpose memory gets higher
        indices (footnote 21 of the paper: KNL MCDRAM nodes always have
        higher indices than DRAM nodes).
        """
        return {
            MemoryKind.DRAM: 0,
            MemoryKind.HBM: 1,
            MemoryKind.NVDIMM: 2,
            MemoryKind.GPU: 3,
            MemoryKind.NAM: 4,
        }[self]


@dataclass(frozen=True)
class MemoryTechnology:
    """Performance model of one memory technology.

    All bandwidths are **per NUMA node** peaks in bytes/second; latencies in
    seconds.  ``hmat_*`` fields are the theoretical values a vendor would
    put in the ACPI HMAT table; ``loaded_*`` fields are what a benchmark
    measures under concurrency and drive the performance simulator.
    """

    name: str
    kind: MemoryKind

    # --- theoretical values for firmware synthesis (paper Fig. 5 units) ---
    hmat_read_latency: float        # seconds
    hmat_write_latency: float       # seconds
    hmat_read_bandwidth: float      # bytes/s
    hmat_write_bandwidth: float     # bytes/s

    # --- loaded/measured values for simulation -------------------------
    loaded_latency: float           # seconds, random-access under load
    peak_read_bandwidth: float      # bytes/s, streaming reads, full node
    peak_write_bandwidth: float     # bytes/s, streaming writes, full node

    # Optane-style internal write-combining buffer.  Streaming writes whose
    # working set stays below ``write_buffer_bytes`` run at
    # ``peak_write_bandwidth``; beyond it they collapse towards
    # ``sustained_write_bandwidth``.  ``None`` disables the model.
    write_buffer_bytes: int | None = None
    sustained_write_bandwidth: float | None = None

    # Random-access latency inflation once the working set exceeds
    # ``latency_knee_bytes`` (page-walk/TLB and device-side effects).  The
    # effective latency grows by ``latency_inflation`` per decade of
    # working-set growth beyond the knee.
    latency_knee_bytes: int = 1 * GB
    latency_inflation: float = 0.08

    # How well the device overlaps independent misses: per-thread cap on
    # outstanding misses the device sustains (NVDIMM queues are shallow).
    max_mlp: float = 10.0

    # Threads needed to saturate the node's streaming bandwidth; below
    # that, effective bandwidth scales ~linearly with thread count.
    saturation_threads: float = 6.0

    # Fraction of peak bandwidth achievable under a random (line-granular)
    # access mix — banks/queues lose efficiency without locality.
    random_bandwidth_fraction: float = 0.35

    # --- non-performance properties ------------------------------------
    persistent: bool = False
    endurance_writes: float | None = None   # device write endurance (writes/cell)
    power_pj_per_byte: float | None = None  # access energy

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("technology name must be non-empty")
        for attr in (
            "hmat_read_latency",
            "hmat_write_latency",
            "loaded_latency",
        ):
            if getattr(self, attr) <= 0:
                raise SpecError(f"{self.name}: {attr} must be positive")
        for attr in (
            "hmat_read_bandwidth",
            "hmat_write_bandwidth",
            "peak_read_bandwidth",
            "peak_write_bandwidth",
        ):
            if getattr(self, attr) <= 0:
                raise SpecError(f"{self.name}: {attr} must be positive")
        if (self.write_buffer_bytes is None) != (self.sustained_write_bandwidth is None):
            raise SpecError(
                f"{self.name}: write_buffer_bytes and sustained_write_bandwidth "
                "must be given together"
            )
        if self.max_mlp < 1.0:
            raise SpecError(f"{self.name}: max_mlp must be >= 1")
        if self.saturation_threads < 1.0:
            raise SpecError(f"{self.name}: saturation_threads must be >= 1")
        if not 0 < self.random_bandwidth_fraction <= 1:
            raise SpecError(
                f"{self.name}: random_bandwidth_fraction must be in (0, 1]"
            )

    # -- convenience ------------------------------------------------------
    @property
    def hmat_bandwidth(self) -> float:
        """Single bandwidth figure for firmware tables without R/W split."""
        return min(self.hmat_read_bandwidth, self.hmat_write_bandwidth)

    @property
    def hmat_latency(self) -> float:
        """Single latency figure for firmware tables without R/W split."""
        return max(self.hmat_read_latency, self.hmat_write_latency)

    def effective_write_bandwidth(self, working_set: int) -> float:
        """Streaming write bandwidth for a given working-set size.

        Models the internal write buffer: a smooth interpolation between the
        peak (inside the buffer) and the sustained floor (far beyond it).
        """
        if working_set < 0:
            raise SpecError("working_set must be non-negative")
        if self.write_buffer_bytes is None or working_set <= self.write_buffer_bytes:
            return self.peak_write_bandwidth
        assert self.sustained_write_bandwidth is not None
        # Beyond the buffer, the fraction of writes absorbed by the buffer
        # shrinks as buffer/ws; the rest pay the sustained rate.
        frac_buffered = self.write_buffer_bytes / working_set
        inv_bw = (
            frac_buffered / self.peak_write_bandwidth
            + (1.0 - frac_buffered) / self.sustained_write_bandwidth
        )
        return 1.0 / inv_bw

    def effective_latency(self, working_set: int) -> float:
        """Random-access loaded latency for a given working-set size."""
        if working_set < 0:
            raise SpecError("working_set must be non-negative")
        if working_set <= self.latency_knee_bytes:
            return self.loaded_latency
        import math

        decades = math.log10(working_set / self.latency_knee_bytes)
        return self.loaded_latency * (1.0 + self.latency_inflation * decades)

    def effective_write_bandwidth_array(self, working_sets):
        """Vectorized :meth:`effective_write_bandwidth` over a float array.

        Bit-identical to the scalar method per element: the same division
        and addition order, evaluated elementwise.  ``working_sets`` must
        already be non-negative whole numbers (the caller floors them).
        """
        import numpy as np

        w = np.asarray(working_sets, dtype=np.float64)
        out = np.full(w.shape, self.peak_write_bandwidth)
        if self.write_buffer_bytes is None:
            return out
        over = w > self.write_buffer_bytes
        if over.any():
            assert self.sustained_write_bandwidth is not None
            frac_buffered = self.write_buffer_bytes / w[over]
            inv_bw = (
                frac_buffered / self.peak_write_bandwidth
                + (1.0 - frac_buffered) / self.sustained_write_bandwidth
            )
            out[over] = 1.0 / inv_bw
        return out

    def effective_latency_array(self, working_sets):
        """Vectorized :meth:`effective_latency` over a float array.

        Bit-identical per element.  ``math.log10`` is evaluated
        elementwise on the beyond-knee subset rather than through
        ``np.log10``: numpy's SIMD log10 differs from libm in the last
        ulp for ~1% of inputs, which would break the batch pricing
        bit-identity contract (docs/MODEL.md §7c).
        """
        import math

        import numpy as np

        w = np.asarray(working_sets, dtype=np.float64)
        out = np.full(w.shape, self.loaded_latency)
        over = np.nonzero(w > self.latency_knee_bytes)[0]
        if over.size:
            knee = self.latency_knee_bytes
            loaded = self.loaded_latency
            inflation = self.latency_inflation
            out[over] = [
                loaded * (1.0 + inflation * math.log10(float(ws) / knee))
                for ws in w[over]
            ]
        return out

    def scaled(self, **overrides) -> "MemoryTechnology":
        """Return a copy with fields replaced (e.g. per-SNC bandwidth cuts)."""
        return replace(self, **overrides)


def tech(name: str, **overrides) -> MemoryTechnology:
    """Look up a preset technology, optionally overriding fields."""
    try:
        base = TECH_PRESETS[name]
    except KeyError:
        raise SpecError(f"unknown technology preset {name!r}") from None
    return base.scaled(**overrides) if overrides else base


def _t(value: str) -> float:
    return parse_time(value)


def _bw(value: str) -> float:
    return parse_bandwidth(value)


#: Preset technologies.  Numbers follow DESIGN.md §5.
TECH_PRESETS: dict[str, MemoryTechnology] = {}


def _register(t: MemoryTechnology) -> MemoryTechnology:
    if t.name in TECH_PRESETS:
        raise SpecError(f"duplicate technology preset {t.name!r}")
    TECH_PRESETS[t.name] = t
    return t


# Cascade Lake socket-local DDR4: HMAT 131072 MB/s & 26 ns (paper Fig. 5);
# loaded STREAM ~80 GB/s and ~285 ns loaded latency (van Renen et al.).
_register(
    MemoryTechnology(
        name="ddr4-xeon",
        kind=MemoryKind.DRAM,
        hmat_read_latency=_t("26ns"),
        hmat_write_latency=_t("26ns"),
        hmat_read_bandwidth=131072 * MB,
        hmat_write_bandwidth=131072 * MB,
        loaded_latency=_t("285ns"),
        # Calibrated so a 20-thread Triad lands at Table III(a)'s ~75 GB/s:
        # 3/(2/76 + 1/72) = 74.6 GB/s.
        peak_read_bandwidth=_bw("76GB/s"),
        peak_write_bandwidth=_bw("72GB/s"),
        latency_knee_bytes=4 * GB,
        latency_inflation=0.35,
        max_mlp=10.0,
        saturation_threads=6.0,
        random_bandwidth_fraction=0.40,
    )
)

# Optane DC NVDIMM (per socket, 6 DIMMs): HMAT 78644 MB/s & 77 ns (Fig. 5);
# measured ~30 GB/s reads, ~10 GB/s sustained writes beyond the on-DIMM
# write-combining buffers, ~860 ns loaded latency (van Renen et al.).
_register(
    MemoryTechnology(
        name="optane-nvdimm",
        kind=MemoryKind.NVDIMM,
        hmat_read_latency=_t("77ns"),
        hmat_write_latency=_t("77ns"),
        hmat_read_bandwidth=78644 * MB,
        hmat_write_bandwidth=78644 * MB,
        loaded_latency=_t("860ns"),
        # Calibrated to Table III(a)'s NVDIMM Triad curve 31.6 → 10.5 → 9.5:
        # below the ~8 GB on-DIMM write-combining window, Triad is
        # 3/(2/33 + 1/30) = 31.9 GB/s; far beyond it writes collapse to the
        # sustained floor and Triad flattens near 3/(2/33 + 1/3.5) ≈ 9.4.
        peak_read_bandwidth=_bw("33GB/s"),
        peak_write_bandwidth=_bw("30GB/s"),
        write_buffer_bytes=parse_size("8GB"),
        sustained_write_bandwidth=_bw("3.5GB/s"),
        latency_knee_bytes=18 * GB,
        latency_inflation=4.5,
        max_mlp=10.0,
        saturation_threads=4.0,
        random_bandwidth_fraction=0.33,
        persistent=True,
        endurance_writes=1e6,
        power_pj_per_byte=2.5,
    )
)

# KNL MCDRAM, per SubNUMA cluster (quarter of ~350 GB/s machine-wide);
# idle latency slightly *higher* than DDR4 on KNL, similar loaded latency
# (paper §III-B2 and Table II(b)).
_register(
    MemoryTechnology(
        name="mcdram-knl-snc",
        kind=MemoryKind.HBM,
        hmat_read_latency=_t("154ns"),
        hmat_write_latency=_t("154ns"),
        hmat_read_bandwidth=_bw("90GB/s"),
        hmat_write_bandwidth=_bw("90GB/s"),
        loaded_latency=_t("156ns"),
        # Per-SNC Triad with 16 threads ≈ 3/(2/90 + 1/86) = 88.7 GB/s,
        # matching Table III(b)'s 85-90 GB/s band.
        peak_read_bandwidth=_bw("90GB/s"),
        peak_write_bandwidth=_bw("86GB/s"),
        latency_knee_bytes=2 * GB,
        latency_inflation=0.05,
        max_mlp=16.0,
        saturation_threads=10.0,
        random_bandwidth_fraction=0.30,
    )
)

# KNL DDR4, per SubNUMA cluster (quarter of ~90 GB/s machine-wide).
_register(
    MemoryTechnology(
        name="ddr4-knl-snc",
        kind=MemoryKind.DRAM,
        hmat_read_latency=_t("130ns"),
        hmat_write_latency=_t("130ns"),
        hmat_read_bandwidth=_bw("30GB/s"),
        hmat_write_bandwidth=_bw("30GB/s"),
        loaded_latency=_t("145ns"),
        # Per-SNC Triad with 16 threads ≈ 3/(2/29.5 + 1/29) = 29.3 GB/s,
        # matching Table III(b)'s 29.17 GB/s.
        peak_read_bandwidth=_bw("29.5GB/s"),
        peak_write_bandwidth=_bw("29GB/s"),
        latency_knee_bytes=2 * GB,
        latency_inflation=0.05,
        max_mlp=10.0,
        saturation_threads=8.0,
        random_bandwidth_fraction=0.35,
    )
)

# Generic on-package HBM2 stack for the fictitious platform / Fugaku-like.
_register(
    MemoryTechnology(
        name="hbm2",
        kind=MemoryKind.HBM,
        hmat_read_latency=_t("100ns"),
        hmat_write_latency=_t("100ns"),
        hmat_read_bandwidth=_bw("500GB/s"),
        hmat_write_bandwidth=_bw("500GB/s"),
        loaded_latency=_t("120ns"),
        peak_read_bandwidth=_bw("480GB/s"),
        peak_write_bandwidth=_bw("440GB/s"),
        latency_knee_bytes=4 * GB,
        latency_inflation=0.05,
        max_mlp=24.0,
    )
)

# Generic DDR5 for the fictitious platform (paper §II-C: HBM + off-package
# DDR5 combinations announced by ETRI K-AB21 and SiPearl Rhea).
_register(
    MemoryTechnology(
        name="ddr5",
        kind=MemoryKind.DRAM,
        hmat_read_latency=_t("110ns"),
        hmat_write_latency=_t("110ns"),
        hmat_read_bandwidth=_bw("100GB/s"),
        hmat_write_bandwidth=_bw("100GB/s"),
        loaded_latency=_t("130ns"),
        peak_read_bandwidth=_bw("95GB/s"),
        peak_write_bandwidth=_bw("90GB/s"),
        latency_knee_bytes=4 * GB,
        latency_inflation=0.05,
        max_mlp=12.0,
    )
)

# Network-attached memory (Kove / DEEP NAM style): very high capacity,
# microsecond-class latency, moderate bandwidth.
_register(
    MemoryTechnology(
        name="nam",
        kind=MemoryKind.NAM,
        hmat_read_latency=_t("1500ns"),
        hmat_write_latency=_t("1800ns"),
        hmat_read_bandwidth=_bw("12GB/s"),
        hmat_write_bandwidth=_bw("10GB/s"),
        loaded_latency=_t("2200ns"),
        peak_read_bandwidth=_bw("11GB/s"),
        peak_write_bandwidth=_bw("9GB/s"),
        latency_knee_bytes=64 * GB,
        latency_inflation=0.10,
        max_mlp=8.0,
    )
)

# V100-class GPU memory exposed as a host NUMA node (POWER9 NVLink).
_register(
    MemoryTechnology(
        name="gpu-hbm2",
        kind=MemoryKind.GPU,
        hmat_read_latency=_t("400ns"),
        hmat_write_latency=_t("400ns"),
        hmat_read_bandwidth=_bw("60GB/s"),   # host-side NVLink view
        hmat_write_bandwidth=_bw("60GB/s"),
        loaded_latency=_t("450ns"),
        peak_read_bandwidth=_bw("55GB/s"),
        peak_write_bandwidth=_bw("50GB/s"),
        latency_knee_bytes=8 * GB,
        latency_inflation=0.05,
        max_mlp=16.0,
    )
)

# CXL-attached DRAM expander (Type-3 device): DRAM media behind a CXL.mem
# link — the emerging "exotic kind" of §II-C/§VIII.  Latency between local
# DRAM and NVDIMM; bandwidth limited by the x8 link.
_register(
    MemoryTechnology(
        name="cxl-dram",
        kind=MemoryKind.DRAM,
        hmat_read_latency=_t("170ns"),
        hmat_write_latency=_t("170ns"),
        hmat_read_bandwidth=_bw("64GB/s"),
        hmat_write_bandwidth=_bw("64GB/s"),
        loaded_latency=_t("400ns"),
        peak_read_bandwidth=_bw("60GB/s"),
        peak_write_bandwidth=_bw("55GB/s"),
        latency_knee_bytes=16 * GB,
        latency_inflation=0.10,
        max_mlp=10.0,
        saturation_threads=8.0,
        random_bandwidth_fraction=0.35,
    )
)


# Sapphire Rapids HBM (Xeon Max) on-package HBM2e, per SNC quadrant:
# ~1 TB/s per socket => ~250 GB/s per quadrant; latency slightly above DDR5.
_register(
    MemoryTechnology(
        name="hbm2e-spr-quadrant",
        kind=MemoryKind.HBM,
        hmat_read_latency=_t("130ns"),
        hmat_write_latency=_t("130ns"),
        hmat_read_bandwidth=_bw("250GB/s"),
        hmat_write_bandwidth=_bw("250GB/s"),
        loaded_latency=_t("150ns"),
        peak_read_bandwidth=_bw("240GB/s"),
        peak_write_bandwidth=_bw("220GB/s"),
        latency_knee_bytes=4 * GB,
        latency_inflation=0.05,
        max_mlp=16.0,
        saturation_threads=10.0,
        random_bandwidth_fraction=0.30,
    )
)

# Sapphire Rapids DDR5, per SNC quadrant (8 channels/socket => ~75 GB/s).
_register(
    MemoryTechnology(
        name="ddr5-spr-quadrant",
        kind=MemoryKind.DRAM,
        hmat_read_latency=_t("110ns"),
        hmat_write_latency=_t("110ns"),
        hmat_read_bandwidth=_bw("75GB/s"),
        hmat_write_bandwidth=_bw("75GB/s"),
        loaded_latency=_t("125ns"),
        peak_read_bandwidth=_bw("72GB/s"),
        peak_write_bandwidth=_bw("68GB/s"),
        latency_knee_bytes=4 * GB,
        latency_inflation=0.08,
        max_mlp=12.0,
        saturation_threads=8.0,
        random_bandwidth_fraction=0.38,
    )
)
