"""Per-buffer ("memory object") analysis — the paper's Fig. 7 view.

Aggregates the simulator's per-buffer timings across a run and ranks the
buffers by LLC miss count: "*LLC Miss Count* is important here because it
is the last and longest-latency [level] in the memory hierarchy before
main memory" (§VI-B).  Allocation-site attribution (the right-hand side of
Fig. 7a: ``xmalloc at line 31``) is carried through when the caller
provides a site map.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ProfilerError
from ..sim.access import PatternKind
from ..sim.engine import RunTiming

__all__ = ["MemoryObject", "object_analysis"]


@dataclass
class MemoryObject:
    """One buffer's aggregated profile."""

    name: str
    pattern: PatternKind
    llc_miss_count: float = 0.0
    traffic_bytes: float = 0.0
    stall_seconds: float = 0.0
    llc_hit_fraction: float = 0.0
    nodes: dict[int, float] = field(default_factory=dict)
    alloc_site: str = ""

    @property
    def stall_share(self) -> float:
        """Filled by :func:`object_analysis` (fraction of total stalls)."""
        return self._stall_share

    _stall_share: float = 0.0


def object_analysis(
    run: RunTiming,
    *,
    alloc_sites: dict[str, str] | None = None,
) -> tuple[MemoryObject, ...]:
    """Aggregate per-buffer profiles, ranked by LLC miss count.

    ``alloc_sites`` optionally maps buffer names to human-readable
    allocation sites (``"xmalloc graph500.c:31"``).
    """
    if not run.phases:
        raise ProfilerError("cannot analyze an empty run")
    objects: dict[str, MemoryObject] = {}
    for phase in run.phases:
        for name, bt in phase.buffer_timings.items():
            obj = objects.setdefault(
                name,
                MemoryObject(
                    name=name,
                    pattern=bt.pattern,
                    alloc_site=(alloc_sites or {}).get(name, ""),
                ),
            )
            obj.llc_miss_count += bt.miss_count
            obj.traffic_bytes += bt.traffic_bytes
            obj.stall_seconds += bt.latency_seconds
            obj.llc_hit_fraction = max(obj.llc_hit_fraction, bt.llc_hit_fraction)
            for node, frac in bt.nodes.items():
                obj.nodes[node] = frac

    total_stall = sum(o.stall_seconds for o in objects.values())
    for obj in objects.values():
        obj._stall_share = (
            obj.stall_seconds / total_stall if total_stall > 0 else 0.0
        )
    return tuple(
        sorted(objects.values(), key=lambda o: -o.llc_miss_count)
    )
