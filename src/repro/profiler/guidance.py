"""Online guidance loop: sampled hotness driving auto-tier re-placement.

This is the runtime half of ROADMAP item 2.  The
:class:`~repro.kernel.autotier.AutoTierDaemon` is a mechanism — it
promotes/demotes whatever its ``observe()`` feed says is hot/cold.  Until
now every caller fed it *ground truth* access volumes, which no real
system has.  :class:`GuidanceLoop` closes the loop the way an online
system would:

1. each workload interval is priced at the *current* placement (the app
   runs, placements pay off or hurt);
2. the interval's true traffic is pushed through a
   :class:`~repro.profiler.pebs.PebsSampler` — the daemon sees only the
   sampled, noisy, biased estimates (pass ``sampler=None`` for the
   ground-truth-fed ablation);
3. the **re-placement policy**: the loop projects post-interval hotness
   (:meth:`AutoTierDaemon.projected_hotness`) and compares the ranking
   against fast-tier residency.  Only when they *diverge* — a projected-hot
   buffer not resident, or a projected-cold buffer squatting — does it run
   a migrating :meth:`AutoTierDaemon.step`; otherwise it folds the interval
   with :meth:`AutoTierDaemon.close_interval` and touches nothing.
4. sampling overhead (modeled seconds) and migration time are charged to
   the run alongside the priced phase time, so the
   overhead-vs-accuracy frontier is visible end to end.

Determinism: the loop adds no randomness of its own — with a seeded
sampler, the whole run (estimates, divergence decisions, migrations,
final page maps) is a pure function of ``(seed, period, workload)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ProfilerError
from ..kernel.autotier import AutoTierDaemon, StepReport
from ..obs import OBS
from ..sim.access import Placement
from .pebs import PebsSampler, SampleEstimate

__all__ = ["GuidanceLoop", "IntervalReport", "GuidanceRunReport"]


@dataclass(frozen=True)
class IntervalReport:
    """What one guidance interval saw, decided and paid."""

    index: int
    #: priced seconds of the workload phase at the interval-start placement
    #: (0.0 when the loop runs without an engine).
    phase_seconds: float
    #: estimated seconds the interval's migrations cost.
    migration_seconds: float
    #: modeled sampling overhead (0.0 for a ground-truth-fed loop).
    overhead_seconds: float
    #: the sampler's view of the interval (None when ground-truth-fed).
    estimate: SampleEstimate | None
    #: relative L1 error of the estimates vs truth (0.0 for ground truth).
    estimate_error: float
    #: whether projected hotness diverged from tier residency.
    diverged: bool
    #: the daemon step report (None when the interval was stable).
    step: StepReport | None

    @property
    def total_seconds(self) -> float:
        return self.phase_seconds + self.migration_seconds + self.overhead_seconds

    @property
    def bytes_moved(self) -> int:
        return self.step.bytes_moved if self.step is not None else 0


@dataclass
class GuidanceRunReport:
    """Aggregate outcome of driving a whole phased workload."""

    intervals: list[IntervalReport] = field(default_factory=list)

    @property
    def phase_seconds(self) -> float:
        return sum(r.phase_seconds for r in self.intervals)

    @property
    def migration_seconds(self) -> float:
        return sum(r.migration_seconds for r in self.intervals)

    @property
    def overhead_seconds(self) -> float:
        return sum(r.overhead_seconds for r in self.intervals)

    @property
    def total_seconds(self) -> float:
        return sum(r.total_seconds for r in self.intervals)

    @property
    def bytes_moved(self) -> int:
        return sum(r.bytes_moved for r in self.intervals)

    @property
    def replacements(self) -> int:
        """Intervals on which the loop ran a migrating step."""
        return sum(1 for r in self.intervals if r.step is not None)

    @property
    def mean_estimate_error(self) -> float:
        if not self.intervals:
            return 0.0
        return sum(r.estimate_error for r in self.intervals) / len(self.intervals)

    def describe(self) -> str:
        return (
            f"{len(self.intervals)} intervals: "
            f"{self.total_seconds:.3f}s total "
            f"(phases {self.phase_seconds:.3f}s, "
            f"migration {self.migration_seconds:.3f}s, "
            f"sampling {self.overhead_seconds:.3f}s), "
            f"{self.replacements} re-placements, "
            f"{self.bytes_moved / 1e9:.2f} GB moved, "
            f"estimate error {self.mean_estimate_error * 100:.1f}%"
        )


class GuidanceLoop:
    """Drive an :class:`AutoTierDaemon` from sampled access estimates.

    Parameters
    ----------
    daemon:
        The tiering daemon; every workload buffer must be ``track``-ed on
        it before the loop runs.
    sampler:
        The observation channel.  ``None`` feeds ground-truth volumes
        (the oracle ablation the benchmark compares against).
    engine, pus:
        Optional :class:`~repro.sim.engine.SimEngine` (plus the PU set to
        run on) for pricing each interval at its current placement.
        Without an engine the loop still samples, decides and migrates —
        useful for determinism tests — but reports 0.0 phase seconds.
    """

    def __init__(
        self,
        daemon: AutoTierDaemon,
        *,
        sampler: PebsSampler | None = None,
        engine=None,
        pus: tuple[int, ...] | None = None,
    ) -> None:
        self.daemon = daemon
        self.sampler = sampler
        self.engine = engine
        self.pus = pus

    # ------------------------------------------------------------------
    def placement(self) -> Placement:
        """The current placement of every tracked buffer."""
        return Placement.from_allocations(self.daemon.tracked_allocations())

    def _diverged(self) -> bool:
        """Does projected hotness disagree with fast-tier residency?

        True when a projected-hot buffer is not (fully) fast-resident or a
        projected-cold buffer still holds fast pages — exactly the cases
        where a step would attempt a migration.
        """
        cfg = self.daemon.config
        projected = self.daemon.projected_hotness()
        allocations = self.daemon.tracked_allocations()
        for name, hot in projected.items():
            alloc = allocations[name]
            fast_fraction = sum(
                alloc.fraction_on(n) for n in cfg.fast_nodes
            )
            if hot >= cfg.promotion_threshold and fast_fraction < 0.999:
                return True
            if hot < cfg.demotion_threshold and fast_fraction > 1e-9:
                return True
        return False

    def run_interval(self, interval, index: int = 0) -> IntervalReport:
        """Run one workload interval through the observe→decide→move loop.

        ``interval`` is anything with a ``phase`` (a
        :class:`~repro.sim.access.KernelPhase`) and a ``volumes`` mapping
        of true per-buffer bytes — e.g.
        :class:`~repro.apps.phased.WorkloadInterval`.
        """
        if not OBS.enabled:
            return self._run_interval_impl(interval, index)
        with OBS.tracer.span("guidance.interval", index=index) as span:
            report = self._run_interval_impl(interval, index)
            metrics = OBS.metrics
            metrics.counter("guidance.intervals").inc()
            if report.step is not None:
                metrics.counter("guidance.replacements").inc()
            else:
                metrics.counter("guidance.stable_intervals").inc()
            span.fields.update(
                diverged=report.diverged,
                bytes_moved=report.bytes_moved,
            )
            return report

    def _run_interval_impl(self, interval, index: int) -> IntervalReport:
        true_volumes = dict(interval.volumes)
        tracked = self.daemon.tracked_allocations()
        missing = sorted(set(true_volumes) - set(tracked))
        if missing:
            raise ProfilerError(
                f"workload buffers not tracked on the daemon: {missing}"
            )

        phase_seconds = 0.0
        if self.engine is not None:
            phase_seconds = self.engine.price_phase(
                interval.phase, self.placement(), pus=self.pus
            ).seconds

        estimate: SampleEstimate | None = None
        error = 0.0
        overhead = 0.0
        if self.sampler is not None:
            estimate = self.sampler.sample(true_volumes)
            observed = estimate.estimated_bytes
            error = estimate.error_vs(true_volumes)
            overhead = estimate.overhead_seconds
        else:
            observed = true_volumes

        self.daemon.observe(observed)
        diverged = self._diverged()
        step: StepReport | None = None
        if diverged:
            step = self.daemon.step()
        else:
            self.daemon.close_interval()

        return IntervalReport(
            index=index,
            phase_seconds=phase_seconds,
            migration_seconds=(
                step.migration_seconds if step is not None else 0.0
            ),
            overhead_seconds=overhead,
            estimate=estimate,
            estimate_error=error,
            diverged=diverged,
            step=step,
        )

    def run(self, workload) -> GuidanceRunReport:
        """Run every interval of a phased workload in order.

        ``workload`` is anything iterable over interval objects — e.g.
        :class:`~repro.apps.phased.PhasedWorkload`.
        """
        report = GuidanceRunReport()
        for index, interval in enumerate(workload):
            report.intervals.append(self.run_interval(interval, index))
        return report
