"""Counter plumbing shared by the profiler views.

Maps NUMA nodes to the memory-kind labels VTune uses ("DRAM", "PMem", ...)
and converts the simulator's per-node time attributions into per-kind
aggregates.
"""

from __future__ import annotations

from ..errors import ProfilerError
from ..hw.spec import MachineSpec
from ..hw.techs import MemoryKind
from ..sim.engine import RunTiming

__all__ = ["KIND_LABELS", "kind_label", "per_kind_times", "node_kinds"]

#: VTune vocabulary for each technology family.
KIND_LABELS: dict[MemoryKind, str] = {
    MemoryKind.DRAM: "DRAM",
    MemoryKind.NVDIMM: "PMem",
    MemoryKind.HBM: "HBM",
    MemoryKind.GPU: "GPU",
    MemoryKind.NAM: "NAM",
}


def kind_label(kind: MemoryKind) -> str:
    try:
        return KIND_LABELS[kind]
    except KeyError:  # pragma: no cover - enum is closed
        raise ProfilerError(f"no label for memory kind {kind}") from None


def node_kinds(machine: MachineSpec) -> dict[int, str]:
    """OS node index → kind label."""
    return {n.os_index: kind_label(n.kind) for n in machine.numa_nodes()}


def per_kind_times(
    machine: MachineSpec, run: RunTiming
) -> dict[str, dict[str, float]]:
    """Aggregate each phase's per-node times by memory kind.

    Returns ``{kind: {"stall_seconds": ..., "bw_seconds": ...,
    "bytes": ...}}`` summed across phases.
    """
    kinds = node_kinds(machine)
    out: dict[str, dict[str, float]] = {}
    for node, traffic in run.merged_node_traffic().items():
        label = kinds.get(node)
        if label is None:
            raise ProfilerError(f"run references unknown node {node}")
        agg = out.setdefault(
            label, {"stall_seconds": 0.0, "bw_seconds": 0.0, "bytes": 0.0}
        )
        agg["stall_seconds"] += traffic.stall_seconds
        agg["bw_seconds"] += traffic.bw_seconds
        agg["bytes"] += traffic.total_bytes
    return out
