"""Text rendering of the profiler views (Table IV / Fig. 7 layouts)."""

from __future__ import annotations

from ..units import format_size
from .memaccess import MemoryAccessSummary
from .objects import MemoryObject

__all__ = ["render_summary_table", "render_object_report", "render_bandwidth_timeline"]


def render_summary_table(
    rows: dict[str, MemoryAccessSummary],
    *,
    kinds: tuple[str, ...] = ("DRAM", "PMem"),
) -> str:
    """Render several runs as a Table-IV-style grid.

    ``rows`` maps a row label ("Graph500 / DRAM") to its summary.  A
    VTune-style flag marker ``*`` follows each metric whose indicator
    fired.
    """
    headers = ["Application / Target"]
    for kind in kinds:
        headers.append(f"{kind} Bound %clk")
    for kind in kinds:
        headers.append(f"{kind} BW Bound %t")
    lines = ["  ".join(f"{h:>22}" for h in headers)]
    for label, summary in rows.items():
        cells = [f"{label:>22}"]
        for kind in kinds:
            val = summary.bound_pct.get(kind, 0.0)
            flag = "*" if summary.flags.get(f"{kind} Bound") else " "
            cells.append(f"{val:>21.1f}{flag}")
        for kind in kinds:
            val = summary.bw_bound_pct.get(kind, 0.0)
            flag = "*" if summary.flags.get(f"{kind} Bandwidth Bound") else " "
            cells.append(f"{val:>21.1f}{flag}")
        lines.append("  ".join(cells))
    return "\n".join(lines)


def render_object_report(objects: tuple[MemoryObject, ...], *, top: int = 10) -> str:
    """Fig.-7-style list: buffers by LLC miss count with attribution."""
    lines = [
        f"{'Memory Object':>16}  {'LLC Misses':>12}  {'Traffic':>10}  "
        f"{'Stall %':>8}  {'Pattern':>14}  Placement / Site"
    ]
    for obj in objects[:top]:
        placement = ",".join(
            f"node{n}:{f:.0%}" for n, f in sorted(obj.nodes.items())
        )
        site = f"  [{obj.alloc_site}]" if obj.alloc_site else ""
        lines.append(
            f"{obj.name:>16}  {obj.llc_miss_count:>12.3g}  "
            f"{format_size(obj.traffic_bytes):>10}  "
            f"{obj.stall_share * 100:>7.1f}%  {obj.pattern.value:>14}  "
            f"{placement}{site}"
        )
    return "\n".join(lines)


def render_bandwidth_timeline(
    machine, run, *, width: int = 40
) -> str:
    """Fig. 7's bandwidth-over-time trace, as text.

    One row per phase: elapsed time, per-kind achieved bandwidth, and a
    bar proportional to the total (read+write, like the turquoise/blue
    stacks of the VTune screenshots).
    """
    from .counters import node_kinds

    kinds = node_kinds(machine)
    all_kinds = sorted(set(kinds.values()))
    rows = [
        f"{'phase':>14} {'time':>9}  "
        + "".join(f"{k + ' GB/s':>12}" for k in all_kinds)
        + "  bandwidth"
    ]
    peak = 0.0
    per_phase = []
    for phase in run.phases:
        by_kind = {k: 0.0 for k in all_kinds}
        for node, traffic in phase.node_traffic.items():
            by_kind[kinds[node]] += traffic.total_bytes
        gbps = {k: v / phase.seconds / 1e9 for k, v in by_kind.items()}
        total = sum(gbps.values())
        peak = max(peak, total)
        per_phase.append((phase, gbps, total))
    for phase, gbps, total in per_phase:
        bar = "#" * max(1, int(width * total / peak)) if peak else ""
        rows.append(
            f"{phase.name:>14} {phase.seconds * 1e3:>7.2f}ms  "
            + "".join(f"{gbps[k]:>12.2f}" for k in all_kinds)
            + f"  {bar}"
        )
    return "\n".join(rows)
