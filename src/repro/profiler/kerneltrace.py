"""Instrumented execution of scalar reference kernels.

The rest of :mod:`repro.profiler` analyzes *simulated* timings; this
module measures the one ground truth a pure-Python repo can produce —
actual element access counts.  Wrapping every buffer argument in a
:class:`CountingSequence` and running the real scalar kernel yields
per-buffer load/store counts that are exact by construction, which is
what the static analyzer's symbolic estimates are differentially
checked against (``repro-analyze --verify-parity``).

Harness bookkeeping (seeding inputs, swapping double buffers between
BFS levels) goes through ``.raw`` so it never pollutes the counts.
"""

from __future__ import annotations

import inspect
from collections.abc import Callable, Iterator, Mapping, MutableSequence, Sequence
from dataclasses import dataclass
from typing import Any

from ..errors import ReproError

__all__ = ["BufferCounts", "CountingSequence", "KernelTrace", "trace_kernel"]


class CountingSequence:
    """A list proxy that counts element loads and stores.

    ``seq[i]`` and ``seq[i] = v`` count; ``len(seq)`` does not (the
    analyzer treats reductions as loop-invariant too); ``seq.raw`` is
    the uncounted underlying storage for harness bookkeeping.
    """

    __slots__ = ("raw", "gets", "sets")

    def __init__(self, data: MutableSequence[Any] | Sequence[Any]) -> None:
        self.raw = data
        self.gets = 0
        self.sets = 0

    def __getitem__(self, index: int) -> Any:
        self.gets += 1
        return self.raw[index]

    def __setitem__(self, index: int, value: Any) -> None:
        self.sets += 1
        self.raw[index] = value  # type: ignore[index]

    def __len__(self) -> int:
        return len(self.raw)

    def __iter__(self) -> Iterator[Any]:
        # ``for x in buf`` loads each element once.
        for value in self.raw:
            self.gets += 1
            yield value


@dataclass(frozen=True)
class BufferCounts:
    """Measured element traffic of one logical buffer."""

    buffer: str
    gets: int
    sets: int

    @property
    def total(self) -> int:
        return self.gets + self.sets


@dataclass(frozen=True)
class KernelTrace:
    """Result of one instrumented kernel execution."""

    kernel: str
    counts: tuple[BufferCounts, ...]
    returned: Any = None

    def by_buffer(self) -> dict[str, BufferCounts]:
        return {c.buffer: c for c in self.counts}

    def traffic_shares(self) -> dict[str, float]:
        total = sum(c.total for c in self.counts)
        if total <= 0:
            return {c.buffer: 0.0 for c in self.counts}
        return {c.buffer: c.total / total for c in self.counts}

    def describe(self) -> str:
        lines = [f"trace {self.kernel}:"]
        shares = self.traffic_shares()
        for c in sorted(self.counts, key=lambda c: -c.total):
            lines.append(
                f"  {c.buffer}: gets={c.gets} sets={c.sets} "
                f"share={shares[c.buffer]:.3f}"
            )
        return "\n".join(lines)


def merge_counts(
    wrapped: Mapping[str, CountingSequence],
    param_buffers: Mapping[str, str] | None = None,
) -> tuple[BufferCounts, ...]:
    """Collapse per-parameter counters into logical buffer counts.

    ``param_buffers`` maps parameter names to logical buffer names
    (aliases merge — e.g. BFS's two frontier halves); parameters
    missing from a provided mapping are dropped, mirroring how the
    static side treats unplaced buffers.
    """
    merged: dict[str, list[int]] = {}
    for param, seq in wrapped.items():
        if param_buffers is None:
            logical: str | None = param
        else:
            logical = param_buffers.get(param)
        if logical is None:
            continue
        entry = merged.setdefault(logical, [0, 0])
        entry[0] += seq.gets
        entry[1] += seq.sets
    return tuple(
        BufferCounts(buffer=name, gets=gets, sets=sets)
        for name, (gets, sets) in sorted(merged.items())
    )


def trace_kernel(
    func: Callable[..., Any],
    *,
    buffers: Mapping[str, MutableSequence[Any] | Sequence[Any]],
    scalars: Mapping[str, Any] | None = None,
    param_buffers: Mapping[str, str] | None = None,
) -> KernelTrace:
    """Run ``func`` with every buffer argument instrumented.

    Arguments are built positionally from the function signature:
    each parameter must appear in ``buffers`` (wrapped and counted)
    or ``scalars`` (passed through), or carry a default.
    """
    scalars = dict(scalars or {})
    wrapped: dict[str, CountingSequence] = {}
    args: list[Any] = []
    try:
        signature = inspect.signature(func)
    except (TypeError, ValueError) as exc:
        raise ReproError(f"cannot inspect signature of {func!r}: {exc}") from exc
    for name, param in signature.parameters.items():
        if name in buffers:
            wrapped[name] = CountingSequence(buffers[name])
            args.append(wrapped[name])
        elif name in scalars:
            args.append(scalars[name])
        elif param.default is not inspect.Parameter.empty:
            args.append(param.default)
        else:
            raise ReproError(
                f"trace_kernel: no value for parameter {name!r} of "
                f"{getattr(func, '__name__', func)!r}"
            )
    returned = func(*args)
    return KernelTrace(
        kernel=getattr(func, "__name__", str(func)),
        counts=merge_counts(wrapped, param_buffers),
        returned=returned,
    )
