"""Simulated PEBS-style access sampling (beyond the paper, ROADMAP item 2).

The paper stops at *offline* profiling: exact traffic counts feed static
placement hints.  Real online guidance — "Online Application Guidance for
Heterogeneous Memory Systems" (arxiv 2110.02150) — has no exact counts;
it sees the memory stream through a PMU sampler (Intel PEBS) that records
roughly one in every *sampling period* accesses, pays a per-sample
interrupt/readout cost, and mis-attributes a fraction of samples.  The
PEBS-at-scale study (arxiv 2011.13432) maps the resulting trade-off:
shrink the period and estimates sharpen while overhead grows (and the
sampling buffer starts throttling); grow it and the sampler is nearly
free but blind to all but the hottest objects.

:class:`PebsSampler` reproduces that observation channel over our
simulator's ground truth.  Feed it a workload interval's *true* per-buffer
access volumes and it returns :class:`SampleEstimate`: sampled, noisy,
biased per-buffer byte estimates plus the modeled sampling overhead in
seconds.  The model, per interval:

1. **sampling noise** — each buffer's accesses (``bytes / granularity``)
   are thinned with a seeded binomial draw at rate ``1/period``; the
   estimate is ``samples * period * granularity``.  Relative error decays
   as ``1/sqrt(samples)``, exactly the frontier the PEBS paper charts.
2. **attribution skid (bias)** — a fixed fraction of each buffer's
   samples lands on the next buffer in name order, modeling PEBS skid /
   imprecise linear-address attribution.  This error does *not* average
   out with more samples.
3. **buffer throttling (bias)** — at most ``throttle_capacity`` samples
   survive an interval; beyond that the kernel drops the overflow
   proportionally (counted in ``dropped_samples``), so very small periods
   *underestimate* traffic on top of costing the most.
4. **overhead** — ``kept_samples * per_sample_seconds`` plus a fixed
   per-interval readout cost, the time a real run would lose to PMU
   interrupts.

**Determinism contract:** a sampler is seeded at construction
(``numpy.random.PCG64``), buffers are drawn in sorted-name order, and all
bias arithmetic is integer — the same seed, period and observation
sequence produce bit-identical estimates (and therefore bit-identical
downstream migrations).  ``tests/profiler/test_pebs.py`` and the
``bench_guidance`` 100-seed differential pin this.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ProfilerError
from ..obs import OBS

__all__ = ["PebsConfig", "PebsSampler", "SampleEstimate"]


@dataclass(frozen=True)
class PebsConfig:
    """Sampler knobs — the period/accuracy/overhead trade-off surface."""

    #: accesses between samples; 1 samples everything (exact but ruinous).
    period: int = 4096
    #: RNG seed; the whole observation channel is a pure function of it.
    seed: int = 0
    #: bytes one sample stands for (cache-line granularity by default).
    granularity: int = 64
    #: fraction of each buffer's samples mis-attributed to the next buffer
    #: in sorted-name order (PEBS skid; persistent bias).
    skid_fraction: float = 0.01
    #: modeled cost of one retained sample (PMU interrupt + readout).
    per_sample_seconds: float = 1e-6
    #: fixed per-interval cost (buffer drain, bookkeeping).
    per_interval_seconds: float = 50e-6
    #: max samples retained per interval before throttling drops the rest.
    throttle_capacity: int = 1_000_000

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ProfilerError("sampling period must be >= 1")
        if self.granularity <= 0:
            raise ProfilerError("granularity must be positive")
        if not 0.0 <= self.skid_fraction < 1.0:
            raise ProfilerError("skid_fraction must be in [0, 1)")
        if self.per_sample_seconds < 0 or self.per_interval_seconds < 0:
            raise ProfilerError("overhead costs must be non-negative")
        if self.throttle_capacity < 1:
            raise ProfilerError("throttle_capacity must be >= 1")


@dataclass(frozen=True)
class SampleEstimate:
    """One interval's sampled view of the workload's memory traffic."""

    #: the period the estimates were taken at.
    period: int
    #: per-buffer estimated bytes (``kept samples * period * granularity``).
    estimated_bytes: dict[str, float]
    #: per-buffer retained sample counts (after skid and throttling).
    samples: dict[str, int]
    #: samples drawn before throttling.
    raw_samples: int
    #: samples lost to buffer throttling this interval.
    dropped_samples: int
    #: samples mis-attributed by skid this interval.
    skid_samples: int
    #: modeled sampling cost for this interval, in seconds.
    overhead_seconds: float

    @property
    def total_samples(self) -> int:
        return sum(self.samples.values())

    def error_vs(self, true_bytes: dict[str, float]) -> float:
        """Relative L1 hotness-estimate error against ground truth.

        ``sum_b |est_b - true_b| / sum_b true_b`` over the union of
        buffers; 0.0 when the interval moved no bytes.
        """
        names = sorted(set(self.estimated_bytes) | set(true_bytes))
        total = sum(true_bytes.get(n, 0.0) for n in names)
        if total <= 0:
            return 0.0
        err = sum(
            abs(self.estimated_bytes.get(n, 0.0) - true_bytes.get(n, 0.0))
            for n in names
        )
        return err / total


class PebsSampler:
    """Deterministic simulated PEBS sampler over true access volumes.

    One sampler models one monitored process: construct it with a
    :class:`PebsConfig` and call :meth:`sample` once per workload
    interval.  Draw order is part of the determinism contract — the
    sampler consumes its RNG stream in sorted-buffer-name order, so the
    same sequence of ``sample()`` calls replays bit-identically for the
    same seed.
    """

    def __init__(self, config: PebsConfig | None = None, **kwargs) -> None:
        self.config = config or PebsConfig(**kwargs)
        if config is not None and kwargs:
            raise ProfilerError("pass either a PebsConfig or knobs, not both")
        self._rng = np.random.Generator(np.random.PCG64(self.config.seed))
        self.intervals_sampled = 0

    def sample(self, true_bytes: dict[str, float]) -> SampleEstimate:
        """Sample one interval's true per-buffer access volumes."""
        cfg = self.config
        names = sorted(true_bytes)
        for name in names:
            if true_bytes[name] < 0:
                raise ProfilerError(f"{name}: negative access volume")

        accesses = np.array(
            [int(true_bytes[n] // cfg.granularity) for n in names],
            dtype=np.int64,
        )
        if cfg.period == 1:
            drawn = accesses.copy()
        else:
            drawn = self._rng.binomial(accesses, 1.0 / cfg.period)
        raw_total = int(drawn.sum())

        # Attribution skid: an integer share of each buffer's samples is
        # credited to the next buffer in name order (cyclic).  Integer
        # floor keeps the arithmetic exact and replayable.
        skid_total = 0
        kept = drawn.astype(np.int64).copy()
        if cfg.skid_fraction > 0.0 and len(names) > 1:
            skidded = (drawn * cfg.skid_fraction).astype(np.int64)
            kept -= skidded
            kept += np.roll(skidded, 1)
            skid_total = int(skidded.sum())

        # Throttling: the sampling buffer retains at most
        # ``throttle_capacity`` samples per interval; overflow is dropped
        # proportionally (integer floor — deterministic, and the estimate
        # bias is downward, matching observed PEBS behavior under load).
        dropped = 0
        if raw_total > cfg.throttle_capacity:
            kept = (kept * cfg.throttle_capacity) // raw_total
            dropped = raw_total - int(kept.sum())

        scale = float(cfg.period * cfg.granularity)
        estimates = {n: float(kept[i]) * scale for i, n in enumerate(names)}
        samples = {n: int(kept[i]) for i, n in enumerate(names)}
        kept_total = int(kept.sum())
        overhead = (
            kept_total * cfg.per_sample_seconds + cfg.per_interval_seconds
        )
        self.intervals_sampled += 1

        if OBS.enabled:
            metrics = OBS.metrics
            metrics.counter("pebs.intervals").inc()
            metrics.counter("pebs.samples").inc(kept_total)
            if dropped:
                metrics.counter("pebs.dropped_samples").inc(dropped)
            if skid_total:
                metrics.counter("pebs.skid_samples").inc(skid_total)

        return SampleEstimate(
            period=cfg.period,
            estimated_bytes=estimates,
            samples=samples,
            raw_samples=raw_total,
            dropped_samples=dropped,
            skid_samples=skid_total,
            overhead_seconds=overhead,
        )
