"""The Memory Access summary (paper Table IV).

For each memory kind present on the machine:

* ``<kind> Bound`` (% of clockticks) — how much of the execution the CPU
  spent stalled on that kind of memory (latency chains plus the queueing
  of its own traffic);
* ``<kind> Bandwidth Bound`` (% of elapsed time) — how long that kind's
  links ran above a high-utilization threshold.

VTune raises an *indicator flag* when a metric crosses its threshold;
:attr:`MemoryAccessSummary.flags` reproduces that, and is what the
profiling-based sensitivity method (§V-B) reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ProfilerError
from ..hw.spec import MachineSpec
from ..sim.engine import RunTiming
from .counters import node_kinds

__all__ = ["MemoryAccessSummary", "analyze_run", "BOUND_FLAG_THRESHOLD",
           "BW_UTILIZATION_THRESHOLD", "BW_FLAG_THRESHOLD"]

#: A kind is flagged "bound" when its stall share exceeds this.
BOUND_FLAG_THRESHOLD = 0.20
#: A node counts as bandwidth-saturated while utilization exceeds this.
BW_UTILIZATION_THRESHOLD = 0.60
#: A kind is flagged "bandwidth bound" when its saturated share exceeds this.
BW_FLAG_THRESHOLD = 0.20


@dataclass
class MemoryAccessSummary:
    """Table-IV-style metrics for one run."""

    elapsed_seconds: float
    bound_pct: dict[str, float] = field(default_factory=dict)        # of clockticks
    bw_bound_pct: dict[str, float] = field(default_factory=dict)     # of elapsed
    flags: dict[str, bool] = field(default_factory=dict)

    def metric(self, name: str) -> float:
        """Fetch e.g. ``"DRAM Bound"`` or ``"PMem Bandwidth Bound"``."""
        if name.endswith(" Bandwidth Bound"):
            kind = name[: -len(" Bandwidth Bound")]
            table = self.bw_bound_pct
        elif name.endswith(" Bound"):
            kind = name[: -len(" Bound")]
            table = self.bound_pct
        else:
            raise ProfilerError(f"unknown metric {name!r}")
        return table.get(kind, 0.0)

    @property
    def latency_sensitive(self) -> bool:
        """The VTune reading of §VI-B: bound flags without bandwidth flags."""
        any_bound = any(
            self.flags.get(f"{kind} Bound", False) for kind in self.bound_pct
        )
        any_bw = any(
            self.flags.get(f"{kind} Bandwidth Bound", False)
            for kind in self.bw_bound_pct
        )
        return any_bound and not any_bw

    @property
    def bandwidth_sensitive(self) -> bool:
        return any(
            self.flags.get(f"{kind} Bandwidth Bound", False)
            for kind in self.bw_bound_pct
        )


def analyze_run(machine: MachineSpec, run: RunTiming) -> MemoryAccessSummary:
    """Derive the summary from a priced run."""
    if not run.phases:
        raise ProfilerError("cannot analyze an empty run")
    elapsed = run.seconds
    kinds = node_kinds(machine)
    all_kinds = sorted(set(kinds.values()))
    peak_bw = {
        n.os_index: max(n.tech.peak_read_bandwidth, n.tech.peak_write_bandwidth)
        for n in machine.numa_nodes()
    }

    stall: dict[str, float] = {k: 0.0 for k in all_kinds}
    bw_saturated: dict[str, float] = {k: 0.0 for k in all_kinds}

    for phase in run.phases:
        for node, traffic in phase.node_traffic.items():
            kind = kinds[node]
            # Latency stalls always count; when the phase is bandwidth-
            # bound, the node's own queueing time counts as stall too
            # (VTune's Bound metrics overlap the same way).
            stall[kind] += traffic.stall_seconds
            if phase.bound == "bandwidth":
                stall[kind] += min(traffic.bw_seconds, phase.seconds)
            # VTune's Bandwidth Bound compares observed GB/s against the
            # link peak — a latency-bound app moving few bytes stays below
            # the threshold even when its (derated) random path is busy.
            utilization = traffic.total_bytes / (phase.seconds * peak_bw[node])
            if utilization >= BW_UTILIZATION_THRESHOLD:
                bw_saturated[kind] += phase.seconds

    summary = MemoryAccessSummary(elapsed_seconds=elapsed)
    for kind in all_kinds:
        bound = min(stall[kind] / elapsed, 0.99)
        bw = min(bw_saturated[kind] / elapsed, 1.0)
        summary.bound_pct[kind] = bound * 100.0
        summary.bw_bound_pct[kind] = bw * 100.0
        summary.flags[f"{kind} Bound"] = bound >= BOUND_FLAG_THRESHOLD
        summary.flags[f"{kind} Bandwidth Bound"] = bw >= BW_FLAG_THRESHOLD
    return summary
