"""VTune-style Memory Access analysis (paper §VI-B, Table IV, Fig. 7).

Consumes the simulator's :class:`~repro.sim.engine.RunTiming` records and
derives the observables the paper reads off the Intel VTune Profiler:

* **summary metrics** (:mod:`memaccess`) — DRAM Bound / PMem Bound in % of
  clockticks, DRAM/PMem *Bandwidth* Bound in % of elapsed time, with the
  indicator flags VTune raises;
* **per-object analysis** (:mod:`objects`) — buffers ranked by LLC miss
  count, with traffic, stall share and allocation-site attribution;
* **text reports** (:mod:`report`) mirroring the layout of Table IV and
  Fig. 7;
* **kernel instrumentation** (:mod:`kerneltrace`) — exact per-buffer
  element counts from running the scalar reference kernels against
  counting sequence proxies (the measured side of the
  ``repro-analyze --verify-parity`` gate);
* **online sampling** (:mod:`pebs`) — a deterministic simulated
  PEBS-style sampler turning true access volumes into sampled, noisy,
  biased estimates with a modeled overhead cost;
* **online guidance** (:mod:`guidance`) — the loop that feeds those
  estimates into :class:`~repro.kernel.autotier.AutoTierDaemon` and
  re-places buffers when estimated hotness diverges from residency.
"""

from .counters import KIND_LABELS, kind_label
from .guidance import GuidanceLoop, GuidanceRunReport, IntervalReport
from .kerneltrace import (
    BufferCounts,
    CountingSequence,
    KernelTrace,
    merge_counts,
    trace_kernel,
)
from .memaccess import MemoryAccessSummary, analyze_run
from .pebs import PebsConfig, PebsSampler, SampleEstimate
from .objects import MemoryObject, object_analysis
from .report import (
    render_bandwidth_timeline,
    render_object_report,
    render_summary_table,
)

__all__ = [
    "KIND_LABELS",
    "kind_label",
    "BufferCounts",
    "CountingSequence",
    "KernelTrace",
    "merge_counts",
    "trace_kernel",
    "MemoryAccessSummary",
    "analyze_run",
    "PebsConfig",
    "PebsSampler",
    "SampleEstimate",
    "GuidanceLoop",
    "GuidanceRunReport",
    "IntervalReport",
    "MemoryObject",
    "object_analysis",
    "render_summary_table",
    "render_object_report",
    "render_bandwidth_timeline",
]
