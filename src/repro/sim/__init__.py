"""Analytic memory-performance simulator.

Prices application *phases* — sets of buffer accesses with given patterns —
against a machine model and a buffer placement, producing execution times
plus the traffic/stall breakdowns the profiler consumes.

The model is roofline-style with three limiters per phase:

* **bandwidth**: per-node, per-direction traffic divided by the node's
  effective bandwidth (thread-count scaling, random-access derating,
  NVDIMM write-buffer collapse, memory-side cache filtering);
* **latency**: serialized miss chains (pointer chasing, dependent random
  accesses) paying the node's working-set-aware loaded latency divided by
  the achievable memory-level parallelism;
* **cpu**: non-memory work at the machine's per-core rate.

The latency and cpu terms serialize within a thread; the phase time is
``max(bandwidth_time, latency_time + cpu_time)``.
"""

from .access import BufferAccess, KernelPhase, PatternKind, Placement
from .caches import CacheModel, cache_filter
from .contention import (
    ConcurrentJob,
    ConcurrentOutcome,
    price_concurrent,
    price_concurrent_batch,
)
from .engine import (
    BatchPhaseTiming,
    CompiledPhase,
    PhaseTiming,
    PreparedPhase,
    RunTiming,
    SimEngine,
)
from .memside import MemsideEffect, memside_filter
from .trace import classify_trace, synth_trace

__all__ = [
    "PatternKind",
    "BufferAccess",
    "KernelPhase",
    "Placement",
    "CacheModel",
    "cache_filter",
    "memside_filter",
    "MemsideEffect",
    "SimEngine",
    "PhaseTiming",
    "PreparedPhase",
    "CompiledPhase",
    "BatchPhaseTiming",
    "RunTiming",
    "ConcurrentJob",
    "ConcurrentOutcome",
    "price_concurrent",
    "price_concurrent_batch",
    "synth_trace",
    "classify_trace",
]
