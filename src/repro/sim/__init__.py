"""Analytic memory-performance simulator.

Prices application *phases* — sets of buffer accesses with given patterns —
against a machine model and a buffer placement, producing execution times
plus the traffic/stall breakdowns the profiler consumes.

The model is roofline-style with three limiters per phase:

* **bandwidth**: per-node, per-direction traffic divided by the node's
  effective bandwidth (thread-count scaling, random-access derating,
  NVDIMM write-buffer collapse, memory-side cache filtering);
* **latency**: serialized miss chains (pointer chasing, dependent random
  accesses) paying the node's working-set-aware loaded latency divided by
  the achievable memory-level parallelism;
* **cpu**: non-memory work at the machine's per-core rate.

The latency and cpu terms serialize within a thread; the phase time is
``max(bandwidth_time, latency_time + cpu_time)``.
"""

from .access import PatternKind, BufferAccess, KernelPhase, Placement
from .caches import CacheModel, cache_filter
from .memside import memside_filter, MemsideEffect
from .engine import SimEngine, PhaseTiming, PreparedPhase, RunTiming
from .contention import ConcurrentJob, ConcurrentOutcome, price_concurrent
from .trace import synth_trace, classify_trace

__all__ = [
    "PatternKind",
    "BufferAccess",
    "KernelPhase",
    "Placement",
    "CacheModel",
    "cache_filter",
    "memside_filter",
    "MemsideEffect",
    "SimEngine",
    "PhaseTiming",
    "PreparedPhase",
    "RunTiming",
    "ConcurrentJob",
    "ConcurrentOutcome",
    "price_concurrent",
    "synth_trace",
    "classify_trace",
]
