"""Synthetic address traces and pattern classification.

Supports the static-analysis-flavoured sensitivity method (§V-C): given a
short address trace of a kernel (here generated synthetically from an
access descriptor), classify whether the accesses stream, stride, or jump
randomly / chase pointers — i.e. whether the buffer is bandwidth- or
latency-sensitive.

The classifier is deliberately simple and fully vectorized: it looks at
the distribution of address deltas and at dependence (for pointer chases,
the *values* loaded feed the next address, which the trace generator
marks).
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from .access import BufferAccess, PatternKind

__all__ = ["synth_trace", "classify_trace"]


def synth_trace(
    access: BufferAccess,
    n: int = 4096,
    *,
    seed: int = 0,
) -> np.ndarray:
    """Generate ``n`` byte offsets a kernel with this access would touch."""
    if n < 2:
        raise SimulationError("trace needs at least 2 accesses")
    rng = np.random.default_rng(seed)
    ws = access.working_set
    g = access.granularity
    slots = max(2, ws // g)

    if access.pattern is PatternKind.STREAM:
        idx = np.arange(n) % slots
    elif access.pattern is PatternKind.STRIDED:
        stride = max(2, access.line_size // g * 4)
        idx = (np.arange(n) * stride) % slots
    elif access.pattern is PatternKind.RANDOM:
        idx = rng.integers(0, slots, size=n)
    elif access.pattern is PatternKind.POINTER_CHASE:
        # A single random cycle: element order[i] points at order[i+1], so
        # following the chain from order[0] visits the permutation in
        # order — consecutive trace entries are data-dependent and the
        # address sequence is indistinguishable from random.
        order = rng.permutation(slots)
        idx = order[np.arange(n) % slots]
    else:  # pragma: no cover - exhaustive enum
        raise SimulationError(f"unknown pattern {access.pattern}")
    return (idx.astype(np.int64) * g).astype(np.int64)


def classify_trace(offsets: np.ndarray, *, line_size: int = 64) -> PatternKind:
    """Classify a trace of byte offsets into a :class:`PatternKind`.

    Heuristics: the fraction of small positive deltas separates streaming
    from everything else; a single dominant large delta means strided; a
    trace that revisits no line while jumping randomly is a chase-like /
    random access (the two are merged into RANDOM here — dependence cannot
    be seen from addresses alone, the profiler-side classifier in
    :mod:`repro.sensitivity` uses MLP to split them).
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    if offsets.size < 2:
        raise SimulationError("trace too short to classify")
    deltas = np.diff(offsets)
    nz = deltas[deltas != 0]
    if nz.size == 0:
        return PatternKind.RANDOM
    small_forward = np.count_nonzero((nz > 0) & (nz <= line_size)) / nz.size
    if small_forward >= 0.8:
        return PatternKind.STREAM
    # One dominant constant delta => strided.
    values, counts = np.unique(nz, return_counts=True)
    if counts.max() / nz.size >= 0.8 and abs(values[counts.argmax()]) > line_size:
        return PatternKind.STRIDED
    return PatternKind.RANDOM
