"""Memory-side cache filtering (KNL Cache/Hybrid, Xeon 2LM).

A memory-side cache sits *in front of* a NUMA node and is transparent to
software: traffic that hits it runs at the cache technology's speed, the
rest pays the backing store (plus a small lookup penalty).  The paper
(§VIII) points out that attribute values do **not** include memory-side
caches — which is exactly why application-observed performance can differ
from the attributes; this module is what creates that observable
difference in our experiments.

The hit model is occupancy-based with a direct-mapped conflict penalty:
``hit = conflict_factor * min(1, size / working_set)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..hw.spec import MemsideCacheSpec, NodeInstance

__all__ = [
    "MemsideEffect",
    "MemsideEffectArrays",
    "memside_filter",
    "memside_filter_arrays",
]

#: Direct-mapped caches suffer conflict misses even when the working set
#: fits; set-associative ones barely do.
_DIRECT_MAPPED_FACTOR = 0.90
_ASSOCIATIVE_FACTOR = 0.98

#: A memory-side-cache miss costs more than a plain backing access: the
#: line is filled into the cache and a victim may be written back, so the
#: effective backing bandwidth of the miss stream is derated.  This is
#: what makes KNL Cache mode *lose* to tuned Flat mode once the working
#: set exceeds MCDRAM (§II-A).
_MISS_BANDWIDTH_FACTOR = 0.70


@dataclass(frozen=True)
class MemsideEffect:
    """Effective performance of a node seen through its memory-side cache."""

    hit_rate: float
    latency: float          # blended average access latency (seconds)
    read_bandwidth: float   # blended streaming read bandwidth (bytes/s)
    write_bandwidth: float  # blended streaming write bandwidth (bytes/s)


def memside_filter(
    node: NodeInstance,
    working_set: int,
    *,
    base_latency: float,
    base_read_bw: float,
    base_write_bw: float,
) -> MemsideEffect:
    """Blend cache-tier and backing-tier performance for one working set.

    ``base_*`` are the backing node's figures (already adjusted for
    locality and load); nodes without a memory-side cache pass through
    unchanged with ``hit_rate = 0``.
    """
    if working_set < 0:
        raise SimulationError("working_set must be non-negative")
    cache: MemsideCacheSpec | None = node.spec.memside_cache
    if cache is None:
        return MemsideEffect(
            hit_rate=0.0,
            latency=base_latency,
            read_bandwidth=base_read_bw,
            write_bandwidth=base_write_bw,
        )

    factor = (
        _DIRECT_MAPPED_FACTOR if cache.associativity == 1 else _ASSOCIATIVE_FACTOR
    )
    occupancy = min(1.0, cache.size / working_set) if working_set else 1.0
    hit = factor * occupancy

    # A miss pays the cache lookup (tag check in the cache tier) plus the
    # backing access.
    miss_latency = base_latency + 0.15 * cache.hit_latency
    latency = hit * cache.hit_latency + (1.0 - hit) * miss_latency

    def blend_bw(cache_bw: float, backing_bw: float) -> float:
        inv = hit / cache_bw + (1.0 - hit) / (backing_bw * _MISS_BANDWIDTH_FACTOR)
        return 1.0 / inv

    return MemsideEffect(
        hit_rate=hit,
        latency=latency,
        read_bandwidth=blend_bw(cache.hit_bandwidth, base_read_bw),
        write_bandwidth=blend_bw(cache.hit_bandwidth, base_write_bw),
    )


@dataclass(frozen=True)
class MemsideEffectArrays:
    """:class:`MemsideEffect` over a vector of working sets."""

    hit_rate: np.ndarray
    latency: np.ndarray
    read_bandwidth: np.ndarray
    write_bandwidth: np.ndarray


def _as_array(value, shape: tuple[int, ...]) -> np.ndarray:
    arr = np.asarray(value, dtype=np.float64)
    if arr.shape != shape:
        arr = np.full(shape, float(value))
    return arr


def memside_filter_arrays(
    node: NodeInstance,
    working_sets: np.ndarray,
    *,
    base_latency,
    base_read_bw,
    base_write_bw,
) -> MemsideEffectArrays:
    """Vectorized :func:`memside_filter` over a 1-D working-set array.

    Bit-identical per element to the scalar filter: every blend keeps the
    scalar's operation order, evaluated elementwise.  ``working_sets``
    must already be floored to whole non-negative numbers (the scalar
    path receives ``int(working_set)``); ``base_*`` may be scalars or
    arrays of the same shape.
    """
    w = np.asarray(working_sets, dtype=np.float64)
    cache: MemsideCacheSpec | None = node.spec.memside_cache
    if cache is None:
        return MemsideEffectArrays(
            hit_rate=np.zeros(w.shape),
            latency=_as_array(base_latency, w.shape),
            read_bandwidth=_as_array(base_read_bw, w.shape),
            write_bandwidth=_as_array(base_write_bw, w.shape),
        )

    factor = (
        _DIRECT_MAPPED_FACTOR if cache.associativity == 1 else _ASSOCIATIVE_FACTOR
    )
    occupancy = np.ones(w.shape)
    nonzero = w != 0
    if nonzero.any():
        occupancy[nonzero] = np.minimum(1.0, cache.size / w[nonzero])
    hit = factor * occupancy

    miss_latency = _as_array(base_latency, w.shape) + 0.15 * cache.hit_latency
    latency = hit * cache.hit_latency + (1.0 - hit) * miss_latency

    def blend_bw(cache_bw: float, backing_bw) -> np.ndarray:
        inv = hit / cache_bw + (1.0 - hit) / (
            _as_array(backing_bw, w.shape) * _MISS_BANDWIDTH_FACTOR
        )
        return 1.0 / inv

    return MemsideEffectArrays(
        hit_rate=hit,
        latency=latency,
        read_bandwidth=blend_bw(cache.hit_bandwidth, base_read_bw),
        write_bandwidth=blend_bw(cache.hit_bandwidth, base_write_bw),
    )
