"""The phase-pricing engine.

:class:`SimEngine` turns (phase, placement) pairs into time, using the
roofline-style model described in the package docstring.  Everything the
profiler later needs — per-node traffic and stall attribution, per-buffer
miss counts and latency shares — is preserved in the returned
:class:`PhaseTiming`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError
from ..hw.spec import MachineSpec, NodeInstance
from ..obs import OBS
from ..topology.build import Topology, build_topology
from .access import KernelPhase, PatternKind, Placement
from .caches import CacheModel, cache_filter
from .memside import memside_filter

__all__ = [
    "NodeTraffic",
    "BufferTiming",
    "PhaseTiming",
    "RunTiming",
    "PreparedPhase",
    "SimEngine",
]


@dataclass
class NodeTraffic:
    """Per-node traffic and time attribution within one phase."""

    node: int
    stream_read_bytes: float = 0.0
    stream_write_bytes: float = 0.0
    random_bytes: float = 0.0
    bw_seconds: float = 0.0       # time this node's traffic needs alone
    stall_seconds: float = 0.0    # latency-chain time paid on this node

    @property
    def total_bytes(self) -> float:
        return self.stream_read_bytes + self.stream_write_bytes + self.random_bytes


@dataclass
class BufferTiming:
    """Per-buffer outcome within one phase."""

    buffer: str
    pattern: PatternKind
    miss_count: float = 0.0
    latency_seconds: float = 0.0
    traffic_bytes: float = 0.0
    nodes: dict[int, float] = field(default_factory=dict)  # node -> fraction
    llc_hit_fraction: float = 0.0


@dataclass
class PhaseTiming:
    """Outcome of pricing one phase."""

    name: str
    threads: int
    seconds: float
    cpu_seconds: float
    latency_seconds: float       # summed serialized-latency component
    bandwidth_seconds: float     # max per-node bandwidth component
    node_traffic: dict[int, NodeTraffic]
    buffer_timings: dict[str, BufferTiming]

    @property
    def bound(self) -> str:
        """What limits this phase: 'bandwidth', 'latency' or 'cpu'."""
        serial = self.latency_seconds + self.cpu_seconds
        if self.bandwidth_seconds >= serial:
            return "bandwidth"
        return "latency" if self.latency_seconds >= self.cpu_seconds else "cpu"


@dataclass
class RunTiming:
    """A sequence of priced phases."""

    phases: list[PhaseTiming] = field(default_factory=list)

    @property
    def seconds(self) -> float:
        return sum(p.seconds for p in self.phases)

    def merged_node_traffic(self) -> dict[int, NodeTraffic]:
        merged: dict[int, NodeTraffic] = {}
        for phase in self.phases:
            for node, t in phase.node_traffic.items():
                m = merged.setdefault(node, NodeTraffic(node=node))
                m.stream_read_bytes += t.stream_read_bytes
                m.stream_write_bytes += t.stream_write_bytes
                m.random_bytes += t.random_bytes
                m.bw_seconds += t.bw_seconds
                m.stall_seconds += t.stall_seconds
        return merged


@dataclass(frozen=True)
class PreparedPhase:
    """The placement-independent half of pricing one phase.

    :meth:`SimEngine.prepare_phase` hoists everything that does not
    depend on the buffer placement — the cache model for the executing
    PUs, the cache-filtered traffic per access, the CPU term — so a
    search pricing the same phase under thousands of placements pays for
    it once (see :meth:`SimEngine.price_phase_many`).
    """

    phase: KernelPhase
    pus: tuple[int, ...]
    #: ``(access, cache_filter result)`` per access, in phase order.
    filtered: tuple[tuple, ...]
    cpu_seconds: float


class SimEngine:
    """Prices phases against one machine."""

    def __init__(self, machine: MachineSpec, topology: Topology | None = None) -> None:
        self.machine = machine
        self.topology = topology or build_topology(machine)
        self._nodes: dict[int, NodeInstance] = {
            n.os_index: n for n in machine.numa_nodes()
        }
        # (node, pus) -> locality-blended (latency, read bw, write bw).
        # Pure in the immutable machine spec, so safe for the engine's
        # lifetime; shared by every pricing on the same PU set.
        self._blend_memo: dict[tuple[int, tuple[int, ...]], tuple[float, float, float]] = {}

    # ------------------------------------------------------------------
    def prepare_phase(
        self,
        phase: KernelPhase,
        *,
        pus: tuple[int, ...] | None = None,
    ) -> PreparedPhase:
        """Hoist the placement-independent work of pricing ``phase``."""
        if pus is None:
            pus = tuple(range(phase.threads))
        if len(pus) < 1:
            raise SimulationError("phase needs at least one PU")
        cache_model = CacheModel.for_threads(self.topology, pus)
        total_ws = float(sum(a.working_set for a in phase.accesses))
        filtered = tuple(
            (access, cache_filter(
                cache_model, access,
                access.working_set / total_ws if total_ws else 1.0,
            ))
            for access in phase.accesses
        )
        cpu_seconds = (
            phase.cpu_ops / (phase.threads * self.machine.core_ops_per_second)
            if phase.cpu_ops
            else 0.0
        )
        return PreparedPhase(
            phase=phase, pus=pus, filtered=filtered, cpu_seconds=cpu_seconds
        )

    def price_phase(
        self,
        phase: KernelPhase,
        placement: Placement,
        *,
        pus: tuple[int, ...] | None = None,
    ) -> PhaseTiming:
        """Price one phase.

        ``pus`` are the processors executing the phase (used for locality
        and cache capacity); defaults to the first ``phase.threads`` PUs.
        """
        return self.price_prepared(self.prepare_phase(phase, pus=pus), placement)

    def price_phase_many(
        self,
        phase: KernelPhase,
        placements,
        *,
        pus: tuple[int, ...] | None = None,
    ) -> list[PhaseTiming]:
        """Price one phase under many placements (batch path).

        The cache model and per-access cache filtering are computed once
        and shared; each placement only pays the node-dependent part.
        Results are bit-identical to per-placement :meth:`price_phase`
        calls.
        """
        prepared = self.prepare_phase(phase, pus=pus)
        return [self.price_prepared(prepared, p) for p in placements]

    def price_access_alone(
        self, prepared: PreparedPhase, index: int, node: int
    ) -> tuple[float, float]:
        """Price one prepared access as if it sat alone on ``node``.

        Returns ``(latency_seconds, bandwidth_seconds)`` — the access's
        contribution to the phase's latency chain and to ``node``'s
        bandwidth time when no other buffer shares the node.  Because the
        access keeps its real cache share (miss counts match the full
        phase) while the node sees only this buffer's working set (its
        loaded latency is lowest, its bandwidth highest), each component
        is a lower bound on the access's contribution in *any* complete
        placement — the building block of the placement search's
        branch-and-bound (docs/MODEL.md, "Placement search").
        """
        if OBS.enabled:
            OBS.metrics.counter("sim.single_access_pricings").inc()
        access, filtered = prepared.filtered[index]
        pus = prepared.pus
        threads = prepared.phase.threads
        ws = float(access.working_set)
        write_ws = ws if access.bytes_written > 0 else 0.0
        inst = self._instance(node)
        lat_seconds = 0.0
        if access.pattern.is_latency_bound:
            lat = self._node_latency(node, pus, ws)
            mlp = threads * min(access.pattern.cpu_mlp, inst.tech.max_mlp)
            lat_seconds = filtered.miss_count * lat / mlp
            random_bytes = filtered.memory_read_bytes + filtered.memory_write_bytes
            stream_read = stream_write = 0.0
        else:
            random_bytes = 0.0
            stream_read = filtered.memory_read_bytes
            stream_write = filtered.memory_write_bytes
        _, rbw, wbw = self._node_bandwidths(node, pus, ws, write_ws, threads)
        random_bw = min(rbw, wbw) * inst.tech.random_bandwidth_fraction
        bw_seconds = (
            stream_read / rbw + stream_write / wbw + random_bytes / random_bw
        )
        return lat_seconds, bw_seconds

    def price_prepared(
        self, prepared: PreparedPhase, placement: Placement
    ) -> PhaseTiming:
        """Price a :class:`PreparedPhase` under one placement."""
        if OBS.enabled:
            OBS.metrics.counter("sim.pricings").inc()
        phase = prepared.phase
        pus = prepared.pus
        threads = phase.threads

        node_traffic: dict[int, NodeTraffic] = {}
        buffer_timings: dict[str, BufferTiming] = {}

        # Working set landing on each node (for write-buffer / TLB terms).
        node_ws: dict[int, float] = {}
        node_write_ws: dict[int, float] = {}
        for access in phase.accesses:
            for node, frac in placement.of(access.buffer).items():
                node_ws[node] = node_ws.get(node, 0.0) + access.working_set * frac
                if access.bytes_written > 0:
                    node_write_ws[node] = (
                        node_write_ws.get(node, 0.0) + access.working_set * frac
                    )

        # The loaded latency of a node is fixed for the whole phase (it
        # depends on the node's total working set, not on which access is
        # paying it), so resolve it at most once per node.
        lat_memo: dict[int, float] = {}

        for access, filtered in prepared.filtered:
            bt = BufferTiming(
                buffer=access.buffer,
                pattern=access.pattern,
                miss_count=filtered.miss_count,
                traffic_bytes=filtered.memory_read_bytes + filtered.memory_write_bytes,
                llc_hit_fraction=filtered.hit_fraction,
            )
            for node, frac in placement.of(access.buffer).items():
                bt.nodes[node] = frac
                nt = node_traffic.setdefault(node, NodeTraffic(node=node))
                if access.pattern.is_latency_bound:
                    nt.random_bytes += bt.traffic_bytes * frac
                    lat = lat_memo.get(node)
                    if lat is None:
                        lat = self._node_latency(node, pus, node_ws.get(node, 0.0))
                        lat_memo[node] = lat
                    inst = self._nodes[node]
                    mlp = threads * min(access.pattern.cpu_mlp, inst.tech.max_mlp)
                    lat_time = filtered.miss_count * frac * lat / mlp
                    bt.latency_seconds += lat_time
                    nt.stall_seconds += lat_time
                else:
                    nt.stream_read_bytes += filtered.memory_read_bytes * frac
                    nt.stream_write_bytes += filtered.memory_write_bytes * frac
            buffer_timings[access.buffer] = bt

        # Per-node bandwidth time.
        for node, nt in node_traffic.items():
            lat, rbw, wbw = self._node_bandwidths(
                node, pus, node_ws.get(node, 0.0), node_write_ws.get(node, 0.0),
                threads,
            )
            inst = self._nodes[node]
            random_bw = min(rbw, wbw) * inst.tech.random_bandwidth_fraction
            nt.bw_seconds = (
                nt.stream_read_bytes / rbw
                + nt.stream_write_bytes / wbw
                + nt.random_bytes / random_bw
            )

        cpu_seconds = prepared.cpu_seconds
        latency_seconds = sum(bt.latency_seconds for bt in buffer_timings.values())
        bandwidth_seconds = max(
            (nt.bw_seconds for nt in node_traffic.values()), default=0.0
        )
        seconds = max(bandwidth_seconds, latency_seconds + cpu_seconds)
        if seconds <= 0:
            raise SimulationError(f"phase {phase.name!r} priced to zero time")

        return PhaseTiming(
            name=phase.name,
            threads=threads,
            seconds=seconds,
            cpu_seconds=cpu_seconds,
            latency_seconds=latency_seconds,
            bandwidth_seconds=bandwidth_seconds,
            node_traffic=node_traffic,
            buffer_timings=buffer_timings,
        )

    def price_run(
        self,
        phases,
        placement: Placement,
        *,
        pus: tuple[int, ...] | None = None,
    ) -> RunTiming:
        """Price a sequence of phases under one placement."""
        if not OBS.enabled:
            run = RunTiming()
            for phase in phases:
                run.phases.append(self.price_phase(phase, placement, pus=pus))
            return run
        with OBS.tracer.span("sim.price_run") as span:
            run = RunTiming()
            for phase in phases:
                run.phases.append(self.price_phase(phase, placement, pus=pus))
            span.fields.update(phases=len(run.phases), seconds=run.seconds)
            return run

    # ------------------------------------------------------------------
    # node performance resolution
    # ------------------------------------------------------------------
    def _instance(self, node: int) -> NodeInstance:
        try:
            return self._nodes[node]
        except KeyError:
            raise SimulationError(f"unknown NUMA node {node}") from None

    def _blended_performance(
        self, inst: NodeInstance, pus: tuple[int, ...]
    ) -> tuple[float, float, float]:
        """Locality-weighted performance when the executing PUs straddle
        locality domains (e.g. an interleaved app spanning two packages):
        latency averages arithmetically, bandwidths harmonically, weighted
        by the PU distribution over locality classes.

        Memoized per (node, pus) for the engine's lifetime: the blend is
        pure in the immutable machine spec, and pricing hot loops resolve
        the same (node, pus) pair once per access otherwise."""
        key = (inst.os_index, pus)
        cached = self._blend_memo.get(key)
        if cached is not None:
            return cached
        classes: dict[str, int] = {}
        for pu in pus:
            cls = self.machine.locality_class(pu, inst)
            classes[cls] = classes.get(cls, 0) + 1
        total = len(pus)
        if len(classes) == 1:
            result = self.machine.access_performance(pus[0], inst, loaded=True)
            self._blend_memo[key] = result
            return result
        lat = inv_r = inv_w = 0.0
        for cls, count in classes.items():
            rep = next(
                pu for pu in pus if self.machine.locality_class(pu, inst) == cls
            )
            c_lat, c_rbw, c_wbw = self.machine.access_performance(
                rep, inst, loaded=True
            )
            weight = count / total
            lat += weight * c_lat
            inv_r += weight / c_rbw
            inv_w += weight / c_wbw
        result = (lat, 1.0 / inv_r, 1.0 / inv_w)
        self._blend_memo[key] = result
        return result

    def _node_latency(
        self, node: int, pus: tuple[int, ...], working_set: float
    ) -> float:
        inst = self._instance(node)
        base_lat, base_rbw, base_wbw = self._blended_performance(inst, pus)
        lat = inst.tech.effective_latency(int(working_set)) * (
            base_lat / inst.tech.loaded_latency
        )
        effect = memside_filter(
            inst,
            int(working_set),
            base_latency=lat,
            base_read_bw=base_rbw,
            base_write_bw=base_wbw,
        )
        return effect.latency

    def _node_bandwidths(
        self,
        node: int,
        pus: tuple[int, ...],
        working_set: float,
        write_working_set: float,
        threads: int,
    ) -> tuple[float, float, float]:
        inst = self._instance(node)
        base_lat, base_rbw, base_wbw = self._blended_performance(inst, pus)
        # Write-buffer collapse (NVDIMM) applies to the locality-adjusted
        # write bandwidth proportionally.
        eff_w = inst.tech.effective_write_bandwidth(int(write_working_set))
        base_wbw = base_wbw * (eff_w / inst.tech.peak_write_bandwidth)
        effect = memside_filter(
            inst,
            int(working_set),
            base_latency=base_lat,
            base_read_bw=base_rbw,
            base_write_bw=base_wbw,
        )
        scale = min(1.0, threads / inst.tech.saturation_threads)
        return effect.latency, effect.read_bandwidth * scale, effect.write_bandwidth * scale
