"""The phase-pricing engine.

:class:`SimEngine` turns (phase, placement) pairs into time, using the
roofline-style model described in the package docstring.  Everything the
profiler later needs — per-node traffic and stall attribution, per-buffer
miss counts and latency shares — is preserved in the returned
:class:`PhaseTiming`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SimulationError
from ..hw.spec import MachineSpec, NodeInstance
from ..obs import OBS
from ..topology.build import Topology, build_topology
from .access import KernelPhase, PatternKind, Placement
from .caches import CacheModel, cache_filter
from .memside import memside_filter, memside_filter_arrays

__all__ = [
    "NodeTraffic",
    "BufferTiming",
    "PhaseTiming",
    "RunTiming",
    "PreparedPhase",
    "CompiledPhase",
    "BatchPhaseTiming",
    "SimEngine",
]


@dataclass
class NodeTraffic:
    """Per-node traffic and time attribution within one phase."""

    node: int
    stream_read_bytes: float = 0.0
    stream_write_bytes: float = 0.0
    random_bytes: float = 0.0
    bw_seconds: float = 0.0       # time this node's traffic needs alone
    stall_seconds: float = 0.0    # latency-chain time paid on this node

    @property
    def total_bytes(self) -> float:
        return self.stream_read_bytes + self.stream_write_bytes + self.random_bytes


@dataclass
class BufferTiming:
    """Per-buffer outcome within one phase."""

    buffer: str
    pattern: PatternKind
    miss_count: float = 0.0
    latency_seconds: float = 0.0
    traffic_bytes: float = 0.0
    nodes: dict[int, float] = field(default_factory=dict)  # node -> fraction
    llc_hit_fraction: float = 0.0


@dataclass
class PhaseTiming:
    """Outcome of pricing one phase."""

    name: str
    threads: int
    seconds: float
    cpu_seconds: float
    latency_seconds: float       # summed serialized-latency component
    bandwidth_seconds: float     # max per-node bandwidth component
    node_traffic: dict[int, NodeTraffic]
    buffer_timings: dict[str, BufferTiming]

    @property
    def bound(self) -> str:
        """What limits this phase: 'bandwidth', 'latency' or 'cpu'."""
        serial = self.latency_seconds + self.cpu_seconds
        if self.bandwidth_seconds >= serial:
            return "bandwidth"
        return "latency" if self.latency_seconds >= self.cpu_seconds else "cpu"


@dataclass
class RunTiming:
    """A sequence of priced phases."""

    phases: list[PhaseTiming] = field(default_factory=list)

    @property
    def seconds(self) -> float:
        return sum(p.seconds for p in self.phases)

    def merged_node_traffic(self) -> dict[int, NodeTraffic]:
        merged: dict[int, NodeTraffic] = {}
        for phase in self.phases:
            for node, t in phase.node_traffic.items():
                m = merged.setdefault(node, NodeTraffic(node=node))
                m.stream_read_bytes += t.stream_read_bytes
                m.stream_write_bytes += t.stream_write_bytes
                m.random_bytes += t.random_bytes
                m.bw_seconds += t.bw_seconds
                m.stall_seconds += t.stall_seconds
        return merged


@dataclass(frozen=True)
class PreparedPhase:
    """The placement-independent half of pricing one phase.

    :meth:`SimEngine.prepare_phase` hoists everything that does not
    depend on the buffer placement — the cache model for the executing
    PUs, the cache-filtered traffic per access, the CPU term — so a
    search pricing the same phase under thousands of placements pays for
    it once (see :meth:`SimEngine.price_phase_many`).
    """

    phase: KernelPhase
    pus: tuple[int, ...]
    #: ``(access, cache_filter result)`` per access, in phase order.
    filtered: tuple[tuple, ...]
    cpu_seconds: float


@dataclass(frozen=True, eq=False)
class CompiledPhase:
    """A :class:`PreparedPhase` flattened into dense pricing arrays.

    :meth:`SimEngine.compile_prepared` resolves everything a batch
    pricing needs into numpy arrays over a *fixed node axis*: per-access
    cache-filtered traffic, MLP per (access, node), and per-node tech
    coefficients (locality-blended base performance, thread saturation,
    random-bandwidth derating).  ``generation`` stamps the MemAttrs
    generation the tables were resolved under; a compiled phase from a
    stale generation is refused by :meth:`SimEngine.price_placements_batch`.

    Bit-identity contract (docs/MODEL.md §7c): batch pricing equals the
    scalar :meth:`SimEngine.price_prepared` bit for bit for placements
    whose per-buffer fraction dicts iterate in node-axis order (the order
    :meth:`fractions` preserves; :meth:`accepts` checks it).
    """

    prepared: PreparedPhase
    nodes: tuple[int, ...]
    generation: int
    threads: int
    cpu_seconds: float
    buffers: tuple[str, ...]
    node_pos: dict[int, int]
    # Per-access arrays, phase-access order (float64 unless noted).
    ws: np.ndarray               # working sets
    is_written: np.ndarray       # bool: bytes_written > 0
    miss_count: np.ndarray
    mem_read: np.ndarray         # cache-filtered memory read bytes
    mem_write: np.ndarray        # cache-filtered memory write bytes
    traffic: np.ndarray          # mem_read + mem_write (scalar add order)
    latency_bound: np.ndarray    # bool: pattern.is_latency_bound
    mlp: np.ndarray              # (B, K): threads * min(cpu_mlp, max_mlp)
    # Per-node coefficient table, node-axis order.
    insts: tuple[NodeInstance, ...]
    blended: tuple[tuple[float, float, float], ...]
    rand_frac: tuple[float, ...]
    thread_scale: tuple[float, ...]

    @property
    def n_buffers(self) -> int:
        return len(self.buffers)

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def fractions(self, placements) -> np.ndarray:
        """Flatten :class:`Placement` objects into an (N, B, K) tensor."""
        out = np.zeros((len(placements), len(self.buffers), len(self.nodes)))
        pos = self.node_pos
        for i, placement in enumerate(placements):
            for b, name in enumerate(self.buffers):
                for node, frac in placement.of(name).items():
                    k = pos.get(node)
                    if k is None:
                        raise SimulationError(
                            f"placement puts buffer {name!r} on node {node}, "
                            f"outside the compiled node axis {self.nodes}"
                        )
                    out[i, b, k] = frac
        return out

    def accepts(self, placement: Placement) -> bool:
        """True when ``placement`` is bit-identity safe for this phase:
        it covers every buffer, uses only axis nodes, and each buffer's
        fraction dict iterates in node-axis order (multi-node splits in
        another order would accumulate latency terms differently)."""
        pos = self.node_pos
        for name in self.buffers:
            split = placement.fractions.get(name)
            if split is None:
                return False
            last = -1
            for node in split:
                k = pos.get(node)
                if k is None or k < last:
                    return False
                last = k
        return True


@dataclass(frozen=True, eq=False)
class BatchPhaseTiming:
    """Row-wise outcome of one :meth:`SimEngine.price_placements_batch`.

    ``seconds[i]``, ``latency_seconds[i]`` and ``bandwidth_seconds[i]``
    are bit-identical to the corresponding fields of the
    :class:`PhaseTiming` the scalar path returns for row ``i``;
    ``node_bw_seconds[i, k]`` is node ``nodes[k]``'s bandwidth time
    (0.0 where the scalar path would have no traffic entry).
    """

    nodes: tuple[int, ...]
    cpu_seconds: float
    seconds: np.ndarray            # (N,)
    latency_seconds: np.ndarray    # (N,)
    bandwidth_seconds: np.ndarray  # (N,)
    node_bw_seconds: np.ndarray    # (N, K)

    @property
    def rows(self) -> int:
        return len(self.seconds)


class SimEngine:
    """Prices phases against one machine."""

    def __init__(
        self,
        machine: MachineSpec,
        topology: Topology | None = None,
        *,
        attrs=None,
    ) -> None:
        self.machine = machine
        self.topology = topology or build_topology(machine)
        self._nodes: dict[int, NodeInstance] = {
            n.os_index: n for n in machine.numa_nodes()
        }
        # (node, pus) -> locality-blended (latency, read bw, write bw).
        # Pure in the immutable machine spec; entries are valid for one
        # MemAttrs generation (the watermark below) and evicted wholesale
        # when the generation moves, so a degraded/regenerated attribute
        # store can never serve stale blends.  Unbound engines (attrs is
        # None) keep generation 0 forever — the PR 2 behaviour.
        self._blend_memo: dict[
            tuple[int, tuple[int, ...]], tuple[float, float, float]
        ] = {}
        self._attrs = None
        self._memo_generation = 0
        self._memo_evictions = 0
        if attrs is not None:
            self.bind_attrs(attrs)

    # ------------------------------------------------------------------
    # generation-keyed memo maintenance
    # ------------------------------------------------------------------
    def bind_attrs(self, attrs) -> None:
        """Tie memo validity to a :class:`~repro.core.api.MemAttrs` store.

        Every pricing entry point then checks the store's generation and
        evicts all memoized blends (and refuses stale
        :class:`CompiledPhase` tables) when it moved — e.g. after
        ``degrade_target`` or a topology event.
        """
        self._attrs = attrs
        self._sync_generation()

    def _sync_generation(self) -> int:
        attrs = self._attrs
        if attrs is not None:
            generation = attrs.generation
            if generation != self._memo_generation:
                self._memo_evictions += len(self._blend_memo)
                self._blend_memo.clear()
                self._memo_generation = generation
        return self._memo_generation

    def memo_stats(self) -> dict[str, int]:
        """Memo accounting: current generation, live entries, evictions."""
        return {
            "generation": self._memo_generation,
            "blend_entries": len(self._blend_memo),
            "evictions": self._memo_evictions,
        }

    # ------------------------------------------------------------------
    def prepare_phase(
        self,
        phase: KernelPhase,
        *,
        pus: tuple[int, ...] | None = None,
    ) -> PreparedPhase:
        """Hoist the placement-independent work of pricing ``phase``."""
        if pus is None:
            pus = tuple(range(phase.threads))
        if len(pus) < 1:
            raise SimulationError("phase needs at least one PU")
        cache_model = CacheModel.for_threads(self.topology, pus)
        total_ws = float(sum(a.working_set for a in phase.accesses))
        filtered = tuple(
            (access, cache_filter(
                cache_model, access,
                access.working_set / total_ws if total_ws else 1.0,
            ))
            for access in phase.accesses
        )
        cpu_seconds = (
            phase.cpu_ops / (phase.threads * self.machine.core_ops_per_second)
            if phase.cpu_ops
            else 0.0
        )
        return PreparedPhase(
            phase=phase, pus=pus, filtered=filtered, cpu_seconds=cpu_seconds
        )

    def price_phase(
        self,
        phase: KernelPhase,
        placement: Placement,
        *,
        pus: tuple[int, ...] | None = None,
    ) -> PhaseTiming:
        """Price one phase.

        ``pus`` are the processors executing the phase (used for locality
        and cache capacity); defaults to the first ``phase.threads`` PUs.
        """
        return self.price_prepared(self.prepare_phase(phase, pus=pus), placement)

    def price_phase_many(
        self,
        phase: KernelPhase,
        placements,
        *,
        pus: tuple[int, ...] | None = None,
    ) -> list[PhaseTiming]:
        """Price one phase under many placements (batch path).

        The cache model and per-access cache filtering are computed once
        and shared; each placement only pays the node-dependent part.
        Results are bit-identical to per-placement :meth:`price_phase`
        calls.
        """
        prepared = self.prepare_phase(phase, pus=pus)
        return [self.price_prepared(prepared, p) for p in placements]

    def price_access_alone(
        self, prepared: PreparedPhase, index: int, node: int
    ) -> tuple[float, float]:
        """Price one prepared access as if it sat alone on ``node``.

        Returns ``(latency_seconds, bandwidth_seconds)`` — the access's
        contribution to the phase's latency chain and to ``node``'s
        bandwidth time when no other buffer shares the node.  Because the
        access keeps its real cache share (miss counts match the full
        phase) while the node sees only this buffer's working set (its
        loaded latency is lowest, its bandwidth highest), each component
        is a lower bound on the access's contribution in *any* complete
        placement — the building block of the placement search's
        branch-and-bound (docs/MODEL.md, "Placement search").
        """
        self._sync_generation()
        if OBS.enabled:
            OBS.metrics.counter("sim.single_access_pricings").inc()
        access, filtered = prepared.filtered[index]
        pus = prepared.pus
        threads = prepared.phase.threads
        ws = float(access.working_set)
        write_ws = ws if access.bytes_written > 0 else 0.0
        inst = self._instance(node)
        lat_seconds = 0.0
        if access.pattern.is_latency_bound:
            lat = self._node_latency(node, pus, ws)
            mlp = threads * min(access.pattern.cpu_mlp, inst.tech.max_mlp)
            lat_seconds = filtered.miss_count * lat / mlp
            random_bytes = filtered.memory_read_bytes + filtered.memory_write_bytes
            stream_read = stream_write = 0.0
        else:
            random_bytes = 0.0
            stream_read = filtered.memory_read_bytes
            stream_write = filtered.memory_write_bytes
        _, rbw, wbw = self._node_bandwidths(node, pus, ws, write_ws, threads)
        random_bw = min(rbw, wbw) * inst.tech.random_bandwidth_fraction
        bw_seconds = (
            stream_read / rbw + stream_write / wbw + random_bytes / random_bw
        )
        return lat_seconds, bw_seconds

    # ------------------------------------------------------------------
    # compiled batch pricing
    # ------------------------------------------------------------------
    def compile_phase(
        self,
        phase: KernelPhase,
        nodes: tuple[int, ...] | None = None,
        *,
        pus: tuple[int, ...] | None = None,
    ) -> CompiledPhase:
        """Prepare *and* compile ``phase`` for batch pricing."""
        return self.compile_prepared(self.prepare_phase(phase, pus=pus), nodes)

    def compile_prepared(
        self,
        prepared: PreparedPhase,
        nodes: tuple[int, ...] | None = None,
    ) -> CompiledPhase:
        """Flatten a :class:`PreparedPhase` into dense pricing arrays.

        ``nodes`` fixes the batch node axis (default: every NUMA node,
        ascending).  The per-node coefficient table is resolved here —
        locality-blended base performance for ``prepared.pus``, thread
        saturation and MLP caps — and stamped with the current MemAttrs
        generation; :meth:`price_placements_batch` refuses the compiled
        phase once that generation moves.
        """
        generation = self._sync_generation()
        if nodes is None:
            nodes = tuple(sorted(self._nodes))
        else:
            nodes = tuple(nodes)
            if len(set(nodes)) != len(nodes):
                raise SimulationError(f"duplicate nodes in axis {nodes}")
        threads = prepared.phase.threads
        n_access = len(prepared.filtered)
        ws = np.empty(n_access)
        is_written = np.empty(n_access, dtype=bool)
        miss_count = np.empty(n_access)
        mem_read = np.empty(n_access)
        mem_write = np.empty(n_access)
        traffic = np.empty(n_access)
        latency_bound = np.empty(n_access, dtype=bool)
        mlp = np.empty((n_access, len(nodes)))
        insts = tuple(self._instance(node) for node in nodes)
        for b, (access, filtered) in enumerate(prepared.filtered):
            ws[b] = float(access.working_set)
            is_written[b] = access.bytes_written > 0
            miss_count[b] = filtered.miss_count
            mem_read[b] = filtered.memory_read_bytes
            mem_write[b] = filtered.memory_write_bytes
            traffic[b] = filtered.memory_read_bytes + filtered.memory_write_bytes
            latency_bound[b] = access.pattern.is_latency_bound
            for k, inst in enumerate(insts):
                mlp[b, k] = threads * min(access.pattern.cpu_mlp, inst.tech.max_mlp)
        return CompiledPhase(
            prepared=prepared,
            nodes=nodes,
            generation=generation,
            threads=threads,
            cpu_seconds=prepared.cpu_seconds,
            buffers=tuple(a.buffer for a, _ in prepared.filtered),
            node_pos={node: k for k, node in enumerate(nodes)},
            ws=ws,
            is_written=is_written,
            miss_count=miss_count,
            mem_read=mem_read,
            mem_write=mem_write,
            traffic=traffic,
            latency_bound=latency_bound,
            mlp=mlp,
            insts=insts,
            blended=tuple(
                self._blended_performance(inst, prepared.pus) for inst in insts
            ),
            rand_frac=tuple(
                inst.tech.random_bandwidth_fraction for inst in insts
            ),
            thread_scale=tuple(
                min(1.0, threads / inst.tech.saturation_threads) for inst in insts
            ),
        )

    def price_placements_batch(
        self, compiled: CompiledPhase, placements
    ) -> BatchPhaseTiming:
        """Price an (N, B, K) fraction tensor in one vectorized pass.

        ``placements`` is either a float64 tensor of per-buffer node
        fractions over ``compiled.nodes`` or a sequence of
        :class:`Placement` objects (flattened via
        :meth:`CompiledPhase.fractions`).  Row ``i`` of the result is
        bit-identical to ``price_prepared(compiled.prepared, p_i)`` — the
        kernel vectorizes over the placement axis only and keeps the
        scalar path's per-element operation order over buffers and nodes
        (docs/MODEL.md §7c).
        """
        if compiled.generation != self._sync_generation():
            raise SimulationError(
                "stale CompiledPhase: attribute generation moved from "
                f"{compiled.generation} to {self._memo_generation}; recompile"
            )
        if isinstance(placements, np.ndarray):
            fractions = np.asarray(placements, dtype=np.float64)
        else:
            fractions = compiled.fractions(placements)
        n_buffers = len(compiled.buffers)
        n_nodes = len(compiled.nodes)
        if fractions.ndim != 3 or fractions.shape[1:] != (n_buffers, n_nodes):
            raise SimulationError(
                f"fraction tensor shape {fractions.shape} does not match "
                f"(N, {n_buffers}, {n_nodes})"
            )
        n = fractions.shape[0]
        if OBS.enabled:
            OBS.metrics.counter("sim.pricings_batch").inc(n)
        if n == 0:
            empty = np.zeros(0)
            return BatchPhaseTiming(
                nodes=compiled.nodes,
                cpu_seconds=compiled.cpu_seconds,
                seconds=empty,
                latency_seconds=empty,
                bandwidth_seconds=empty,
                node_bw_seconds=np.zeros((0, n_nodes)),
            )

        # Node working sets, accumulated in phase-access order exactly as
        # the scalar loop does (absent nodes add an exact +0.0).
        node_ws = np.zeros((n, n_nodes))
        node_write_ws = np.zeros((n, n_nodes))
        for b in range(n_buffers):
            contrib = compiled.ws[b] * fractions[:, b, :]
            node_ws += contrib
            if compiled.is_written[b]:
                node_write_ws += contrib

        # Loaded latency per node at the row's full node working set —
        # the vector analogue of the scalar path's per-node lat_memo.
        any_latency = bool(compiled.latency_bound.any())
        lat_by_node: list[np.ndarray | None] = [None] * n_nodes
        if any_latency:
            for k in range(n_nodes):
                lat_by_node[k] = self._node_latency_vec(
                    compiled, k, node_ws[:, k]
                )

        # Traffic accumulation: buffers outer (phase order), nodes inner
        # (axis order) — the scalar loop's order for axis-ordered dicts.
        stream_read = np.zeros((n, n_nodes))
        stream_write = np.zeros((n, n_nodes))
        random_bytes = np.zeros((n, n_nodes))
        latency_seconds = np.zeros(n)
        for b in range(n_buffers):
            if compiled.latency_bound[b]:
                random_bytes += compiled.traffic[b] * fractions[:, b, :]
                buffer_lat = np.zeros(n)
                for k in range(n_nodes):
                    buffer_lat += (
                        compiled.miss_count[b]
                        * fractions[:, b, k]
                        * lat_by_node[k]
                        / compiled.mlp[b, k]
                    )
                latency_seconds += buffer_lat
            else:
                stream_read += compiled.mem_read[b] * fractions[:, b, :]
                stream_write += compiled.mem_write[b] * fractions[:, b, :]

        node_bw_seconds = np.empty((n, n_nodes))
        for k in range(n_nodes):
            _, rbw, wbw = self._node_bandwidths_vec(
                compiled, k, node_ws[:, k], node_write_ws[:, k]
            )
            random_bw = np.minimum(rbw, wbw) * compiled.rand_frac[k]
            node_bw_seconds[:, k] = (
                stream_read[:, k] / rbw
                + stream_write[:, k] / wbw
                + random_bytes[:, k] / random_bw
            )
        bandwidth_seconds = (
            node_bw_seconds.max(axis=1) if n_nodes else np.zeros(n)
        )
        seconds = np.maximum(
            bandwidth_seconds, latency_seconds + compiled.cpu_seconds
        )
        nonpositive = seconds <= 0.0
        if nonpositive.any():
            row = int(np.argmax(nonpositive))
            raise SimulationError(
                f"phase {compiled.prepared.phase.name!r} priced to zero "
                f"time (batch row {row})"
            )
        return BatchPhaseTiming(
            nodes=compiled.nodes,
            cpu_seconds=compiled.cpu_seconds,
            seconds=seconds,
            latency_seconds=latency_seconds,
            bandwidth_seconds=bandwidth_seconds,
            node_bw_seconds=node_bw_seconds,
        )

    def price_accesses_alone_batch(
        self, compiled: CompiledPhase
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`price_access_alone` over (access, node).

        Returns ``(lat_seconds, bw_seconds)`` arrays of shape (B, K) with
        ``[b, k]`` bit-identical to
        ``price_access_alone(compiled.prepared, b, compiled.nodes[k])``.
        One call replaces the B*K scalar pricings a bound-table build
        performs.
        """
        if compiled.generation != self._sync_generation():
            raise SimulationError(
                "stale CompiledPhase: attribute generation moved from "
                f"{compiled.generation} to {self._memo_generation}; recompile"
            )
        n_nodes = len(compiled.nodes)
        n_buffers = len(compiled.buffers)
        if OBS.enabled:
            OBS.metrics.counter("sim.pricings_batch").inc(n_buffers * n_nodes)
        latency_bound = compiled.latency_bound
        write_ws = np.where(compiled.is_written, compiled.ws, 0.0)
        sr = np.where(latency_bound, 0.0, compiled.mem_read)
        sw = np.where(latency_bound, 0.0, compiled.mem_write)
        rnd = np.where(latency_bound, compiled.traffic, 0.0)
        any_latency = bool(latency_bound.any())
        lat_seconds = np.zeros((n_buffers, n_nodes))
        bw_seconds = np.empty((n_buffers, n_nodes))
        for k in range(n_nodes):
            if any_latency:
                lat = self._node_latency_vec(compiled, k, compiled.ws)
                lat_seconds[:, k] = np.where(
                    latency_bound,
                    compiled.miss_count * lat / compiled.mlp[:, k],
                    0.0,
                )
            _, rbw, wbw = self._node_bandwidths_vec(
                compiled, k, compiled.ws, write_ws
            )
            random_bw = np.minimum(rbw, wbw) * compiled.rand_frac[k]
            bw_seconds[:, k] = sr / rbw + sw / wbw + rnd / random_bw
        return lat_seconds, bw_seconds

    def price_prepared(
        self, prepared: PreparedPhase, placement: Placement
    ) -> PhaseTiming:
        """Price a :class:`PreparedPhase` under one placement."""
        self._sync_generation()
        if OBS.enabled:
            OBS.metrics.counter("sim.pricings").inc()
        phase = prepared.phase
        pus = prepared.pus
        threads = phase.threads

        node_traffic: dict[int, NodeTraffic] = {}
        buffer_timings: dict[str, BufferTiming] = {}

        # Working set landing on each node (for write-buffer / TLB terms).
        node_ws: dict[int, float] = {}
        node_write_ws: dict[int, float] = {}
        for access in phase.accesses:
            for node, frac in placement.of(access.buffer).items():
                node_ws[node] = node_ws.get(node, 0.0) + access.working_set * frac
                if access.bytes_written > 0:
                    node_write_ws[node] = (
                        node_write_ws.get(node, 0.0) + access.working_set * frac
                    )

        # The loaded latency of a node is fixed for the whole phase (it
        # depends on the node's total working set, not on which access is
        # paying it), so resolve it at most once per node.
        lat_memo: dict[int, float] = {}

        for access, filtered in prepared.filtered:
            bt = BufferTiming(
                buffer=access.buffer,
                pattern=access.pattern,
                miss_count=filtered.miss_count,
                traffic_bytes=filtered.memory_read_bytes + filtered.memory_write_bytes,
                llc_hit_fraction=filtered.hit_fraction,
            )
            for node, frac in placement.of(access.buffer).items():
                bt.nodes[node] = frac
                nt = node_traffic.setdefault(node, NodeTraffic(node=node))
                if access.pattern.is_latency_bound:
                    nt.random_bytes += bt.traffic_bytes * frac
                    lat = lat_memo.get(node)
                    if lat is None:
                        lat = self._node_latency(node, pus, node_ws.get(node, 0.0))
                        lat_memo[node] = lat
                    inst = self._nodes[node]
                    mlp = threads * min(access.pattern.cpu_mlp, inst.tech.max_mlp)
                    lat_time = filtered.miss_count * frac * lat / mlp
                    bt.latency_seconds += lat_time
                    nt.stall_seconds += lat_time
                else:
                    nt.stream_read_bytes += filtered.memory_read_bytes * frac
                    nt.stream_write_bytes += filtered.memory_write_bytes * frac
            buffer_timings[access.buffer] = bt

        # Per-node bandwidth time.
        for node, nt in node_traffic.items():
            lat, rbw, wbw = self._node_bandwidths(
                node, pus, node_ws.get(node, 0.0), node_write_ws.get(node, 0.0),
                threads,
            )
            inst = self._nodes[node]
            random_bw = min(rbw, wbw) * inst.tech.random_bandwidth_fraction
            nt.bw_seconds = (
                nt.stream_read_bytes / rbw
                + nt.stream_write_bytes / wbw
                + nt.random_bytes / random_bw
            )

        cpu_seconds = prepared.cpu_seconds
        latency_seconds = sum(bt.latency_seconds for bt in buffer_timings.values())
        bandwidth_seconds = max(
            (nt.bw_seconds for nt in node_traffic.values()), default=0.0
        )
        seconds = max(bandwidth_seconds, latency_seconds + cpu_seconds)
        if seconds <= 0:
            raise SimulationError(f"phase {phase.name!r} priced to zero time")

        return PhaseTiming(
            name=phase.name,
            threads=threads,
            seconds=seconds,
            cpu_seconds=cpu_seconds,
            latency_seconds=latency_seconds,
            bandwidth_seconds=bandwidth_seconds,
            node_traffic=node_traffic,
            buffer_timings=buffer_timings,
        )

    def price_run(
        self,
        phases,
        placement: Placement,
        *,
        pus: tuple[int, ...] | None = None,
    ) -> RunTiming:
        """Price a sequence of phases under one placement."""
        if not OBS.enabled:
            run = RunTiming()
            for phase in phases:
                run.phases.append(self.price_phase(phase, placement, pus=pus))
            return run
        with OBS.tracer.span("sim.price_run") as span:
            run = RunTiming()
            for phase in phases:
                run.phases.append(self.price_phase(phase, placement, pus=pus))
            span.fields.update(phases=len(run.phases), seconds=run.seconds)
            return run

    # ------------------------------------------------------------------
    # node performance resolution
    # ------------------------------------------------------------------
    def _instance(self, node: int) -> NodeInstance:
        try:
            return self._nodes[node]
        except KeyError:
            raise SimulationError(f"unknown NUMA node {node}") from None

    def _blended_performance(
        self, inst: NodeInstance, pus: tuple[int, ...]
    ) -> tuple[float, float, float]:
        """Locality-weighted performance when the executing PUs straddle
        locality domains (e.g. an interleaved app spanning two packages):
        latency averages arithmetically, bandwidths harmonically, weighted
        by the PU distribution over locality classes.

        Memoized per (node, pus) for the engine's lifetime: the blend is
        pure in the immutable machine spec, and pricing hot loops resolve
        the same (node, pus) pair once per access otherwise."""
        key = (inst.os_index, pus)
        cached = self._blend_memo.get(key)
        if cached is not None:
            return cached
        classes: dict[str, int] = {}
        for pu in pus:
            cls = self.machine.locality_class(pu, inst)
            classes[cls] = classes.get(cls, 0) + 1
        total = len(pus)
        if len(classes) == 1:
            result = self.machine.access_performance(pus[0], inst, loaded=True)
            self._blend_memo[key] = result
            return result
        lat = inv_r = inv_w = 0.0
        for cls, count in classes.items():
            rep = next(
                pu for pu in pus if self.machine.locality_class(pu, inst) == cls
            )
            c_lat, c_rbw, c_wbw = self.machine.access_performance(
                rep, inst, loaded=True
            )
            weight = count / total
            lat += weight * c_lat
            inv_r += weight / c_rbw
            inv_w += weight / c_wbw
        result = (lat, 1.0 / inv_r, 1.0 / inv_w)
        self._blend_memo[key] = result
        return result

    def _node_latency(
        self, node: int, pus: tuple[int, ...], working_set: float
    ) -> float:
        inst = self._instance(node)
        base_lat, base_rbw, base_wbw = self._blended_performance(inst, pus)
        lat = inst.tech.effective_latency(int(working_set)) * (
            base_lat / inst.tech.loaded_latency
        )
        effect = memside_filter(
            inst,
            int(working_set),
            base_latency=lat,
            base_read_bw=base_rbw,
            base_write_bw=base_wbw,
        )
        return effect.latency

    def _node_bandwidths(
        self,
        node: int,
        pus: tuple[int, ...],
        working_set: float,
        write_working_set: float,
        threads: int,
    ) -> tuple[float, float, float]:
        inst = self._instance(node)
        base_lat, base_rbw, base_wbw = self._blended_performance(inst, pus)
        # Write-buffer collapse (NVDIMM) applies to the locality-adjusted
        # write bandwidth proportionally.
        eff_w = inst.tech.effective_write_bandwidth(int(write_working_set))
        base_wbw = base_wbw * (eff_w / inst.tech.peak_write_bandwidth)
        effect = memside_filter(
            inst,
            int(working_set),
            base_latency=base_lat,
            base_read_bw=base_rbw,
            base_write_bw=base_wbw,
        )
        scale = min(1.0, threads / inst.tech.saturation_threads)
        return (
            effect.latency,
            effect.read_bandwidth * scale,
            effect.write_bandwidth * scale,
        )

    def _node_latency_vec(
        self, compiled: CompiledPhase, k: int, working_sets: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`_node_latency` over a working-set array.

        Bit-identical per element: ``np.floor`` mirrors the scalar
        ``int()`` cast (working sets are non-negative) and the curve /
        memside evaluations keep the scalar operation order.
        """
        inst = compiled.insts[k]
        base_lat, base_rbw, base_wbw = compiled.blended[k]
        floored = np.floor(working_sets)
        lat = inst.tech.effective_latency_array(floored) * (
            base_lat / inst.tech.loaded_latency
        )
        effect = memside_filter_arrays(
            inst,
            floored,
            base_latency=lat,
            base_read_bw=base_rbw,
            base_write_bw=base_wbw,
        )
        return effect.latency

    def _node_bandwidths_vec(
        self,
        compiled: CompiledPhase,
        k: int,
        working_sets: np.ndarray,
        write_working_sets: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`_node_bandwidths`; bit-identical per element."""
        inst = compiled.insts[k]
        base_lat, base_rbw, base_wbw = compiled.blended[k]
        floored = np.floor(working_sets)
        eff_w = inst.tech.effective_write_bandwidth_array(
            np.floor(write_working_sets)
        )
        base_wbw_arr = base_wbw * (eff_w / inst.tech.peak_write_bandwidth)
        effect = memside_filter_arrays(
            inst,
            floored,
            base_latency=base_lat,
            base_read_bw=base_rbw,
            base_write_bw=base_wbw_arr,
        )
        scale = compiled.thread_scale[k]
        return (
            effect.latency,
            effect.read_bandwidth * scale,
            effect.write_bandwidth * scale,
        )
