"""Access-pattern descriptors: what an application does to its buffers.

A :class:`KernelPhase` is the unit the engine prices: it names the buffers
it touches and, per buffer, a :class:`BufferAccess` describing how much is
read/written and in what pattern.  A :class:`Placement` says which NUMA
node(s) hold each buffer — usually derived from
:class:`~repro.kernel.pagealloc.PageAllocation` records.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import SimulationError

__all__ = ["PatternKind", "BufferAccess", "KernelPhase", "Placement"]


class PatternKind(enum.Enum):
    """How a buffer is walked."""

    STREAM = "stream"               # contiguous, prefetchable
    STRIDED = "strided"             # constant stride > line size
    RANDOM = "random"               # independent random accesses
    POINTER_CHASE = "pointer_chase" # each access depends on the previous

    @property
    def is_latency_bound(self) -> bool:
        return self in (PatternKind.RANDOM, PatternKind.POINTER_CHASE)

    @property
    def cpu_mlp(self) -> float:
        """Memory-level parallelism one thread extracts for this pattern."""
        return {
            PatternKind.STREAM: 16.0,
            PatternKind.STRIDED: 12.0,
            PatternKind.RANDOM: 8.0,
            PatternKind.POINTER_CHASE: 1.0,
        }[self]


@dataclass(frozen=True)
class BufferAccess:
    """One buffer's traffic during a phase.

    ``bytes_read``/``bytes_written`` count *useful* (program-visible)
    bytes; cache-line amplification for sub-line random accesses is the
    engine's job, driven by ``granularity``.
    ``working_set`` is how much of the buffer is actually touched.
    """

    buffer: str
    pattern: PatternKind
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    working_set: int = 0
    granularity: int = 8
    line_size: int = 64
    #: Fraction of random accesses that land in a small, hot subset of the
    #: buffer (power-law workloads: graph hubs, hash-table heads).  Hot
    #: accesses hit the CPU caches regardless of the total working set.
    hot_fraction: float = 0.0

    @property
    def total_bytes(self) -> float:
        """Bytes moved in either direction."""
        return self.bytes_read + self.bytes_written

    def __post_init__(self) -> None:
        if not 0.0 <= self.hot_fraction < 1.0:
            raise SimulationError(
                f"{self.buffer}: hot_fraction must be in [0, 1)"
            )
        if not self.buffer:
            raise SimulationError("buffer name must be non-empty")
        if self.bytes_read < 0 or self.bytes_written < 0:
            raise SimulationError(f"{self.buffer}: negative traffic")
        if self.bytes_read == 0 and self.bytes_written == 0:
            raise SimulationError(f"{self.buffer}: access moves no bytes")
        if self.working_set <= 0:
            raise SimulationError(f"{self.buffer}: working_set must be positive")
        if self.granularity <= 0 or self.line_size <= 0:
            raise SimulationError(f"{self.buffer}: bad granularity/line size")


@dataclass(frozen=True)
class KernelPhase:
    """One timed phase of an application."""

    name: str
    accesses: tuple[BufferAccess, ...]
    threads: int
    cpu_ops: float = 0.0

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise SimulationError(f"phase {self.name!r}: needs >= 1 thread")
        if self.cpu_ops < 0:
            raise SimulationError(f"phase {self.name!r}: negative cpu_ops")
        if not self.accesses:
            raise SimulationError(f"phase {self.name!r}: no buffer accesses")
        names = [a.buffer for a in self.accesses]
        if len(set(names)) != len(names):
            raise SimulationError(f"phase {self.name!r}: duplicate buffer names")

    def access(self, buffer: str) -> BufferAccess:
        for a in self.accesses:
            if a.buffer == buffer:
                return a
        raise SimulationError(f"phase {self.name!r}: no buffer {buffer!r}")

    def traffic_shares(self) -> dict[str, float]:
        """Per-buffer fraction of the phase's total bytes moved."""
        total = sum(a.total_bytes for a in self.accesses)
        if total <= 0:
            return {a.buffer: 0.0 for a in self.accesses}
        return {a.buffer: a.total_bytes / total for a in self.accesses}


def _validate_split(buffer: str, split: dict[int, float]) -> None:
    total = sum(split.values())
    if not 0.999 <= total <= 1.001:
        raise SimulationError(
            f"buffer {buffer!r}: placement fractions sum to {total}, not 1"
        )


@dataclass
class Placement:
    """Which node(s) hold each buffer: buffer → {node os index: fraction}.

    Fraction sums are validated when splits enter the placement
    (construction, :meth:`set`), so :meth:`of` — the pricing hot path —
    is a plain dictionary lookup.
    """

    fractions: dict[str, dict[int, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for buffer, split in self.fractions.items():
            _validate_split(buffer, split)

    @classmethod
    def single(cls, **buffer_to_node: int) -> "Placement":
        """Convenience: every named buffer entirely on one node."""
        return cls({name: {node: 1.0} for name, node in buffer_to_node.items()})

    @classmethod
    def from_allocations(cls, allocations: dict[str, "object"]) -> "Placement":
        """Build from :class:`~repro.kernel.pagealloc.PageAllocation`s."""
        fractions: dict[str, dict[int, float]] = {}
        for name, alloc in allocations.items():
            fractions[name] = {
                node: alloc.fraction_on(node) for node in alloc.nodes
            }
        return cls(fractions)

    def of(self, buffer: str) -> dict[int, float]:
        try:
            return self.fractions[buffer]
        except KeyError:
            raise SimulationError(f"no placement for buffer {buffer!r}") from None

    def set(self, buffer: str, split: dict[int, float]) -> None:
        _validate_split(buffer, split)
        self.fractions[buffer] = dict(split)

    def nodes_used(self) -> tuple[int, ...]:
        out: set[int] = set()
        for split in self.fractions.values():
            out.update(split)
        return tuple(sorted(out))
