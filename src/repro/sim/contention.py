"""Cross-job bandwidth contention: pricing phases that run *simultaneously*.

The single-phase engine assumes the phase owns the machine.  When several
applications share nodes (§III-B3's multi-tenant scenario), their traffic
contends: we model each NUMA node as a processor-sharing server — while
``k`` jobs have outstanding traffic on a node, each receives ``1/k`` of
its bandwidth.  Latency/CPU components are per-job serial work and do not
contend (they use different resources: the cores running the job).

:func:`price_concurrent` computes each job's finish time under that model
by event-stepping job completions (exact for processor sharing).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from .access import KernelPhase, Placement
from .engine import PhaseTiming, SimEngine

__all__ = ["ConcurrentJob", "ConcurrentOutcome", "price_concurrent"]


@dataclass(frozen=True)
class ConcurrentJob:
    """One co-running application phase."""

    name: str
    phase: KernelPhase
    placement: Placement
    pus: tuple[int, ...]


@dataclass(frozen=True)
class ConcurrentOutcome:
    """Finish time of one job under contention."""

    name: str
    solo_seconds: float        # what the job would take alone
    seconds: float             # finish time while sharing the machine
    slowdown: float            # seconds / solo_seconds


def price_concurrent(
    engine: SimEngine, jobs: tuple[ConcurrentJob, ...]
) -> tuple[ConcurrentOutcome, ...]:
    """Price co-running jobs with per-node processor-sharing bandwidth.

    Approach: price each job alone to obtain (a) its serial (latency+cpu)
    time and (b) its *bandwidth work* per node (node-seconds of demand).
    Then simulate processor sharing: at any instant, a node serves its
    active jobs at equal rates; a job's bandwidth work completes node by
    node (its finish is governed by its bottleneck node), after which its
    serial work keeps only its own cores busy.

    The serial component overlaps the bandwidth component the same way
    the solo model overlaps them (roofline max), so each job's finish
    time is ``max(shared_bandwidth_finish, serial_time)``.
    """
    if not jobs:
        raise SimulationError("price_concurrent needs at least one job")
    names = [j.name for j in jobs]
    if len(set(names)) != len(names):
        raise SimulationError("duplicate job names")

    solo: dict[str, PhaseTiming] = {}
    work: dict[str, dict[int, float]] = {}
    for job in jobs:
        timing = engine.price_phase(job.phase, job.placement, pus=job.pus)
        solo[job.name] = timing
        work[job.name] = {
            node: traffic.bw_seconds
            for node, traffic in timing.node_traffic.items()
            if traffic.bw_seconds > 0
        }

    # Event-driven processor sharing over the union of nodes.  A job is
    # "active on a node" until its work there is drained; it advances on
    # all its nodes in parallel (they are independent controllers).
    remaining = {name: dict(node_work) for name, node_work in work.items()}
    bw_finish = {name: 0.0 for name in names}
    now = 0.0
    while any(any(v > 1e-15 for v in r.values()) for r in remaining.values()):
        # Sharers per node at this instant.
        sharers: dict[int, int] = {}
        for r in remaining.values():
            for node, left in r.items():
                if left > 1e-15:
                    sharers[node] = sharers.get(node, 0) + 1
        # Each active (job, node) drains at rate 1/sharers[node] of the
        # node's capacity; time to next completion event:
        dt = min(
            left * sharers[node]
            for r in remaining.values()
            for node, left in r.items()
            if left > 1e-15
        )
        now += dt
        for name, r in remaining.items():
            done = True
            for node, left in list(r.items()):
                if left > 1e-15:
                    r[node] = left - dt / sharers[node]
                    if r[node] > 1e-15:
                        done = False
            if done and bw_finish[name] == 0.0 and work[name]:
                bw_finish[name] = now

    outcomes = []
    for job in jobs:
        serial = solo[job.name].latency_seconds + solo[job.name].cpu_seconds
        finish = max(bw_finish[job.name], serial)
        solo_seconds = solo[job.name].seconds
        outcomes.append(
            ConcurrentOutcome(
                name=job.name,
                solo_seconds=solo_seconds,
                seconds=finish,
                slowdown=finish / solo_seconds,
            )
        )
    return tuple(outcomes)
