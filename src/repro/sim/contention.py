"""Cross-job bandwidth contention: pricing phases that run *simultaneously*.

The single-phase engine assumes the phase owns the machine.  When several
applications share nodes (§III-B3's multi-tenant scenario), their traffic
contends: we model each NUMA node as a processor-sharing server — while
``k`` jobs have outstanding traffic on a node, each receives ``1/k`` of
its bandwidth.  Latency/CPU components are per-job serial work and do not
contend (they use different resources: the cores running the job).

:func:`price_concurrent` computes each job's finish time under that model
by event-stepping job completions (exact for processor sharing).  Jobs
sharing the same (phase, pus) context are solo-priced through the
compiled batch path (:meth:`~repro.sim.engine.SimEngine.
price_placements_batch`) in one vectorized call; :func:`price_concurrent_batch`
extends that to whole placement *scenarios* — one compile per job, one
batch pricing across every scenario's placements, then the scalar
processor-sharing fixpoint per scenario.  Both are bit-identical to the
per-job scalar rescoring they replace.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from .access import KernelPhase, Placement
from .engine import SimEngine

__all__ = [
    "ConcurrentJob",
    "ConcurrentOutcome",
    "price_concurrent",
    "price_concurrent_batch",
]

#: Solo-price through the batch path only when a (phase, pus) group has at
#: least this many jobs — a one-row batch just adds compile overhead.
_BATCH_MIN_JOBS = 2


@dataclass(frozen=True)
class ConcurrentJob:
    """One co-running application phase."""

    name: str
    phase: KernelPhase
    placement: Placement
    pus: tuple[int, ...]


@dataclass(frozen=True)
class ConcurrentOutcome:
    """Finish time of one job under contention."""

    name: str
    solo_seconds: float        # what the job would take alone
    seconds: float             # finish time while sharing the machine
    slowdown: float            # seconds / solo_seconds


@dataclass(frozen=True)
class _SoloPrice:
    """The per-job inputs the processor-sharing fixpoint consumes."""

    solo_seconds: float
    serial_seconds: float      # latency + cpu (does not contend)
    work: dict[int, float]     # node -> bandwidth-seconds of demand


def _solo_scalar(engine: SimEngine, job: ConcurrentJob) -> _SoloPrice:
    timing = engine.price_phase(job.phase, job.placement, pus=job.pus)
    return _SoloPrice(
        solo_seconds=timing.seconds,
        serial_seconds=timing.latency_seconds + timing.cpu_seconds,
        work={
            node: traffic.bw_seconds
            for node, traffic in timing.node_traffic.items()
            if traffic.bw_seconds > 0
        },
    )


def _placement_nodes(placement: Placement) -> set[int]:
    return {
        node for split in placement.fractions.values() for node in split
    }


def _solo_prices(
    engine: SimEngine, jobs: tuple[ConcurrentJob, ...]
) -> dict[str, _SoloPrice]:
    """Solo-price every job, batching same-(phase, pus) groups.

    Jobs sharing a pricing context are flattened into one fraction tensor
    and priced in a single :meth:`SimEngine.price_placements_batch` call;
    jobs whose placements are not axis-order compatible (multi-node
    splits iterating against the sorted node axis) fall back to the
    scalar path.  Either way the numbers are bit-identical to per-job
    :meth:`SimEngine.price_phase` calls.
    """
    groups: dict[tuple[KernelPhase, tuple[int, ...]], list[ConcurrentJob]] = {}
    for job in jobs:
        groups.setdefault((job.phase, job.pus), []).append(job)

    solo: dict[str, _SoloPrice] = {}
    for (phase, pus), members in groups.items():
        batchable: list[ConcurrentJob] = []
        if len(members) >= _BATCH_MIN_JOBS:
            axis = tuple(
                sorted(set().union(*(
                    _placement_nodes(j.placement) for j in members
                )))
            )
            compiled = engine.compile_phase(phase, axis, pus=pus)
            batchable = [
                j for j in members if compiled.accepts(j.placement)
            ]
        if len(batchable) >= _BATCH_MIN_JOBS:
            batch = engine.price_placements_batch(
                compiled, [j.placement for j in batchable]
            )
            for i, job in enumerate(batchable):
                row_work: dict[int, float] = {}
                for k, node in enumerate(batch.nodes):
                    bw = float(batch.node_bw_seconds[i, k])
                    if bw > 0:
                        row_work[node] = bw
                solo[job.name] = _SoloPrice(
                    solo_seconds=float(batch.seconds[i]),
                    serial_seconds=(
                        float(batch.latency_seconds[i]) + batch.cpu_seconds
                    ),
                    work=row_work,
                )
        else:
            batchable = []
        for job in members:
            if job.name not in solo:
                solo[job.name] = _solo_scalar(engine, job)
    return solo


def _bandwidth_finish(
    names: list[str], work: dict[str, dict[int, float]]
) -> dict[str, float]:
    """Event-driven processor sharing over the union of nodes.

    A job is "active on a node" until its work there is drained; it
    advances on all its nodes in parallel (they are independent
    controllers).
    """
    remaining = {name: dict(node_work) for name, node_work in work.items()}
    bw_finish = {name: 0.0 for name in names}
    now = 0.0
    while any(any(v > 1e-15 for v in r.values()) for r in remaining.values()):
        # Sharers per node at this instant.
        sharers: dict[int, int] = {}
        for r in remaining.values():
            for node, left in r.items():
                if left > 1e-15:
                    sharers[node] = sharers.get(node, 0) + 1
        # Each active (job, node) drains at rate 1/sharers[node] of the
        # node's capacity; time to next completion event:
        dt = min(
            left * sharers[node]
            for r in remaining.values()
            for node, left in r.items()
            if left > 1e-15
        )
        now += dt
        for name, r in remaining.items():
            done = True
            for node, left in list(r.items()):
                if left > 1e-15:
                    r[node] = left - dt / sharers[node]
                    if r[node] > 1e-15:
                        done = False
            if done and bw_finish[name] == 0.0 and work[name]:
                bw_finish[name] = now
    return bw_finish


def _outcomes(
    jobs: tuple[ConcurrentJob, ...], solo: dict[str, _SoloPrice]
) -> tuple[ConcurrentOutcome, ...]:
    names = [j.name for j in jobs]
    bw_finish = _bandwidth_finish(
        names, {name: solo[name].work for name in names}
    )
    outcomes = []
    for job in jobs:
        price = solo[job.name]
        finish = max(bw_finish[job.name], price.serial_seconds)
        outcomes.append(
            ConcurrentOutcome(
                name=job.name,
                solo_seconds=price.solo_seconds,
                seconds=finish,
                slowdown=finish / price.solo_seconds,
            )
        )
    return tuple(outcomes)


def _check_jobs(jobs: tuple[ConcurrentJob, ...]) -> None:
    if not jobs:
        raise SimulationError("price_concurrent needs at least one job")
    names = [j.name for j in jobs]
    if len(set(names)) != len(names):
        raise SimulationError("duplicate job names")


def price_concurrent(
    engine: SimEngine, jobs: tuple[ConcurrentJob, ...]
) -> tuple[ConcurrentOutcome, ...]:
    """Price co-running jobs with per-node processor-sharing bandwidth.

    Approach: price each job alone to obtain (a) its serial (latency+cpu)
    time and (b) its *bandwidth work* per node (node-seconds of demand).
    Then simulate processor sharing: at any instant, a node serves its
    active jobs at equal rates; a job's bandwidth work completes node by
    node (its finish is governed by its bottleneck node), after which its
    serial work keeps only its own cores busy.

    The serial component overlaps the bandwidth component the same way
    the solo model overlaps them (roofline max), so each job's finish
    time is ``max(shared_bandwidth_finish, serial_time)``.
    """
    _check_jobs(jobs)
    return _outcomes(jobs, _solo_prices(engine, jobs))


def price_concurrent_batch(
    engine: SimEngine,
    jobs: tuple[ConcurrentJob, ...],
    scenarios,
) -> tuple[tuple[ConcurrentOutcome, ...], ...]:
    """Price many placement *scenarios* of the same co-running jobs.

    ``scenarios[s]`` is a sequence of placements, one per job in order
    (each job's :attr:`ConcurrentJob.placement` is ignored).  Every job's
    phase is compiled once and its S scenario placements priced in one
    batch call; the processor-sharing fixpoint then runs per scenario on
    the precomputed solo numbers.  Output ``[s]`` is bit-identical to
    ``price_concurrent`` on jobs carrying ``scenarios[s]``'s placements.
    """
    _check_jobs(jobs)
    scenarios = tuple(tuple(row) for row in scenarios)
    for s, row in enumerate(scenarios):
        if len(row) != len(jobs):
            raise SimulationError(
                f"scenario {s} has {len(row)} placements for {len(jobs)} jobs"
            )
    if not scenarios:
        return ()

    # One compile + one batch pricing per job, across all scenarios.
    per_scenario: list[dict[str, _SoloPrice]] = [{} for _ in scenarios]
    for j, job in enumerate(jobs):
        placements = [row[j] for row in scenarios]
        axis = tuple(
            sorted(set().union(*(_placement_nodes(p) for p in placements)))
        )
        compiled = engine.compile_phase(job.phase, axis, pus=job.pus)
        batch_rows = [
            s for s, p in enumerate(placements) if compiled.accepts(p)
        ]
        if len(batch_rows) >= _BATCH_MIN_JOBS:
            batch = engine.price_placements_batch(
                compiled, [placements[s] for s in batch_rows]
            )
            for i, s in enumerate(batch_rows):
                row_work: dict[int, float] = {}
                for k, node in enumerate(batch.nodes):
                    bw = float(batch.node_bw_seconds[i, k])
                    if bw > 0:
                        row_work[node] = bw
                per_scenario[s][job.name] = _SoloPrice(
                    solo_seconds=float(batch.seconds[i]),
                    serial_seconds=(
                        float(batch.latency_seconds[i]) + batch.cpu_seconds
                    ),
                    work=row_work,
                )
        else:
            batch_rows = []
        for s, placement in enumerate(placements):
            if job.name not in per_scenario[s]:
                per_scenario[s][job.name] = _solo_scalar(
                    engine,
                    ConcurrentJob(
                        name=job.name,
                        phase=job.phase,
                        placement=placement,
                        pus=job.pus,
                    ),
                )
    return tuple(
        _outcomes(jobs, solo) for solo in per_scenario
    )
