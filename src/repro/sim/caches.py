"""CPU cache filtering: how much traffic reaches memory at all.

The engine only needs an aggregate answer per buffer access: of the bytes
the program touches, how many cache-line transfers actually reach the
memory node?  We model the last-level cache reachable from the executing
threads, partition it proportionally across the phase's working sets, and
apply a per-pattern reuse model:

* **stream/strided** — no reuse: every line is fetched once, so memory
  read traffic equals the touched bytes (line-rounded); repeated sweeps
  refetch unless the whole working set fits.
* **random** — hit probability ≈ resident fraction (cache_share / ws).
* **pointer_chase** — as random, but the engine also serializes it.

Sub-line granularity amplifies traffic: an 8-byte random read still moves
a 64-byte line.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from ..topology.build import Topology
from ..topology.objects import ObjType
from .access import BufferAccess, PatternKind

__all__ = ["CacheModel", "CacheFilterResult", "cache_filter"]


@dataclass(frozen=True)
class CacheFilterResult:
    """Traffic that reaches memory for one buffer access."""

    memory_read_bytes: float     # line-granular bytes read from memory
    memory_write_bytes: float    # line-granular bytes written to memory
    miss_count: float            # number of demand misses (latency events)
    hit_fraction: float          # fraction of accesses served by cache


@dataclass(frozen=True)
class CacheModel:
    """The cache capacity visible to a set of threads."""

    llc_bytes: int
    line_size: int = 64

    @classmethod
    def for_threads(cls, topology: Topology, pus) -> "CacheModel":
        """LLC capacity reachable from the given PUs.

        Sums the distinct last-level caches whose cpuset intersects the
        thread set (two SNCs ⇒ two LLC slices).  Platforms without an L3
        (KNL) fall back to the aggregate L2.
        """
        pu_set = set(pus)
        if not pu_set:
            raise SimulationError("CacheModel needs at least one PU")
        for level in (ObjType.L3, ObjType.L2, ObjType.L1):
            total = 0
            for cache in topology.objs(level):
                if any(cache.cpuset.isset(p) for p in pu_set):
                    total += cache.attrs.get("size", 0)
            if total:
                return cls(llc_bytes=total)
        # No cache objects modelled: a tiny default keeps the math sane.
        return cls(llc_bytes=256 * 1024)


def cache_filter(
    model: CacheModel, access: BufferAccess, cache_share: float
) -> CacheFilterResult:
    """Filter one buffer access through the CPU caches.

    ``cache_share`` is the fraction of the LLC this buffer gets (the
    engine partitions proportionally to working sets).
    """
    if not 0.0 <= cache_share <= 1.0:
        raise SimulationError(f"cache_share out of range: {cache_share}")
    cache_bytes = model.llc_bytes * cache_share
    line = access.line_size
    ws = access.working_set

    if access.pattern in (PatternKind.STREAM, PatternKind.STRIDED):
        # Every touched line is fetched from memory; strided sweeps with
        # stride > line still fetch whole lines per element.
        read_lines = access.bytes_read / line
        if access.pattern is PatternKind.STRIDED and access.granularity < line:
            read_lines = access.bytes_read / access.granularity
        if ws <= cache_bytes:
            # Fits: only the first sweep misses.
            sweeps = max(1.0, (access.bytes_read + access.bytes_written) / max(ws, 1))
            read_traffic = min(access.bytes_read, ws)
            miss_count = read_traffic / line
            hit_fraction = 1.0 - 1.0 / sweeps
        else:
            read_traffic = read_lines * line
            miss_count = read_lines
            hit_fraction = 0.0
        write_traffic = access.bytes_written  # streaming stores, no RFO
        return CacheFilterResult(
            memory_read_bytes=read_traffic,
            memory_write_bytes=write_traffic,
            miss_count=miss_count,
            hit_fraction=hit_fraction,
        )

    # RANDOM / POINTER_CHASE: hit probability = resident fraction, plus
    # the hot-subset hits of power-law access distributions.
    resident = min(1.0, cache_bytes / ws) if ws > 0 else 1.0
    hit = access.hot_fraction + (1.0 - access.hot_fraction) * resident
    # Even a fully-resident working set takes some cold misses; keep a
    # small floor so latency never vanishes entirely.
    hit = min(hit, 0.98)
    n_reads = access.bytes_read / access.granularity
    n_writes = access.bytes_written / access.granularity
    read_misses = n_reads * (1.0 - hit)
    write_misses = n_writes * (1.0 - hit)
    return CacheFilterResult(
        memory_read_bytes=read_misses * line,
        # A random write to a non-resident line moves the line in and the
        # dirty line out eventually: count both directions.
        memory_write_bytes=write_misses * line,
        miss_count=read_misses + write_misses,
        hit_fraction=hit,
    )
