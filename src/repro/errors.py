"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to discriminate the common failure modes (bad platform specification,
out-of-memory on a NUMA node, unknown attribute, ...).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SpecError",
    "TopologyError",
    "UnknownObjectError",
    "AttributeError_",
    "UnknownAttributeError",
    "AttributeFlagError",
    "NoValueError",
    "NoTargetError",
    "AllocationError",
    "CapacityError",
    "PolicyError",
    "MigrationError",
    "TransientMigrationError",
    "FirmwareError",
    "SimulationError",
    "BenchmarkError",
    "ProfilerError",
    "ValidationError",
]


class ReproError(Exception):
    """Base class for every error raised by the library."""


class SpecError(ReproError):
    """A declarative hardware specification is inconsistent."""


class TopologyError(ReproError):
    """The topology tree is malformed or a query cannot be satisfied."""


class UnknownObjectError(TopologyError):
    """A topology object lookup (by type/index) found nothing."""


class AttributeError_(ReproError):
    """Base class for memory-attribute errors.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class UnknownAttributeError(AttributeError_):
    """The requested memory attribute is not registered."""


class AttributeFlagError(AttributeError_):
    """An operation is incompatible with the attribute's flags.

    For example querying a value with an initiator for an attribute that was
    registered without ``NEED_INITIATOR``, or registering a duplicate name.
    """


class NoValueError(AttributeError_):
    """No value is recorded for the requested (target, initiator) pair.

    Mirrors hwloc returning ``-1``/``EINVAL`` from
    ``hwloc_memattr_get_value`` when the platform did not expose the datum.
    """


class NoTargetError(AttributeError_):
    """``get_best_target`` found no target with a value for the attribute."""


class AllocationError(ReproError):
    """The heterogeneous allocator could not satisfy a request."""


class CapacityError(AllocationError):
    """Not enough free capacity on the requested target(s)."""


class PolicyError(ReproError):
    """A NUMA memory policy is invalid or unsupported.

    Includes the Linux restriction discussed in the paper's §VII: the
    *preferred* node must have a lower index than its fallback nodes.
    """


class MigrationError(ReproError):
    """A page/buffer migration failed."""


class TransientMigrationError(MigrationError):
    """A migration failed for a *transient* reason (fault injection, page
    pinned mid-move, racing reclaim).

    Retrying the same request may succeed; callers that care about
    resilience (``repro.resilience``) back off and retry, everyone else
    can treat it as a plain :class:`MigrationError`."""


class FirmwareError(ReproError):
    """Synthetic ACPI table generation or parsing failed."""


class SimulationError(ReproError):
    """The performance simulator was asked to price an impossible phase."""


class BenchmarkError(ReproError):
    """A benchmark run could not be configured or executed."""


class ProfilerError(ReproError):
    """Profile collection or report generation failed."""


class ValidationError(ReproError):
    """An application-level validation (e.g. BFS tree check) failed."""


class ServeError(ReproError):
    """The ``repro-serve`` allocation daemon refused or failed a request."""


class ProtocolError(ServeError):
    """A ``repro-serve`` wire message could not be decoded or validated."""
