"""Unit helpers: bytes, time, bandwidth.

The library stores quantities in canonical units — **bytes**, **seconds**
and **bytes/second** — and converts at the edges.  The helpers here parse
human strings (``"96GB"``, ``"26ns"``, ``"131072MB/s"``) and format
canonical values back for reports, matching the conventions of the paper's
Fig. 5 (capacity in bytes, bandwidth in MB/s, latency in nanoseconds).
"""

from __future__ import annotations

import math
import re

from .errors import SpecError

__all__ = [
    "KB", "MB", "GB", "TB",
    "KiB", "MiB", "GiB", "TiB",
    "NS", "US", "MS",
    "parse_size", "parse_time", "parse_bandwidth",
    "format_size", "format_time", "format_bandwidth",
    "bytes_to_mbps_field", "ns_field",
]

# Decimal (SI) byte multipliers.
KB = 10 ** 3
MB = 10 ** 6
GB = 10 ** 9
TB = 10 ** 12

# Binary (IEC) byte multipliers.
KiB = 2 ** 10
MiB = 2 ** 20
GiB = 2 ** 30
TiB = 2 ** 40

# Time multipliers (canonical unit: seconds).
NS = 1e-9
US = 1e-6
MS = 1e-3

_SIZE_SUFFIXES = {
    "": 1,
    "b": 1,
    "kb": KB, "mb": MB, "gb": GB, "tb": TB,
    "kib": KiB, "mib": MiB, "gib": GiB, "tib": TiB,
    "k": KB, "m": MB, "g": GB, "t": TB,
}

_TIME_SUFFIXES = {
    "s": 1.0,
    "ms": MS,
    "us": US,
    "ns": NS,
}

_NUM_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)\s*([a-zA-Z/]*)\s*$")


def parse_size(value: int | float | str) -> int:
    """Parse a byte quantity into an integer number of bytes.

    Accepts plain numbers (already bytes) or strings with SI/IEC suffixes:
    ``parse_size("96GB") == 96_000_000_000``,
    ``parse_size("4GiB") == 4 * 2**30``.
    """
    if isinstance(value, (int, float)):
        if value < 0:
            raise SpecError(f"negative size: {value!r}")
        return int(value)
    m = _NUM_RE.match(value)
    if not m:
        raise SpecError(f"cannot parse size: {value!r}")
    num, suffix = float(m.group(1)), m.group(2).lower()
    if suffix not in _SIZE_SUFFIXES:
        raise SpecError(f"unknown size suffix {suffix!r} in {value!r}")
    return int(round(num * _SIZE_SUFFIXES[suffix]))


def parse_time(value: int | float | str) -> float:
    """Parse a duration into seconds. ``parse_time("26ns") == 26e-9``."""
    if isinstance(value, (int, float)):
        if value < 0:
            raise SpecError(f"negative time: {value!r}")
        return float(value)
    m = _NUM_RE.match(value)
    if not m:
        raise SpecError(f"cannot parse time: {value!r}")
    num, suffix = float(m.group(1)), m.group(2).lower()
    if suffix not in _TIME_SUFFIXES:
        raise SpecError(f"unknown time suffix {suffix!r} in {value!r}")
    return num * _TIME_SUFFIXES[suffix]


def parse_bandwidth(value: int | float | str) -> float:
    """Parse a bandwidth into bytes/second.

    Strings take the form ``"<number><size-unit>/s"``:
    ``parse_bandwidth("128GB/s") == 128e9``.
    Plain numbers are taken as bytes/second.
    """
    if isinstance(value, (int, float)):
        if value < 0:
            raise SpecError(f"negative bandwidth: {value!r}")
        return float(value)
    m = _NUM_RE.match(value)
    if not m:
        raise SpecError(f"cannot parse bandwidth: {value!r}")
    num, suffix = float(m.group(1)), m.group(2).lower()
    if not suffix.endswith("/s"):
        raise SpecError(f"bandwidth must end in '/s': {value!r}")
    size_suffix = suffix[:-2]
    if size_suffix not in _SIZE_SUFFIXES:
        raise SpecError(f"unknown bandwidth suffix {suffix!r} in {value!r}")
    return num * _SIZE_SUFFIXES[size_suffix]


def format_size(nbytes: int | float, *, binary: bool = False, precision: int = 2) -> str:
    """Format a byte count with the largest sensible suffix.

    ``binary=True`` uses IEC units (GiB), otherwise SI units (GB) as in the
    paper's figures.
    """
    nbytes = float(nbytes)
    if nbytes < 0:
        raise SpecError(f"negative size: {nbytes!r}")
    units = (
        [("TiB", TiB), ("GiB", GiB), ("MiB", MiB), ("KiB", KiB)]
        if binary
        else [("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB)]
    )
    for name, mult in units:
        if nbytes >= mult:
            q = nbytes / mult
            text = f"{q:.{precision}f}".rstrip("0").rstrip(".")
            return f"{text}{name}"
    if nbytes == int(nbytes):
        return f"{int(nbytes)}B"
    text = f"{nbytes:.{precision}f}".rstrip("0").rstrip(".")
    return f"{text}B"


def format_time(seconds: float, *, precision: int = 2) -> str:
    """Format a duration with ns/us/ms/s auto-scaling."""
    if seconds < 0:
        raise SpecError(f"negative time: {seconds!r}")
    for name, mult in [("s", 1.0), ("ms", MS), ("us", US), ("ns", NS)]:
        if seconds >= mult:
            q = seconds / mult
            text = f"{q:.{precision}f}".rstrip("0").rstrip(".")
            return f"{text}{name}"
    return "0s" if seconds == 0 else f"{seconds / NS:.3g}ns"


def format_bandwidth(bps: float, *, precision: int = 2) -> str:
    """Format bytes/second, e.g. ``format_bandwidth(128e9) == "128GB/s"``."""
    return format_size(bps, precision=precision) + "/s"


def bytes_to_mbps_field(bps: float) -> int:
    """Bandwidth in MB/s as an integer, the unit of ``lstopo --memattrs``.

    The paper's Fig. 5 reports ``131072`` for 128 GiB/s-class DRAM: hwloc
    rounds to integral MB/s (decimal MB).
    """
    return int(round(bps / MB))


def ns_field(seconds: float) -> int:
    """Latency in integral nanoseconds, the unit of ``lstopo --memattrs``."""
    return int(round(seconds / NS))


def harmonic_mean(values) -> float:
    """Harmonic mean, the aggregation Graph500 mandates for TEPS.

    Raises :class:`SpecError` on empty input or non-positive entries, which
    would make the harmonic mean meaningless.
    """
    vals = [float(v) for v in values]
    if not vals:
        raise SpecError("harmonic mean of empty sequence")
    if any(v <= 0 for v in vals):
        raise SpecError("harmonic mean requires positive values")
    return len(vals) / math.fsum(1.0 / v for v in vals)


__all__.append("harmonic_mean")
