"""OpenMP predefined memory spaces mapped to attribute criteria.

OpenMP 5.x defines abstract memory spaces; the runtime decides what
storage backs each.  With memory attributes the mapping is one line per
space — precisely the portability argument of the paper: the *space*
names an application need, the *attribute ranking* finds the hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.api import MemAttrs
from ..errors import ReproError
from ..topology.objects import TopoObject

__all__ = [
    "MemorySpace",
    "OMP_DEFAULT_MEM_SPACE",
    "OMP_LARGE_CAP_MEM_SPACE",
    "OMP_HIGH_BW_MEM_SPACE",
    "OMP_LOW_LAT_MEM_SPACE",
    "PREDEFINED_SPACES",
    "space_targets",
]


@dataclass(frozen=True)
class MemorySpace:
    """One OpenMP memory space."""

    name: str
    attribute: str         # criterion passed to the heterogeneous allocator
    description: str = ""


OMP_DEFAULT_MEM_SPACE = MemorySpace(
    name="omp_default_mem_space",
    attribute="Locality",
    description="System default storage: the most local node",
)
OMP_LARGE_CAP_MEM_SPACE = MemorySpace(
    name="omp_large_cap_mem_space",
    attribute="Capacity",
    description="Storage with large capacity (NVDIMM-backed where present)",
)
OMP_HIGH_BW_MEM_SPACE = MemorySpace(
    name="omp_high_bw_mem_space",
    attribute="Bandwidth",
    description="Storage with high bandwidth (HBM/MCDRAM where present)",
)
OMP_LOW_LAT_MEM_SPACE = MemorySpace(
    name="omp_low_lat_mem_space",
    attribute="Latency",
    description="Storage with low latency",
)

PREDEFINED_SPACES: dict[str, MemorySpace] = {
    s.name: s
    for s in (
        OMP_DEFAULT_MEM_SPACE,
        OMP_LARGE_CAP_MEM_SPACE,
        OMP_HIGH_BW_MEM_SPACE,
        OMP_LOW_LAT_MEM_SPACE,
    )
}


def space_targets(
    memattrs: MemAttrs, space: MemorySpace | str, initiator
) -> tuple[TopoObject, ...]:
    """The targets backing a space for an initiator, best first."""
    if isinstance(space, str):
        try:
            space = PREDEFINED_SPACES[space]
        except KeyError:
            raise ReproError(f"unknown memory space {space!r}") from None
    ranked = memattrs.rank_targets(
        space.attribute,
        memattrs.get_local_numanode_objs(initiator),
        initiator if memattrs.get_by_name(space.attribute).needs_initiator else None,
    )
    return tuple(tv.target for tv in ranked)
