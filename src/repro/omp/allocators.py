"""OpenMP allocators with traits, delegating to the heterogeneous allocator.

Implements the subset of the OpenMP allocator-trait model the paper's
integration needs:

* ``fallback = default_mem_fb`` — on failure, retry in the default space
  (the spec's default);
* ``fallback = abort_fb`` — failure raises;
* ``fallback = null_fb`` — failure returns ``None`` (the spec returns a
  null pointer);
* ``partition = interleaved`` — spread across the space's targets
  (mapped to a partial/hybrid allocation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..alloc.allocator import Buffer, HeterogeneousAllocator
from ..errors import AllocationError, CapacityError
from .spaces import MemorySpace, OMP_DEFAULT_MEM_SPACE, PREDEFINED_SPACES

__all__ = ["FallbackMode", "AllocatorTraits", "OmpAllocator", "OmpRuntime"]


class FallbackMode(enum.Enum):
    DEFAULT_MEM_FB = "default_mem_fb"
    ABORT_FB = "abort_fb"
    NULL_FB = "null_fb"


@dataclass(frozen=True)
class AllocatorTraits:
    """The traits we model (OpenMP 5.x table 2.9)."""

    fallback: FallbackMode = FallbackMode.DEFAULT_MEM_FB
    partition_interleaved: bool = False
    alignment: int = 64

    def __post_init__(self) -> None:
        if self.alignment < 1 or self.alignment & (self.alignment - 1):
            raise AllocationError("alignment must be a positive power of two")


@dataclass(frozen=True)
class OmpAllocator:
    """An allocator handle: a space plus traits."""

    space: MemorySpace
    traits: AllocatorTraits = AllocatorTraits()


class OmpRuntime:
    """The runtime side: ``omp_alloc`` / ``omp_free`` over attributes."""

    def __init__(self, allocator: HeterogeneousAllocator) -> None:
        self.hetero = allocator

    def make_allocator(
        self,
        space: MemorySpace | str,
        traits: AllocatorTraits | None = None,
    ) -> OmpAllocator:
        if isinstance(space, str):
            if space not in PREDEFINED_SPACES:
                raise AllocationError(f"unknown memory space {space!r}")
            space = PREDEFINED_SPACES[space]
        return OmpAllocator(space=space, traits=traits or AllocatorTraits())

    def omp_alloc(
        self,
        size: int,
        allocator: OmpAllocator,
        initiator,
        *,
        name: str | None = None,
    ) -> Buffer | None:
        """Allocate per the allocator's space and traits.

        Returns ``None`` under ``null_fb`` when the space (and, for
        ``default_mem_fb``, the default space too) cannot hold the
        request — mirroring ``omp_alloc`` returning a null pointer.
        """
        aligned = -(-size // allocator.traits.alignment) * allocator.traits.alignment
        try:
            return self.hetero.mem_alloc(
                aligned,
                allocator.space.attribute,
                initiator,
                name=name,
                allow_partial=allocator.traits.partition_interleaved,
            )
        except CapacityError:
            mode = allocator.traits.fallback
            if mode is FallbackMode.ABORT_FB:
                raise
            if mode is FallbackMode.NULL_FB:
                return None
            # default_mem_fb: retry in the default space.
            try:
                return self.hetero.mem_alloc(
                    aligned,
                    OMP_DEFAULT_MEM_SPACE.attribute,
                    initiator,
                    name=name,
                    allow_partial=True,
                )
            except CapacityError:
                return None

    def omp_free(self, buffer: Buffer) -> None:
        self.hetero.free(buffer)
