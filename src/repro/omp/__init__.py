"""OpenMP 5.x memory spaces and allocators over memory attributes.

The paper notes its attributes "directly provide support for implementing
the corresponding OpenMP 5.0 allocators and memory spaces such as
``omp_high_bw_mem_space``" (§IV) and that the authors "are working with
some OpenMP developers to leverage our work into runtimes" (§VIII).  This
package is that integration: each predefined memory space maps to an
attribute criterion, and OpenMP allocators with traits (fallback,
partition) delegate to the heterogeneous allocator.
"""

from .spaces import (
    MemorySpace,
    OMP_DEFAULT_MEM_SPACE,
    OMP_LARGE_CAP_MEM_SPACE,
    OMP_HIGH_BW_MEM_SPACE,
    OMP_LOW_LAT_MEM_SPACE,
    PREDEFINED_SPACES,
    space_targets,
)
from .allocators import AllocatorTraits, FallbackMode, OmpAllocator, OmpRuntime

__all__ = [
    "MemorySpace",
    "OMP_DEFAULT_MEM_SPACE",
    "OMP_LARGE_CAP_MEM_SPACE",
    "OMP_HIGH_BW_MEM_SPACE",
    "OMP_LOW_LAT_MEM_SPACE",
    "PREDEFINED_SPACES",
    "space_targets",
    "AllocatorTraits",
    "FallbackMode",
    "OmpAllocator",
    "OmpRuntime",
]
