"""Tracing spans with an injectable clock.

:class:`Tracer` records a tree of wall-time spans::

    with tracer.span("mem_alloc", buffer="parent", attribute="Latency"):
        with tracer.span("rank_for"):
            ...

Spans are context managers, so exits always match the innermost open
span — including when the body raises (``__exit__`` closes the span and
marks it ``status="error"`` before the exception propagates).  The
property suite asserts the resulting intervals are well-nested.

The clock is injectable (any zero-argument callable returning seconds)
so tests get deterministic timestamps; the default is
:func:`time.perf_counter`.

Finished spans export as JSONL (one JSON object per line, our archival
format) or as Chrome ``trace_event`` JSON (complete ``"ph": "X"`` events,
loadable in ``chrome://tracing`` / Perfetto) — see :mod:`repro.obs.export`
helpers re-exported here.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = ["SpanRecord", "Tracer", "to_jsonl", "to_chrome_trace"]


@dataclass
class SpanRecord:
    """One (possibly still open) span."""

    span_id: int
    name: str
    start: float
    parent_id: int | None
    depth: int
    fields: dict = field(default_factory=dict)
    end: float | None = None
    status: str = "ok"            # "ok" | "error"

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} still open")
        return self.end - self.start

    def as_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "status": self.status,
            "fields": self.fields,
        }


class _SpanContext:
    """Context manager binding one :class:`SpanRecord` to a tracer stack."""

    __slots__ = ("_tracer", "_record")

    def __init__(self, tracer: Tracer, record: SpanRecord) -> None:
        self._tracer = tracer
        self._record = record

    def __enter__(self) -> SpanRecord:
        return self._record

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._close(self._record, error=exc_type is not None)
        return False  # never swallow


class _SuppressedSpan:
    """Context manager returned for sampled-out span trees.

    One instance per tracer; entering hands back a shared throwaway
    record (callers may still ``fields.update`` it — the writes are
    discarded), and exits keep the tracer's suppression depth balanced
    even when the body raises.
    """

    __slots__ = ("_tracer", "_record")

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer
        self._record = SpanRecord(
            span_id=0, name="<sampled-out>", start=0.0, parent_id=None, depth=0
        )

    def __enter__(self) -> SpanRecord:
        return self._record

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._suppress -= 1
        return False  # never swallow


class Tracer:
    """Records nested spans; single stack per tracer.

    A tracer is cheap to construct, and :func:`repro.obs.reset` swaps in
    a fresh one — spans therefore never leak between tests.

    ``sample_every=N`` keeps only every N-th *root* span tree: the
    sampling decision is taken once at the root, and the whole tree is
    either recorded or suppressed (all-or-nothing, so recorded traces
    stay well-nested); ``sampled_out`` counts suppressed roots.

    ``ring_capacity=C`` swaps the unbounded span list for a preallocated
    ring (a ``deque(maxlen=C)``): appending past capacity evicts the
    oldest span — whole records, never partial ones, so the retained
    spans remain pairwise well-nested — and ``dropped_spans`` counts
    evictions.
    """

    def __init__(
        self,
        clock=None,
        *,
        sample_every: int = 1,
        ring_capacity: int | None = None,
    ) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if ring_capacity is not None and ring_capacity < 1:
            raise ValueError("ring_capacity must be >= 1")
        self.clock = clock if clock is not None else time.perf_counter
        self.sample_every = sample_every
        self.ring_capacity = ring_capacity
        self.records: list[SpanRecord] | deque[SpanRecord] = (
            [] if ring_capacity is None else deque(maxlen=ring_capacity)
        )
        self.dropped_spans = 0
        self.sampled_out = 0
        self._stack: list[SpanRecord] = []
        self._next_id = 1
        self._root_tick = 0
        self._suppress = 0
        self._null_span = _SuppressedSpan(self)

    # ------------------------------------------------------------------
    def span(self, name: str, **fields):
        """Open a span; use as a context manager."""
        if self._suppress:
            self._suppress += 1
            return self._null_span
        if not self._stack and self.sample_every > 1:
            tick = self._root_tick
            self._root_tick = tick + 1
            if tick % self.sample_every:
                self.sampled_out += 1
                self._suppress = 1
                return self._null_span
        parent = self._stack[-1] if self._stack else None
        record = SpanRecord(
            span_id=self._next_id,
            name=name,
            start=self.clock(),
            parent_id=None if parent is None else parent.span_id,
            depth=len(self._stack),
            fields=dict(fields),
        )
        self._next_id += 1
        records = self.records
        if self.ring_capacity is not None and len(records) == self.ring_capacity:
            self.dropped_spans += 1
        records.append(record)
        self._stack.append(record)
        return _SpanContext(self, record)

    def annotate(self, **fields) -> None:
        """Attach fields to the innermost open span (no-op at top level)."""
        if self._stack:
            self._stack[-1].fields.update(fields)

    def _close(self, record: SpanRecord, *, error: bool) -> None:
        # Exits must match the innermost open span.  A mismatch means a
        # caller closed spans out of order (impossible through the
        # context-manager API); close intervening spans as errors so the
        # trace stays well-nested rather than corrupt.
        while self._stack:
            top = self._stack.pop()
            if top is record:
                break
            top.end = self.clock()
            top.status = "error"
        record.end = self.clock()
        if error:
            record.status = "error"

    # ------------------------------------------------------------------
    @property
    def open_spans(self) -> tuple[SpanRecord, ...]:
        return tuple(self._stack)

    def finished(self) -> tuple[SpanRecord, ...]:
        return tuple(r for r in self.records if r.end is not None)


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
def to_jsonl(tracer: Tracer) -> str:
    """One JSON object per finished span, in start order."""
    return "\n".join(
        json.dumps(r.as_dict(), sort_keys=True) for r in tracer.finished()
    ) + ("\n" if tracer.finished() else "")


def to_chrome_trace(tracer: Tracer, *, pid: int = 1, tid: int = 1) -> dict:
    """Chrome ``trace_event`` document (complete events, microseconds)."""
    events = [
        {
            "name": r.name,
            "cat": "repro",
            "ph": "X",
            "ts": r.start * 1e6,
            "dur": r.duration * 1e6,
            "pid": pid,
            "tid": tid,
            "args": {**r.fields, "status": r.status, "depth": r.depth},
        }
        for r in tracer.finished()
    ]
    return {"traceEvents": events, "displayTimeUnit": "ms"}
