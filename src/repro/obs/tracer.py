"""Tracing spans with an injectable clock.

:class:`Tracer` records a tree of wall-time spans::

    with tracer.span("mem_alloc", buffer="parent", attribute="Latency"):
        with tracer.span("rank_for"):
            ...

Spans are context managers, so exits always match the innermost open
span — including when the body raises (``__exit__`` closes the span and
marks it ``status="error"`` before the exception propagates).  The
property suite asserts the resulting intervals are well-nested.

The clock is injectable (any zero-argument callable returning seconds)
so tests get deterministic timestamps; the default is
:func:`time.perf_counter`.

Finished spans export as JSONL (one JSON object per line, our archival
format) or as Chrome ``trace_event`` JSON (complete ``"ph": "X"`` events,
loadable in ``chrome://tracing`` / Perfetto) — see :mod:`repro.obs.export`
helpers re-exported here.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

__all__ = ["SpanRecord", "Tracer", "to_jsonl", "to_chrome_trace"]


@dataclass
class SpanRecord:
    """One (possibly still open) span."""

    span_id: int
    name: str
    start: float
    parent_id: int | None
    depth: int
    fields: dict = field(default_factory=dict)
    end: float | None = None
    status: str = "ok"            # "ok" | "error"

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} still open")
        return self.end - self.start

    def as_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "status": self.status,
            "fields": self.fields,
        }


class _SpanContext:
    """Context manager binding one :class:`SpanRecord` to a tracer stack."""

    __slots__ = ("_tracer", "_record")

    def __init__(self, tracer: Tracer, record: SpanRecord) -> None:
        self._tracer = tracer
        self._record = record

    def __enter__(self) -> SpanRecord:
        return self._record

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._close(self._record, error=exc_type is not None)
        return False  # never swallow


class Tracer:
    """Records nested spans; single stack per tracer.

    A tracer is cheap to construct, and :func:`repro.obs.reset` swaps in
    a fresh one — spans therefore never leak between tests.
    """

    def __init__(self, clock=None) -> None:
        self.clock = clock if clock is not None else time.perf_counter
        self.records: list[SpanRecord] = []
        self._stack: list[SpanRecord] = []
        self._next_id = 1

    # ------------------------------------------------------------------
    def span(self, name: str, **fields) -> _SpanContext:
        """Open a span; use as a context manager."""
        parent = self._stack[-1] if self._stack else None
        record = SpanRecord(
            span_id=self._next_id,
            name=name,
            start=self.clock(),
            parent_id=None if parent is None else parent.span_id,
            depth=len(self._stack),
            fields=dict(fields),
        )
        self._next_id += 1
        self.records.append(record)
        self._stack.append(record)
        return _SpanContext(self, record)

    def annotate(self, **fields) -> None:
        """Attach fields to the innermost open span (no-op at top level)."""
        if self._stack:
            self._stack[-1].fields.update(fields)

    def _close(self, record: SpanRecord, *, error: bool) -> None:
        # Exits must match the innermost open span.  A mismatch means a
        # caller closed spans out of order (impossible through the
        # context-manager API); close intervening spans as errors so the
        # trace stays well-nested rather than corrupt.
        while self._stack:
            top = self._stack.pop()
            if top is record:
                break
            top.end = self.clock()
            top.status = "error"
        record.end = self.clock()
        if error:
            record.status = "error"

    # ------------------------------------------------------------------
    @property
    def open_spans(self) -> tuple[SpanRecord, ...]:
        return tuple(self._stack)

    def finished(self) -> tuple[SpanRecord, ...]:
        return tuple(r for r in self.records if r.end is not None)


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
def to_jsonl(tracer: Tracer) -> str:
    """One JSON object per finished span, in start order."""
    return "\n".join(
        json.dumps(r.as_dict(), sort_keys=True) for r in tracer.finished()
    ) + ("\n" if tracer.finished() else "")


def to_chrome_trace(tracer: Tracer, *, pid: int = 1, tid: int = 1) -> dict:
    """Chrome ``trace_event`` document (complete events, microseconds)."""
    events = [
        {
            "name": r.name,
            "cat": "repro",
            "ph": "X",
            "ts": r.start * 1e6,
            "dur": r.duration * 1e6,
            "pid": pid,
            "tid": tid,
            "args": {**r.fields, "status": r.status, "depth": r.depth},
        }
        for r in tracer.finished()
    ]
    return {"traceEvents": events, "displayTimeUnit": "ms"}
