"""Metrics registry: counters, gauges and histograms.

The registry is the numeric half of :mod:`repro.obs`.  Instruments are
named (dotted names, ``alloc.placed``) and optionally labeled
(``node=2, attribute="Bandwidth"``); each distinct (name, labels) pair is
one time series.  Invariants the property tests pin down:

* **counters are monotone** — ``inc`` rejects negative deltas, so a
  counter's value never decreases;
* **histogram conservation** — ``sum`` equals the exact sum of every
  observation fed to ``observe`` (and ``count`` their number);
* rendering (:func:`render_metrics`, Prometheus text format) never
  mutates the instruments it renders.

Everything here is deliberately dependency-free: the registry must be
importable from the lowest layers (``repro.core.querycache``) without
dragging the rest of the package in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "CounterBatch",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_metrics",
    "DEFAULT_BUCKETS",
]

#: Default histogram bucket upper bounds (generic powers-of-two-ish scale
#: suitable for ranks, depths and small counts; time-valued histograms
#: pass their own bounds).
DEFAULT_BUCKETS: tuple[float, ...] = (0, 1, 2, 4, 8, 16, 32, 64)

LabelKey = tuple[tuple[str, object], ...]


def _label_key(labels: dict[str, object]) -> LabelKey:
    # Lazy label formatting: values stay raw here (no per-call str()) and
    # are stringified only at export time (as_dict / render_metrics).
    # Kwargs keys are unique, so the sort never compares two values.
    if not labels:
        return ()
    return tuple(sorted(labels.items()))


def _labels_as_strs(labels: LabelKey) -> tuple[tuple[str, str], ...]:
    return tuple((k, str(v)) for k, v in labels)


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    labels: LabelKey = ()
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount


@dataclass
class Gauge:
    """A value that can go up and down (last write wins)."""

    name: str
    labels: LabelKey = ()
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta


@dataclass
class Histogram:
    """Cumulative-bucket histogram with an exact sum.

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``; a final
    implicit +Inf bucket catches the rest.  ``sum`` accumulates the raw
    observations so ``sum == Σ observe(v)`` holds exactly (the property
    suite checks this with float-exact arithmetic on integer inputs).
    """

    name: str
    labels: LabelKey = ()
    bounds: tuple[float, ...] = DEFAULT_BUCKETS
    bucket_counts: list[int] = field(default_factory=list)
    count: int = 0
    sum: float = 0.0

    def __post_init__(self) -> None:
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram {self.name}: bounds must be sorted")
        if not self.bucket_counts:
            self.bucket_counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """All instruments of one process, keyed by (name, labels).

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    for a (name, labels) pair creates the instrument, later calls return
    the same object.  A name is bound to one instrument kind; reusing it
    with another kind raises.
    """

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, LabelKey], object] = {}
        self._kinds: dict[str, type] = {}

    def _get(self, cls, name: str, labels: dict, **kwargs):
        bound = self._kinds.setdefault(name, cls)
        if bound is not cls:
            raise ValueError(
                f"metric {name!r} already registered as {bound.__name__}"
            )
        key = (name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls(name=name, labels=key[1], **kwargs)
            self._instruments[key] = inst
        return inst

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, *, bounds: tuple[float, ...] = DEFAULT_BUCKETS, **labels
    ) -> Histogram:
        return self._get(Histogram, name, labels, bounds=bounds)

    # ------------------------------------------------------------------
    def instruments(self) -> tuple[object, ...]:
        """Every instrument, sorted by (name, labels) for stable output."""
        # Labels keep raw (possibly mixed-type) values; sort on their
        # string form so e.g. node=2 and node="split" series compare.
        return tuple(
            self._instruments[k]
            for k in sorted(
                self._instruments,
                key=lambda k: (k[0], _labels_as_strs(k[1])),
            )
        )

    def value(self, name: str, **labels) -> float:
        """The current value of a counter/gauge (0.0 when never touched)."""
        inst = self._instruments.get((name, _label_key(labels)))
        if inst is None:
            return 0.0
        return inst.value  # type: ignore[union-attr]

    def as_dict(self) -> dict:
        """Plain-data snapshot (JSON-safe), for archiving and tests."""
        out: dict[str, list] = {}
        for inst in self.instruments():
            entry: dict[str, object] = {
                "labels": dict(_labels_as_strs(inst.labels))  # type: ignore[attr-defined]
            }
            if isinstance(inst, Histogram):
                entry.update(
                    kind="histogram",
                    count=inst.count,
                    sum=inst.sum,
                    bounds=list(inst.bounds),
                    buckets=list(inst.bucket_counts),
                )
            elif isinstance(inst, Gauge):
                entry.update(kind="gauge", value=inst.value)
            else:
                entry.update(kind="counter", value=inst.value)  # type: ignore[union-attr]
            out.setdefault(inst.name, []).append(entry)  # type: ignore[attr-defined]
        return out


class CounterBatch:
    """Local accumulation of counter increments, applied in one flush.

    Hot loops that would otherwise resolve and tick the same counters per
    iteration accumulate into a plain dict (one hash per ``inc``) and
    apply the sums in a single registry pass::

        batch = CounterBatch(OBS.metrics)
        for item in work:
            batch.inc("search.leaves_priced")
        batch.flush()

    ``flush`` is idempotent (the accumulator empties); a batch may be
    reused afterwards.  Not flushing loses the increments — use it where
    there is a natural end-of-loop flush point.
    """

    __slots__ = ("_registry", "_acc")

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry
        self._acc: dict[tuple[str, LabelKey], float] = {}

    def inc(self, name: str, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counter {name} cannot decrease (inc {amount})")
        key = (name, _label_key(labels))
        self._acc[key] = self._acc.get(key, 0.0) + amount

    def flush(self) -> None:
        acc, self._acc = self._acc, {}
        for (name, labels), amount in acc.items():
            self._registry._get(Counter, name, dict(labels)).inc(amount)


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _prom_labels(labels: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = _labels_as_strs(labels) + extra
    if not pairs:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + body + "}"


def render_metrics(registry: MetricsRegistry) -> str:
    """Prometheus-style text exposition of every instrument."""
    lines: list[str] = []
    seen_types: set[str] = set()
    for inst in registry.instruments():
        name = _prom_name(inst.name)  # type: ignore[attr-defined]
        if isinstance(inst, Histogram):
            if name not in seen_types:
                lines.append(f"# TYPE {name} histogram")
                seen_types.add(name)
            cumulative = 0
            for bound, count in zip(inst.bounds, inst.bucket_counts):
                cumulative += count
                lines.append(
                    f"{name}_bucket"
                    f"{_prom_labels(inst.labels, (('le', repr(float(bound))),))}"
                    f" {cumulative}"
                )
            lines.append(
                f"{name}_bucket{_prom_labels(inst.labels, (('le', '+Inf'),))}"
                f" {inst.count}"
            )
            lines.append(f"{name}_sum{_prom_labels(inst.labels)} {inst.sum}")
            lines.append(f"{name}_count{_prom_labels(inst.labels)} {inst.count}")
        elif isinstance(inst, Gauge):
            if name not in seen_types:
                lines.append(f"# TYPE {name} gauge")
                seen_types.add(name)
            lines.append(f"{name}{_prom_labels(inst.labels)} {inst.value}")
        else:
            if name not in seen_types:
                lines.append(f"# TYPE {name}_total counter")
                seen_types.add(name)
            lines.append(
                f"{name}_total{_prom_labels(inst.labels)} {inst.value}"  # type: ignore[attr-defined]
            )
    return "\n".join(lines) + ("\n" if lines else "")
