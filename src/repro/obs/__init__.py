"""repro.obs — runtime observability: tracing spans + metrics registry.

The paper's workflow (profile → attribute → place) depends on *seeing*
what the memory subsystem is doing.  This package is the runtime
telemetry layer: a :class:`~repro.obs.tracer.Tracer` of nested wall-time
spans and a :class:`~repro.obs.metrics.MetricsRegistry` of counters,
gauges and histograms, threaded through the allocator, the query cache,
the pricing engine, the placement search, the kernel layer, and the
online guidance loop (``pebs.*`` / ``guidance.*`` counters).

**The cardinal rule: observation never perturbs the system.**  Every
instrumentation site is behind the process-global :data:`OBS` guard::

    from ..obs import OBS
    ...
    if OBS.enabled:                      # single attribute check when off
        OBS.metrics.counter("alloc.placed", node=n).inc()

With ``OBS.enabled`` false (the default) the only cost on any hot path is
that one attribute check; with it true, telemetry is recorded but the
decisions taken — placements, rankings, search optima — are bit-identical
(``tests/obs/test_differential.py`` proves this over hundreds of seeded
random machines).

Module-level helpers:

* :func:`enable` / :func:`disable` — flip the global guard;
* :func:`reset` — fresh tracer + registry (and disabled), for isolation;
* :func:`enabled` — the current state.

Exporters: JSONL (:func:`~repro.obs.tracer.to_jsonl`), Chrome
``trace_event`` (:func:`~repro.obs.tracer.to_chrome_trace`; view in
``chrome://tracing``), Prometheus text
(:func:`~repro.obs.metrics.render_metrics`).  The ``repro-trace`` CLI
converts and summarizes archived traces; ``repro-experiments`` and
``repro-search`` grow ``--trace``/``--metrics`` flags that write them.
"""

from __future__ import annotations

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    CounterBatch,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_metrics,
)
from .tracer import SpanRecord, Tracer, to_chrome_trace, to_jsonl

__all__ = [
    "OBS",
    "ObsState",
    "enable",
    "disable",
    "enabled",
    "reset",
    "Counter",
    "CounterBatch",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_metrics",
    "DEFAULT_BUCKETS",
    "SpanRecord",
    "Tracer",
    "to_jsonl",
    "to_chrome_trace",
]


class ObsState:
    """The process-global observability switchboard.

    ``enabled`` is read directly on hot paths — keep it a plain
    attribute.  ``tracer`` and ``metrics`` are replaced wholesale by
    :meth:`reset`, so holding the :data:`OBS` object (not its members)
    is the supported pattern for instrumented code.

    ``sample_every``/``hot_countdown`` implement the hot-path sampling
    gate: instrumented hot sites (``mem_alloc``) record telemetry only on
    every ``sample_every``-th request and run untraced in between —
    ``hot_countdown`` is the per-site skip budget they decrement inline.
    The default of 1 records everything (the historical behavior).
    """

    __slots__ = ("enabled", "tracer", "metrics", "sample_every", "hot_countdown")

    def __init__(self) -> None:
        self.enabled = False
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.sample_every = 1
        self.hot_countdown = 0

    def reset(self, *, clock=None) -> None:
        """Fresh tracer + registry, guard off (test isolation)."""
        self.enabled = False
        self.tracer = Tracer(clock=clock)
        self.metrics = MetricsRegistry()
        self.sample_every = 1
        self.hot_countdown = 0


#: The one switchboard every instrumented module imports.
OBS = ObsState()


def enable(
    *,
    clock=None,
    sample_every: int = 1,
    ring_capacity: int | None = None,
) -> ObsState:
    """Turn telemetry on (optionally with a deterministic clock).

    ``sample_every=N`` records only every N-th hot-path request (spans
    *and* per-request metrics; cold paths stay fully recorded) — the
    always-on production mode.  ``ring_capacity=C`` bounds the span store
    to the most recent C spans (oldest evicted, counted in
    ``tracer.dropped_spans``) so long runs cannot grow memory without
    bound.  Defaults preserve the record-everything behavior.
    """
    if sample_every < 1:
        raise ValueError("sample_every must be >= 1")
    if clock is not None or ring_capacity is not None:
        OBS.tracer = Tracer(clock=clock, ring_capacity=ring_capacity)
    OBS.sample_every = sample_every
    OBS.hot_countdown = 0
    OBS.enabled = True
    return OBS


def disable() -> ObsState:
    """Turn telemetry off (recorded data is kept until :func:`reset`)."""
    OBS.enabled = False
    return OBS


def enabled() -> bool:
    return OBS.enabled


def reset(*, clock=None) -> ObsState:
    """Disable and drop all recorded spans and metrics."""
    OBS.reset(clock=clock)
    return OBS
