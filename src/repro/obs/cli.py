"""``repro-trace`` — inspect and convert archived trace files.

Traces land on disk as JSONL (one span per line, the format
:func:`repro.obs.tracer.to_jsonl` writes and ``repro-experiments
--trace`` archives).  This tool turns them into Chrome ``trace_event``
JSON for ``chrome://tracing`` / Perfetto, or prints a per-span-name
summary (count, total/mean/max duration) for a quick look without a
browser.
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = [
    "trace_main",
    "build_trace_parser",
    "load_jsonl",
    "summarize",
    "add_obs_arguments",
    "start_obs",
    "finish_obs",
]


def add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--trace``/``--metrics`` flags to a CLI parser."""
    group = parser.add_argument_group(
        "observability", "runtime tracing and metrics (repro.obs)"
    )
    group.add_argument(
        "--trace",
        metavar="OUT.jsonl",
        default=None,
        help="record tracing spans and write them as JSONL "
        "(convert with: repro-trace OUT.jsonl --chrome trace.json)",
    )
    group.add_argument(
        "--metrics",
        metavar="OUT.prom",
        nargs="?",
        const="-",
        default=None,
        help="record metrics and dump them Prometheus-style "
        "('-' or no value: stdout)",
    )
    group.add_argument(
        "--obs-sample-every",
        type=int,
        metavar="N",
        default=1,
        help="record hot-path telemetry for only every N-th request "
        "(default 1: record everything)",
    )
    group.add_argument(
        "--obs-ring-capacity",
        type=int,
        metavar="C",
        default=None,
        help="bound the span store to the most recent C spans "
        "(oldest evicted and counted; default: unbounded)",
    )


def start_obs(args: argparse.Namespace) -> bool:
    """Enable telemetry when either flag was passed; returns whether."""
    from . import enable

    if args.trace is None and args.metrics is None:
        return False
    enable(
        sample_every=getattr(args, "obs_sample_every", 1),
        ring_capacity=getattr(args, "obs_ring_capacity", None),
    )
    return True


def finish_obs(args: argparse.Namespace) -> None:
    """Write out whatever the flags asked for (call once, at exit)."""
    from . import OBS, render_metrics, to_jsonl

    if args.trace is not None:
        with open(args.trace, "w", encoding="utf-8") as fh:
            fh.write(to_jsonl(OBS.tracer))
        dropped = ""
        if OBS.tracer.dropped_spans:
            dropped = f" ({OBS.tracer.dropped_spans} evicted by the ring)"
        if OBS.tracer.sampled_out:
            dropped += f" ({OBS.tracer.sampled_out} roots sampled out)"
        print(
            f"trace: {len(OBS.tracer.finished())} spans -> {args.trace}"
            f"{dropped} "
            f"(repro-trace {args.trace} --chrome out.json for chrome://tracing)"
        )
    if args.metrics is not None:
        text = render_metrics(OBS.metrics)
        if args.metrics == "-":
            print("\nmetrics:")
            print(text, end="")
        else:
            with open(args.metrics, "w", encoding="utf-8") as fh:
                fh.write(text)
            print(f"metrics: -> {args.metrics}")


def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Summarize a JSONL trace or convert it to Chrome "
        "trace_event format",
    )
    parser.add_argument("trace", help="JSONL trace file (from --trace runs)")
    parser.add_argument(
        "--chrome",
        metavar="OUT.json",
        default=None,
        help="write a Chrome trace_event JSON file (chrome://tracing)",
    )
    parser.add_argument(
        "--summary",
        action="store_true",
        help="print per-span-name aggregate durations (default when no "
        "--chrome output is requested)",
    )
    return parser


def load_jsonl(path: str) -> list[dict]:
    """Parse a JSONL trace file into span dicts (skipping blank lines)."""
    spans = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                spans.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise SystemExit(f"{path}:{lineno}: not JSON: {exc}") from None
    return spans


def spans_to_chrome(spans: list[dict], *, pid: int = 1, tid: int = 1) -> dict:
    """Chrome trace_event document from archived span dicts."""
    events = []
    for span in spans:
        if span.get("end") is None:
            continue
        events.append(
            {
                "name": span["name"],
                "cat": "repro",
                "ph": "X",
                "ts": span["start"] * 1e6,
                "dur": (span["end"] - span["start"]) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": {
                    **span.get("fields", {}),
                    "status": span.get("status", "ok"),
                    "depth": span.get("depth", 0),
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def summarize(spans: list[dict]) -> str:
    """Per-span-name table: count, total / mean / max duration."""
    agg: dict[str, list[float]] = {}
    errors: dict[str, int] = {}
    for span in spans:
        if span.get("end") is None:
            continue
        dur = span["end"] - span["start"]
        agg.setdefault(span["name"], []).append(dur)
        if span.get("status") == "error":
            errors[span["name"]] = errors.get(span["name"], 0) + 1
    lines = [
        f"{'span':<24} {'count':>7} {'total':>11} {'mean':>11} "
        f"{'max':>11} {'errors':>7}"
    ]
    for name in sorted(agg):
        durs = agg[name]
        lines.append(
            f"{name:<24} {len(durs):>7} {sum(durs) * 1e3:>9.3f}ms "
            f"{sum(durs) / len(durs) * 1e3:>9.3f}ms "
            f"{max(durs) * 1e3:>9.3f}ms {errors.get(name, 0):>7}"
        )
    if len(lines) == 1:
        lines.append("(no finished spans)")
    return "\n".join(lines)


def trace_main(argv: list[str] | None = None) -> int:
    args = build_trace_parser().parse_args(argv)
    spans = load_jsonl(args.trace)
    did_something = False
    if args.chrome:
        doc = spans_to_chrome(spans)
        with open(args.chrome, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1)
            fh.write("\n")
        print(f"wrote {len(doc['traceEvents'])} events to {args.chrome}")
        did_something = True
    if args.summary or not did_something:
        print(summarize(spans))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(trace_main())
