"""Standalone experiment runner: regenerate the paper's tables & figures
without pytest.

``repro-experiments`` (or ``python -m repro.experiments``) prints any of
the paper's artifacts in its layout::

    repro-experiments table2 table3
    repro-experiments all

The same underlying code paths power the assertion-carrying benchmarks in
``benchmarks/``; this module is the human-facing harness.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from . import quick_setup
from .apps import StreamApp
from .apps.graph500 import Graph500Config, Graph500Driver, TrafficModel
from .core import MemAttrs, discover_from_sysfs, render_memattrs
from .errors import CapacityError
from .firmware import build_sysfs
from .hw import get_platform
from .obs.cli import add_obs_arguments, finish_obs, start_obs
from .profiler import analyze_run, object_analysis, render_object_report, render_summary_table
from .sensitivity import search_placements
from .sim import BufferAccess, KernelPhase, PatternKind, Placement
from .topology import build_topology, render_lstopo
from .units import GiB

__all__ = ["main", "EXPERIMENTS"]

_XEON_PUS = tuple(range(40))
_KNL_PUS = tuple(range(64))


def figs_topology() -> str:
    """Figs. 1-3: the three platform renderings."""
    parts = []
    for title, name, kwargs in (
        ("Fig. 1 — KNL SNC4/Hybrid50", "knl-snc4-hybrid50", {}),
        ("Fig. 2 — dual Xeon 6230 + NVDIMM (1LM, SNC2)",
         "xeon-cascadelake-1lm", {"snc": 2}),
        ("Fig. 3 — fictitious four-kind platform", "fictitious-four-kind", {}),
    ):
        topo = build_topology(get_platform(name, **kwargs))
        parts.append(f"### {title}\n{render_lstopo(topo)}")
    return "\n\n".join(parts)


def fig5() -> str:
    """Fig. 5: lstopo --memattrs on the Fig. 2 Xeon."""
    topo = build_topology(get_platform("xeon-cascadelake-1lm", snc=2))
    memattrs = MemAttrs(topo)
    discover_from_sysfs(memattrs, build_sysfs(topo.machine_spec))
    return render_memattrs(memattrs, only=("Capacity", "Bandwidth", "Latency"))


def table2() -> str:
    """Table II: Graph500 TEPS (e+8) under whole-process binding."""
    lines = ["(a) Xeon, 16 processes, local DRAM vs local NVDIMM"]
    xeon = quick_setup("xeon-cascadelake-1lm")
    driver = Graph500Driver(xeon.engine)
    lines.append(f"{'Graph Size':>12} | {'DRAM':>7} | {'NVDIMM':>7}")
    for scale in (23, 24, 25, 26, 27):
        model = TrafficModel.analytic(scale)
        cfg = Graph500Config(scale=scale, nroots=4, threads=16)
        dram = driver.run_model(
            cfg, driver.placement_all_on(0, model), pus=_XEON_PUS, model=model
        ).harmonic_teps / 1e8
        nvd = driver.run_model(
            cfg, driver.placement_all_on(2, model), pus=_XEON_PUS, model=model
        ).harmonic_teps / 1e8
        size = 16 * (1 << scale) * 16 / 1e9
        lines.append(f"{size:>10.2f}GB | {dram:>7.3f} | {nvd:>7.3f}")

    lines.append("")
    lines.append("(b) KNL, 16 processes on one SubNUMA cluster, HBM vs DRAM")
    knl = quick_setup("knl-snc4-flat")
    driver = Graph500Driver(knl.engine)
    lines.append(f"{'Graph Size':>12} | {'HBM':>7} | {'DRAM':>7}")
    for scale in (23, 24):
        model = TrafficModel.analytic(scale)
        cfg = Graph500Config(scale=scale, nroots=4, threads=16)
        hbm = driver.run_model(
            cfg, driver.placement_all_on(4, model), pus=_KNL_PUS, model=model
        ).harmonic_teps / 1e8
        dram = driver.run_model(
            cfg, driver.placement_all_on(0, model), pus=_KNL_PUS, model=model
        ).harmonic_teps / 1e8
        size = 16 * (1 << scale) * 16 / 1e9
        lines.append(f"{size:>10.2f}GB | {hbm:>7.3f} | {dram:>7.3f}")
    return "\n".join(lines)


def _triad_cell(platform, gib, criterion, threads, pus, strict=False):
    setup = quick_setup(platform)
    app = StreamApp(setup.engine, setup.allocator)
    try:
        result = app.run(
            int(gib * GiB), criterion, 0, threads=threads, pus=pus,
            strict=strict,
        )
        return f"{result.triad_gbps:9.2f}" + ("*" if result.fallback_used else " ")
    except CapacityError:
        return f"{'OOM':>9} "


def table3() -> str:
    """Table III: STREAM Triad GB/s per criterion and size."""
    lines = ["(a) Xeon, 20 threads (Latency column uses strict binding)"]
    lines.append(f"{'Total':>9} | {'Capacity':>10} | {'Latency':>10}")
    for gib in (22.4, 89.4, 223.5):
        cap = _triad_cell("xeon-cascadelake-1lm", gib, "Capacity", 20, _XEON_PUS)
        lat = _triad_cell(
            "xeon-cascadelake-1lm", gib, "Latency", 20, _XEON_PUS, strict=True
        )
        lines.append(f"{gib:>7.1f}Gi | {cap} | {lat}")
    lines.append("")
    lines.append("(b) KNL, 16 threads on one SubNUMA cluster")
    lines.append(f"{'Total':>9} | {'Bandwidth':>10} | {'Latency':>10}")
    for gib in (1.1, 3.4, 17.9):
        bw = _triad_cell("knl-snc4-flat", gib, "Bandwidth", 16, _KNL_PUS)
        lat = _triad_cell("knl-snc4-flat", gib, "Latency", 16, _KNL_PUS)
        lines.append(f"{gib:>7.1f}Gi | {bw} | {lat}")
    lines.append("(* = capacity fallback)")
    return "\n".join(lines)


def _stream_phase(total_bytes: int, threads: int) -> KernelPhase:
    arr = total_bytes // 3
    return KernelPhase(
        name="triad",
        threads=threads,
        accesses=(
            BufferAccess(buffer="a", pattern=PatternKind.STREAM,
                         bytes_written=arr, working_set=arr),
            BufferAccess(buffer="b", pattern=PatternKind.STREAM,
                         bytes_read=arr, working_set=arr),
            BufferAccess(buffer="c", pattern=PatternKind.STREAM,
                         bytes_read=arr, working_set=arr),
        ),
    )


def table4() -> str:
    """Table IV: the VTune-style Memory Access summary."""
    setup = quick_setup("xeon-cascadelake-1lm")
    driver = Graph500Driver(setup.engine)
    model = TrafficModel.analytic(23)
    cfg = Graph500Config(scale=23, nroots=1, threads=16)
    rows = {}
    for label, node in (("Graph500 / DRAM", 0), ("Graph500 / NVDIMM", 2)):
        run = setup.engine.price_run(
            model.phases(cfg), driver.placement_all_on(node, model),
            pus=_XEON_PUS,
        )
        rows[label] = analyze_run(setup.machine, run)
    for label, node in (("STREAM / DRAM", 0), ("STREAM / NVDIMM", 2)):
        run = setup.engine.price_run(
            [_stream_phase(int(22.4 * GiB), 20)],
            Placement.single(a=node, b=node, c=node),
            pus=_XEON_PUS,
        )
        rows[label] = analyze_run(setup.machine, run)
    return render_summary_table(rows)


def fig7() -> str:
    """Fig. 7: per-buffer memory-object analysis."""
    setup = quick_setup("xeon-cascadelake-1lm")
    driver = Graph500Driver(setup.engine)
    model = TrafficModel.analytic(23)
    cfg = Graph500Config(scale=23, nroots=1, threads=16)
    run = setup.engine.price_run(
        model.phases(cfg), driver.placement_all_on(2, model), pus=_XEON_PUS
    )
    objs = object_analysis(run, alloc_sites={"parent": "xmalloc bfs.c:31"})
    return render_object_report(objs)


def search(
    *,
    platform: str = "xeon-cascadelake-1lm",
    scale: int = 20,
    nodes: tuple[int, ...] = (0, 2),
    top_k: int | None = 8,
    workers: int = 1,
    budget: int | None = None,
    per_level: bool = False,
    hints: str = "none",
) -> str:
    """§V-A oracle: the branch-and-bound placement search on Graph500.

    ``hints="static"`` additionally scores the zero-profiling path: the
    placement the AST pass's hints produce through ``mem_alloc``, priced
    on the same phases and compared against the search optimum.
    """
    setup = quick_setup(platform)
    model = TrafficModel.analytic(scale)
    cfg = Graph500Config(scale=scale, nroots=1, threads=16)
    phases = model.phases(cfg, per_level=per_level)
    sizes = model.buffer_sizes()
    result = search_placements(
        setup.engine,
        phases,
        sizes,
        nodes,
        default_node=nodes[0],
        pus=_XEON_PUS,
        top_k=top_k,
        workers=workers,
        max_candidates=budget,
    )
    buffers = [b for b, _ in result.candidates[0].assignment]
    header = " | ".join(f"{b:>12}" for b in buffers) + f" | {'seconds':>10}"
    lines = [
        f"Graph500 scale {scale} placement search over nodes {list(nodes)}",
        header,
    ]
    for c in result.candidates:
        row = " | ".join(f"{node:>12}" for _, node in c.assignment)
        lines.append(f"{row} | {c.seconds * 1e3:>8.2f}ms")
    lines.append("")
    lines.append(result.stats.report())
    if hints == "static":
        from .analysis import app_kernels, hint_placement, hints_for

        (spec,) = [k for k in app_kernels() if k.name == "graph500_bfs"]
        static_hints = hints_for(spec.analyze(), param_buffers=spec.param_buffers)
        placement = hint_placement(setup.allocator, static_hints, sizes, 0)
        seconds = setup.engine.price_run(phases, placement, pus=_XEON_PUS).seconds
        best = result.candidates[0].seconds
        lines.append("")
        lines.append("static hints (source -> mem_alloc, no profiling):")
        for buffer in sorted(static_hints):
            where = ", ".join(
                f"node{n}:{f:.0%}" for n, f in sorted(placement.of(buffer).items())
            )
            lines.append(f"  {buffer:>12}: {static_hints[buffer]:<15} -> {where}")
        lines.append(
            f"  static-hint time {seconds * 1e3:.2f}ms vs optimum "
            f"{best * 1e3:.2f}ms ({seconds / best:.3f}x)"
        )
    return "\n".join(lines)


EXPERIMENTS: dict[str, Callable[[], str]] = {
    "figs1-3": figs_topology,
    "fig5": fig5,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "fig7": fig7,
    "search": search,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures",
    )
    parser.add_argument(
        "artifacts",
        nargs="+",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which artifacts to regenerate",
    )
    group = parser.add_argument_group(
        "search knobs", "only apply to the 'search' artifact"
    )
    group.add_argument(
        "--search-nodes",
        default="0,2",
        help="comma-separated candidate NUMA nodes (default: 0,2)",
    )
    group.add_argument(
        "--search-top-k",
        type=int,
        default=8,
        help="keep only the k best placements (0 = keep all)",
    )
    group.add_argument(
        "--search-workers",
        type=int,
        default=1,
        help="worker processes pricing candidates in parallel",
    )
    group.add_argument(
        "--search-budget",
        type=int,
        default=None,
        help="max placements to price before truncating (default: unlimited)",
    )
    group.add_argument(
        "--search-scale",
        type=int,
        default=20,
        help="Graph500 scale of the searched workload",
    )
    group.add_argument(
        "--search-per-level",
        action="store_true",
        help="search over per-BFS-level phases instead of the folded phase",
    )
    group.add_argument(
        "--search-hints",
        choices=("none", "static"),
        default="none",
        help="also score the static-analysis hint placement against the "
        "search optimum",
    )
    add_obs_arguments(parser)
    args = parser.parse_args(argv)
    start_obs(args)
    names = sorted(EXPERIMENTS) if "all" in args.artifacts else args.artifacts
    for name in names:
        print(f"\n{'=' * 70}\n{name}\n{'=' * 70}")
        if name == "search":
            nodes = tuple(int(n) for n in args.search_nodes.split(","))
            print(
                search(
                    scale=args.search_scale,
                    nodes=nodes,
                    top_k=args.search_top_k or None,
                    workers=args.search_workers,
                    budget=args.search_budget,
                    per_level=args.search_per_level,
                    hints=args.search_hints,
                )
            )
        else:
            print(EXPERIMENTS[name]())
    finish_obs(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
