"""``repro-lstopo`` — the lstopo-like command-line tool.

Renders any preset platform's topology (Figs. 1-3), its memory attributes
(``--memattrs``, Fig. 5), NUMA distances (``--distances``) and the virtual
sysfs tree (``--sysfs``).  Attributes come from native HMAT discovery when
the platform has one, otherwise from the benchmark sweep — announced in
the output, since that distinction is the point of §IV-A.
"""

from __future__ import annotations

import argparse
import sys

from .bench import characterize_machine, feed_attributes
from .core import MemAttrs, discover_from_sysfs, render_cache_stats, render_memattrs
from .core.ranking import rank_targets
from .errors import ReproError
from .firmware import build_sysfs
from .hw import PLATFORM_REGISTRY, get_platform
from .sim import SimEngine
from .topology import build_topology, render_lstopo

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lstopo",
        description="Show the topology and memory attributes of a modeled platform",
    )
    parser.add_argument(
        "--platform",
        default="xeon-cascadelake-1lm",
        choices=sorted(PLATFORM_REGISTRY),
        help="preset platform to display",
    )
    parser.add_argument(
        "--snc",
        type=int,
        default=None,
        help="SubNUMA clusters per package (platforms that support it)",
    )
    parser.add_argument(
        "--memattrs",
        action="store_true",
        help="also print memory attributes (Fig. 5 format)",
    )
    parser.add_argument(
        "--benchmark",
        action="store_true",
        help="characterize with benchmarks even when an HMAT exists",
    )
    parser.add_argument(
        "--distances", action="store_true", help="print the SLIT distance matrix"
    )
    parser.add_argument(
        "--sysfs", action="store_true", help="dump the virtual sysfs tree"
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="exercise the attribute-query hot path and print the "
        "memoization counters (implies --memattrs discovery)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    kwargs = {}
    if args.snc is not None:
        kwargs["snc"] = args.snc
    machine = get_platform(args.platform, **kwargs)
    topology = build_topology(machine)

    print(render_lstopo(topology))

    if args.distances:
        print("\nNUMA distances (SLIT):")
        print(topology.slit.render())

    if args.sysfs:
        print("\nVirtual sysfs:")
        print(build_sysfs(machine).render_tree())

    if args.memattrs or args.cache_stats:
        memattrs = MemAttrs(topology)
        if machine.has_hmat and not args.benchmark:
            recorded = discover_from_sysfs(memattrs, build_sysfs(machine))
            source = f"ACPI HMAT via sysfs ({recorded} values, local accesses only)"
        else:
            engine = SimEngine(machine, topology)
            recorded = feed_attributes(memattrs, characterize_machine(engine))
            source = f"benchmarks ({recorded} values, including remote accesses)"
        if args.memattrs:
            print(f"\nMemory attributes — source: {source}")
            print(render_memattrs(memattrs))
        if args.cache_stats:
            # Run each attribute's local ranking twice from PU 0: the first
            # pass fills the cache, the second demonstrates the hits.
            for _ in range(2):
                for attr in memattrs.attributes():
                    try:
                        rank_targets(memattrs, attr.name, 0)
                    except ReproError:
                        continue
            print("\nQuery-cache statistics:")
            print(render_cache_stats(memattrs.cache_stats()))
            print(f"generation: {memattrs.generation}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
