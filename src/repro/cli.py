"""``repro-lstopo`` and ``repro-search`` — the command-line tools.

``repro-lstopo`` renders any preset platform's topology (Figs. 1-3), its
memory attributes (``--memattrs``, Fig. 5), NUMA distances
(``--distances``) and the virtual sysfs tree (``--sysfs``).  Attributes
come from native HMAT discovery when the platform has one, otherwise from
the benchmark sweep — announced in the output, since that distinction is
the point of §IV-A.

``repro-search`` runs the §V-A placement search oracle over a Graph500
workload on any preset platform, exposing the search engine's knobs:
``--top-k`` (bounded best-k heap), ``--workers`` (process fan-out),
``--budget`` (pricing budget with truncation report), ``--no-prune``
(disable branch-and-bound).

``repro-analyze`` exposes the quantitative static analyzer: symbolic
per-buffer footprints of the registered app kernels, evaluated traffic
shares at the registry's problem scales (``--bind`` overrides any
symbol), and the static-vs-measured parity gate
(``--verify-parity``, exit 1 on drift) CI runs on every push.
"""

from __future__ import annotations

import argparse
import sys

from .bench import characterize_machine, feed_attributes
from .core import MemAttrs, discover_from_sysfs, render_cache_stats, render_memattrs
from .core.ranking import rank_targets
from .errors import ReproError
from .firmware import build_sysfs
from .hw import PLATFORM_REGISTRY, get_platform
from .obs.cli import add_obs_arguments, finish_obs, start_obs
from .sim import SimEngine
from .topology import build_topology, render_lstopo

__all__ = [
    "main",
    "build_parser",
    "search_main",
    "build_search_parser",
    "lint_main",
    "build_lint_parser",
    "analyze_main",
    "build_analyze_parser",
]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lstopo",
        description="Show the topology and memory attributes of a modeled platform",
    )
    parser.add_argument(
        "--platform",
        default="xeon-cascadelake-1lm",
        choices=sorted(PLATFORM_REGISTRY),
        help="preset platform to display",
    )
    parser.add_argument(
        "--snc",
        type=int,
        default=None,
        help="SubNUMA clusters per package (platforms that support it)",
    )
    parser.add_argument(
        "--memattrs",
        action="store_true",
        help="also print memory attributes (Fig. 5 format)",
    )
    parser.add_argument(
        "--benchmark",
        action="store_true",
        help="characterize with benchmarks even when an HMAT exists",
    )
    parser.add_argument(
        "--distances", action="store_true", help="print the SLIT distance matrix"
    )
    parser.add_argument(
        "--sysfs", action="store_true", help="dump the virtual sysfs tree"
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="exercise the attribute-query hot path and print the "
        "memoization counters (implies --memattrs discovery)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    kwargs = {}
    if args.snc is not None:
        kwargs["snc"] = args.snc
    machine = get_platform(args.platform, **kwargs)
    topology = build_topology(machine)

    print(render_lstopo(topology))

    if args.distances:
        print("\nNUMA distances (SLIT):")
        print(topology.slit.render())

    if args.sysfs:
        print("\nVirtual sysfs:")
        print(build_sysfs(machine).render_tree())

    if args.memattrs or args.cache_stats:
        memattrs = MemAttrs(topology)
        if machine.has_hmat and not args.benchmark:
            recorded = discover_from_sysfs(memattrs, build_sysfs(machine))
            source = f"ACPI HMAT via sysfs ({recorded} values, local accesses only)"
        else:
            engine = SimEngine(machine, topology)
            recorded = feed_attributes(memattrs, characterize_machine(engine))
            source = f"benchmarks ({recorded} values, including remote accesses)"
        if args.memattrs:
            print(f"\nMemory attributes — source: {source}")
            print(render_memattrs(memattrs))
        if args.cache_stats:
            # Run each attribute's local ranking twice from PU 0: the first
            # pass fills the cache, the second demonstrates the hits.
            for _ in range(2):
                for attr in memattrs.attributes():
                    try:
                        rank_targets(memattrs, attr.name, 0)
                    except ReproError:
                        continue
            print("\nQuery-cache statistics:")
            print(render_cache_stats(memattrs.cache_stats()))
            print(f"generation: {memattrs.generation}")
    return 0


def build_search_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-search",
        description="Branch-and-bound placement search (§V-A oracle) "
        "over a Graph500 workload",
    )
    parser.add_argument(
        "--platform",
        default="xeon-cascadelake-1lm",
        choices=sorted(PLATFORM_REGISTRY),
        help="preset platform to search on",
    )
    parser.add_argument(
        "--scale", type=int, default=20, help="Graph500 scale (2^scale vertices)"
    )
    parser.add_argument(
        "--nodes",
        default="0,2",
        help="comma-separated candidate NUMA nodes (first is the default node)",
    )
    parser.add_argument(
        "--critical",
        default=None,
        help="comma-separated critical buffers (default: all buffers)",
    )
    parser.add_argument(
        "--top-k",
        type=int,
        default=8,
        help="keep only the k best placements; 0 keeps every candidate",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes pricing candidates in parallel",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        help="pricing budget: max placements priced before truncating",
    )
    parser.add_argument(
        "--no-prune",
        action="store_true",
        help="disable branch-and-bound pruning (for comparison runs)",
    )
    parser.add_argument(
        "--per-level",
        action="store_true",
        help="search per-BFS-level phases instead of the folded phase",
    )
    parser.add_argument(
        "--threads", type=int, default=16, help="threads of the workload"
    )
    add_obs_arguments(parser)
    return parser


def search_main(argv: list[str] | None = None) -> int:
    from .apps.graph500 import Graph500Config, TrafficModel
    from .sensitivity import search_placements

    args = build_search_parser().parse_args(argv)
    start_obs(args)
    machine = get_platform(args.platform)
    engine = SimEngine(machine)
    nodes = tuple(int(n) for n in args.nodes.split(","))
    model = TrafficModel.analytic(args.scale)
    cfg = Graph500Config(scale=args.scale, nroots=1, threads=args.threads)
    phases = model.phases(cfg, per_level=args.per_level)
    critical = (
        tuple(args.critical.split(",")) if args.critical is not None else None
    )
    try:
        result = search_placements(
            engine,
            phases,
            model.buffer_sizes(),
            nodes,
            default_node=nodes[0],
            critical_buffers=critical,
            top_k=args.top_k or None,
            workers=args.workers,
            max_candidates=args.budget,
            prune=not args.no_prune,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    buffers = [b for b, _ in result.candidates[0].assignment]
    print(f"Graph500 scale {args.scale} on {args.platform}, nodes {list(nodes)}")
    print(" | ".join(f"{b:>12}" for b in buffers) + f" | {'time':>10}")
    for c in result.candidates:
        row = " | ".join(f"{node:>12}" for _, node in c.assignment)
        print(f"{row} | {c.seconds * 1e3:>8.2f}ms")
    print()
    print(result.stats.report())
    finish_obs(args)
    return 0


def build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static validation: diff app kernels against their "
        "declared descriptors, lint placement-plan JSON files, and check "
        "attribute literals at mem_alloc call sites — without simulating",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (.json as plans, .py for "
        "allocation sites); default: the bundled app kernels only",
    )
    parser.add_argument(
        "--apps",
        action="store_true",
        help="lint the bundled app kernels (inference vs declaration)",
    )
    parser.add_argument(
        "--platform",
        default="xeon-cascadelake-1lm",
        choices=sorted(PLATFORM_REGISTRY),
        help="platform to validate attribute names and plans against "
        "(plans naming their own platform keep it)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    parser.add_argument(
        "--no-footprints",
        action="store_true",
        help="skip the quantitative footprint rules (F...) when linting "
        "the bundled app kernels",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON (issues, severities, stats)",
    )
    return parser


def lint_main(argv: list[str] | None = None) -> int:
    from .analysis.lint import (
        LintReport,
        lint_app_kernels,
        lint_kernel_footprints,
        lint_paths,
        rule_catalog,
    )

    args = build_lint_parser().parse_args(argv)
    if args.list_rules:
        print(rule_catalog())
        return 0
    report = LintReport()
    if args.apps or not args.paths:
        report.extend(lint_app_kernels())
        if not args.no_footprints:
            report.extend(lint_kernel_footprints(platform=args.platform))
    if args.paths:
        report.extend(lint_paths(args.paths, platform=args.platform))
    print(report.to_json() if args.json else report.render())
    return 0 if report.ok else 1


def build_analyze_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Quantitative static analysis of the bundled app "
        "kernels: symbolic per-buffer footprints, traffic shares at the "
        "registry scales, and the static-vs-measured parity gate",
    )
    parser.add_argument(
        "--app",
        action="append",
        dest="apps",
        metavar="NAME",
        help="registered kernel to analyze (repeatable; default: all)",
    )
    parser.add_argument(
        "--bind",
        action="append",
        default=[],
        metavar="SYMBOL=VALUE",
        help="bind a footprint symbol (e.g. n=4096 or 'seg(offsets)=1e6'); "
        "overrides the registry value (repeatable)",
    )
    parser.add_argument(
        "--verify-parity",
        action="store_true",
        help="differentially check static shares against instrumented "
        "kernel runs; exit 1 on drift (the CI gate)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="relative drift tolerance for --verify-parity (default 0.10)",
    )
    parser.add_argument(
        "--list-apps",
        action="store_true",
        help="list the registered kernels and exit",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    return parser


def _parse_bindings(pairs: list[str]) -> dict[str, float]:
    out: dict[str, float] = {}
    for pair in pairs:
        symbol, sep, value = pair.partition("=")
        if not sep or not symbol:
            raise ReproError(f"--bind expects SYMBOL=VALUE, got {pair!r}")
        try:
            out[symbol.strip()] = float(value)
        except ValueError:
            raise ReproError(
                f"--bind {symbol.strip()!r}: {value!r} is not a number"
            ) from None
    return out


def analyze_main(argv: list[str] | None = None) -> int:
    import json

    from .analysis.footprint import traffic_shares
    from .analysis.kernels import app_kernels

    args = build_analyze_parser().parse_args(argv)

    if args.verify_parity:
        from .analysis.parity import DEFAULT_TOLERANCE, PARITY_APPS, run_parity

        tolerance = (
            args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
        )
        selected = tuple(args.apps) if args.apps else None
        if selected and (unknown := set(selected) - set(PARITY_APPS)):
            print(
                f"error: unknown parity app(s) {sorted(unknown)} "
                f"(known: {sorted(PARITY_APPS)})",
                file=sys.stderr,
            )
            return 2
        report = run_parity(selected, tolerance=tolerance)
        print(
            json.dumps(report.to_dict(), indent=2)
            if args.json
            else report.describe()
        )
        return 0 if report.ok else 1

    kernels = app_kernels()
    if args.list_apps:
        if args.json:
            print(json.dumps([k.name for k in kernels]))
        else:
            for spec in kernels:
                print(f"{spec.name}  ({spec.module})")
        return 0
    if args.apps:
        known = {k.name for k in kernels}
        if unknown := set(args.apps) - known:
            print(
                f"error: unknown app(s) {sorted(unknown)} "
                f"(known: {sorted(known)})",
                file=sys.stderr,
            )
            return 2
        kernels = tuple(k for k in kernels if k.name in set(args.apps))
    try:
        overrides = _parse_bindings(args.bind)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    entries = []
    for spec in kernels:
        footprint = spec.footprint()
        bindings = spec.footprint_bindings(footprint)
        bindings.update(overrides)
        try:
            shares = traffic_shares(
                footprint,
                bindings,
                param_buffers=spec.param_buffers,
                buffer_sizes=spec.buffer_sizes,
            )
        except ReproError:
            shares = None  # symbols left unbound: footprint stays symbolic
        entries.append((spec, footprint, bindings, shares))

    if args.json:
        payload = [
            {
                "app": spec.name,
                "kernel": footprint.kernel,
                "symbols": sorted(footprint.symbols()),
                "bindings": bindings,
                "nests": [
                    {
                        "name": nest.name,
                        "line": nest.line,
                        "buffers": {
                            param: {
                                "pattern": bf.pattern.value
                                if bf.pattern
                                else None,
                                "reads": str(bf.reads),
                                "writes": str(bf.writes),
                                "whole_buffer": bf.whole_buffer,
                                "unknown_sites": bf.unknown_sites,
                            }
                            for param, bf in sorted(nest.buffers.items())
                        },
                    }
                    for nest in footprint.nests
                ],
                "traffic_shares": shares,
                "declared_shares": spec.declared_shares(),
            }
            for spec, footprint, bindings, shares in entries
        ]
        print(json.dumps(payload, indent=2))
        return 0

    for spec, footprint, bindings, shares in entries:
        print(f"== {spec.name} ==")
        print(footprint.describe())
        if shares is not None:
            declared = spec.declared_shares()
            rendered = "  ".join(
                f"{buffer}={share:.4f}"
                + (
                    f" (declared {declared[buffer]:.4f})"
                    if buffer in declared
                    else ""
                )
                for buffer, share in sorted(shares.items())
            )
            print(f"  traffic shares: {rendered}")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
