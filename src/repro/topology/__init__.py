"""hwloc-like hardware topology.

Models the part of hwloc the paper builds on: a tree of objects based on
inclusion and physical locality, with **memory objects attached to the CPU
hierarchy** (hwloc ≥ 2.0, paper §III) so that a NUMA node hangs off the
Package / Group / Machine whose cores are local to it.

The package provides:

* :mod:`repro.topology.bitmap` — cpusets/nodesets (``hwloc_bitmap``).
* :mod:`repro.topology.objects` — object types and the object struct.
* :mod:`repro.topology.build` — discovery: build the tree from a
  :class:`~repro.hw.spec.MachineSpec` (+ its virtual sysfs).
* :mod:`repro.topology.traversal` — queries, including
  :func:`get_local_numanode_objs` from the paper's Fig. 4.
* :mod:`repro.topology.render` — ``lstopo``-style ASCII art (Figs. 1-3).
"""

from .bitmap import Bitmap
from .objects import ObjType, TopoObject
from .build import Topology, build_topology
from .traversal import (
    LocalNumanodeFlags,
    get_local_numanode_objs,
    objs_by_type,
    find_covering_object,
)
from .render import render_lstopo
from .distances import (
    DistancesDB,
    DistancesMatrix,
    matrices_from_benchmarks,
    matrix_from_slit,
)
from .xmlio import XmlTopologySummary, export_xml, parse_xml

__all__ = [
    "Bitmap",
    "ObjType",
    "TopoObject",
    "Topology",
    "build_topology",
    "LocalNumanodeFlags",
    "get_local_numanode_objs",
    "objs_by_type",
    "find_covering_object",
    "render_lstopo",
    "DistancesDB",
    "DistancesMatrix",
    "matrix_from_slit",
    "matrices_from_benchmarks",
    "export_xml",
    "parse_xml",
    "XmlTopologySummary",
]
