"""``lstopo``-style ASCII rendering of a topology (paper Figs. 1-3).

The real lstopo draws boxes; we render an indented tree that carries the
same information: the containment hierarchy, memory nodes at their attach
points (with memory-side caches in front when present), capacities, and
core/PU counts.  Runs of identical cores are compressed to one line, like
lstopo's ``--no-collapse`` inverse, to keep 64-core machines readable.
"""

from __future__ import annotations

from ..units import format_size
from .build import Topology
from .objects import ObjType, TopoObject

__all__ = ["render_lstopo"]

_INDENT = "  "


def _mem_label(node: TopoObject) -> str:
    cap = format_size(node.attrs.get("capacity", 0))
    subtype = node.subtype or node.attrs.get("kind", "")
    extra = f" {subtype}" if subtype and subtype != "DRAM" else ""
    return f"NUMANode L#{node.logical_index} (P#{node.os_index} {cap}{extra})"


def _cache_label(obj: TopoObject) -> str:
    size = format_size(obj.attrs.get("size", 0))
    if obj.type is ObjType.MEMCACHE:
        name = obj.name or "MemSideCache"
        return f"{name} ({size})"
    return f"{obj.type.value} ({size})"


def _render_memory_children(obj: TopoObject, out: list[str], depth: int) -> None:
    for child in obj.memory_children:
        if child.type is ObjType.MEMCACHE:
            out.append(_INDENT * depth + _cache_label(child))
            _render_memory_children(child, out, depth + 1)
        else:
            out.append(_INDENT * depth + _mem_label(child))


def _core_signature(core: TopoObject) -> tuple:
    """Cores with the same child structure collapse to one line."""
    pus = sum(1 for c in core.children if c.type is ObjType.PU)
    caches = tuple(
        (c.type.value, c.attrs.get("size", 0))
        for c in core.children
        if c.type in (ObjType.L1, ObjType.L2, ObjType.L3)
    )
    return (pus, caches)


def _render_cores(cores: list[TopoObject], out: list[str], depth: int) -> None:
    if not cores:
        return
    run_start = 0
    sig = _core_signature(cores[0])
    for i in range(1, len(cores) + 1):
        if i == len(cores) or _core_signature(cores[i]) != sig:
            first, last = cores[run_start], cores[i - 1]
            npus, caches = sig
            cache_text = "".join(
                f" + {name}({format_size(size)})" for name, size in caches
            )
            pu_text = f" + {npus}×PU" if npus != 1 else " + PU"
            if first is last:
                head = f"Core L#{first.logical_index}"
                pu_first = min(first.cpuset)
                pu_range = f" (P#{pu_first}" + (
                    f"-{max(first.cpuset)})" if npus > 1 else ")"
                )
            else:
                head = f"{i - run_start} × Core L#{first.logical_index}-L#{last.logical_index}"
                pu_range = f" (PU P#{min(first.cpuset)}-P#{max(last.cpuset)})"
            out.append(_INDENT * depth + head + cache_text + pu_text + pu_range)
            if i < len(cores):
                run_start = i
                sig = _core_signature(cores[i])


def _render_normal(obj: TopoObject, out: list[str], depth: int) -> None:
    if obj.type is ObjType.MACHINE:
        title = f"Machine ({format_size(sum(n.attrs['capacity'] for n in obj.iter_subtree() if n.type is ObjType.NUMANODE))} total)"
        if obj.name:
            title += f' "{obj.name}"'
        out.append(title)
    elif obj.type is ObjType.PACKAGE:
        out.append(_INDENT * depth + f"Package L#{obj.logical_index}")
    elif obj.type is ObjType.GROUP:
        name = obj.name or f"Group L#{obj.logical_index}"
        out.append(_INDENT * depth + name)
    elif obj.type in (ObjType.L1, ObjType.L2, ObjType.L3):
        out.append(_INDENT * depth + _cache_label(obj))
        return
    elif obj.type is ObjType.CORE:
        return  # cores are rendered in collapsed runs by the parent
    elif obj.type is ObjType.PU:
        return

    child_depth = depth + (0 if obj.type is ObjType.MACHINE else 1)
    _render_memory_children(obj, out, child_depth)
    cores = [c for c in obj.children if c.type is ObjType.CORE]
    non_cores = [c for c in obj.children if c.type is not ObjType.CORE]
    for child in non_cores:
        _render_normal(child, out, child_depth)
    _render_cores(cores, out, child_depth)


def render_lstopo(topology: Topology) -> str:
    """Render the whole topology as indented text."""
    out: list[str] = []
    _render_normal(topology.root, out, 0)
    return "\n".join(out)
