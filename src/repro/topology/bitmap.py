"""CPU-set / node-set bitmaps (the ``hwloc_bitmap`` equivalent).

A :class:`Bitmap` is an immutable set of small non-negative integers with
the algebra hwloc code leans on: and/or/xor/andnot, inclusion,
intersection, first/last/weight, and the Linux list syntax
(``"0-3,8,10-11"``) for parsing and printing.

Immutability keeps bitmaps safely shareable between topology objects —
every operation returns a new bitmap.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..errors import TopologyError

__all__ = ["Bitmap"]


class Bitmap:
    """An immutable set of non-negative integers backed by a Python int."""

    __slots__ = ("_bits",)

    def __init__(self, bits: Iterable[int] | int = ()) -> None:
        if isinstance(bits, int):
            if bits < 0:
                raise TopologyError("raw bitmap value must be non-negative")
            self._bits = bits
            return
        value = 0
        for b in bits:
            if b < 0:
                raise TopologyError(f"bitmap index must be non-negative, got {b}")
            value |= 1 << b
        self._bits = value

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_range(cls, start: int, stop: int) -> "Bitmap":
        """Bits in ``[start, stop)``."""
        if start < 0 or stop < start:
            raise TopologyError(f"bad range [{start}, {stop})")
        return cls(((1 << (stop - start)) - 1) << start)

    @classmethod
    def parse(cls, text: str) -> "Bitmap":
        """Parse the Linux list syntax: ``"0-3,8"``; empty string ⇒ empty."""
        text = text.strip()
        if not text:
            return cls()
        value = 0
        for span in text.split(","):
            span = span.strip()
            if "-" in span:
                lo_s, hi_s = span.split("-", 1)
                lo, hi = int(lo_s), int(hi_s)
                if lo < 0 or hi < lo:
                    raise TopologyError(f"bad span {span!r}")
                value |= ((1 << (hi - lo + 1)) - 1) << lo
            else:
                idx = int(span)
                if idx < 0:
                    raise TopologyError(f"bad index {span!r}")
                value |= 1 << idx
        return cls(value)

    # -- basic queries ----------------------------------------------------
    def isset(self, index: int) -> bool:
        return index >= 0 and bool(self._bits >> index & 1)

    def weight(self) -> int:
        return self._bits.bit_count()

    def first(self) -> int:
        """Lowest set bit, or -1 when empty (hwloc convention)."""
        if not self._bits:
            return -1
        return (self._bits & -self._bits).bit_length() - 1

    def last(self) -> int:
        """Highest set bit, or -1 when empty."""
        if not self._bits:
            return -1
        return self._bits.bit_length() - 1

    def is_empty(self) -> bool:
        return self._bits == 0

    # -- algebra ----------------------------------------------------------
    def set(self, index: int) -> "Bitmap":
        if index < 0:
            raise TopologyError("bitmap index must be non-negative")
        return Bitmap(self._bits | (1 << index))

    def clr(self, index: int) -> "Bitmap":
        if index < 0:
            raise TopologyError("bitmap index must be non-negative")
        return Bitmap(self._bits & ~(1 << index))

    def __and__(self, other: "Bitmap") -> "Bitmap":
        return Bitmap(self._bits & other._bits)

    def __or__(self, other: "Bitmap") -> "Bitmap":
        return Bitmap(self._bits | other._bits)

    def __xor__(self, other: "Bitmap") -> "Bitmap":
        return Bitmap(self._bits ^ other._bits)

    def andnot(self, other: "Bitmap") -> "Bitmap":
        return Bitmap(self._bits & ~other._bits)

    def intersects(self, other: "Bitmap") -> bool:
        return bool(self._bits & other._bits)

    def includes(self, other: "Bitmap") -> bool:
        """True when ``other`` ⊆ ``self``."""
        return other._bits & ~self._bits == 0

    # -- protocol ----------------------------------------------------------
    def __iter__(self) -> Iterator[int]:
        bits = self._bits
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    def __len__(self) -> int:
        return self.weight()

    def __contains__(self, index: int) -> bool:
        return self.isset(index)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Bitmap) and self._bits == other._bits

    def __hash__(self) -> int:
        return hash(("Bitmap", self._bits))

    def __bool__(self) -> bool:
        return bool(self._bits)

    def __repr__(self) -> str:
        return f"Bitmap({self.to_list_syntax()!r})"

    def to_list_syntax(self) -> str:
        """Render as Linux list syntax (inverse of :meth:`parse`)."""
        spans: list[str] = []
        start = prev = None
        for b in self:
            if start is None:
                start = prev = b
            elif b == prev + 1:
                prev = b
            else:
                spans.append(f"{start}-{prev}" if start != prev else f"{start}")
                start = prev = b
        if start is not None:
            spans.append(f"{start}-{prev}" if start != prev else f"{start}")
        return ",".join(spans)
