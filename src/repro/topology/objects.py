"""Topology object types and the object structure.

Follows the hwloc 2.x object model: *normal* children (Package, Group,
Core, PU, caches) form the main tree; **memory children** (NUMANode,
memory-side cache) are attached to the normal object whose cpuset matches
their locality (paper §III and [10]).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from ..errors import TopologyError
from .bitmap import Bitmap

__all__ = ["ObjType", "TopoObject"]


class ObjType(enum.Enum):
    """Object types, ordered roughly from outermost to innermost."""

    MACHINE = "Machine"
    PACKAGE = "Package"
    GROUP = "Group"
    NUMANODE = "NUMANode"
    MEMCACHE = "MemCache"       # memory-side cache
    L3 = "L3"
    L2 = "L2"
    L1 = "L1"
    CORE = "Core"
    PU = "PU"

    @property
    def is_memory(self) -> bool:
        return self in (ObjType.NUMANODE, ObjType.MEMCACHE)

    @property
    def is_normal(self) -> bool:
        return not self.is_memory


@dataclass(eq=False)
class TopoObject:
    """One object in the topology tree.

    ``cpuset`` is the set of PUs physically below / local to this object;
    ``nodeset`` the set of NUMA node OS indices local to it.  For memory
    objects, ``cpuset`` is the locality they are attached at (e.g. a KNL
    MCDRAM node carries its SubNUMA cluster's cpuset).
    """

    type: ObjType
    logical_index: int
    os_index: int = -1
    name: str = ""
    subtype: str = ""
    cpuset: Bitmap = field(default_factory=Bitmap)
    nodeset: Bitmap = field(default_factory=Bitmap)
    parent: Optional["TopoObject"] = None
    children: list["TopoObject"] = field(default_factory=list)
    memory_children: list["TopoObject"] = field(default_factory=list)
    attrs: dict[str, Any] = field(default_factory=dict)
    depth: int = 0

    # ------------------------------------------------------------------
    def add_child(self, child: "TopoObject") -> "TopoObject":
        if not child.type.is_normal:
            raise TopologyError(
                f"{child.type.value} is a memory object; use add_memory_child"
            )
        child.parent = self
        child.depth = self.depth + 1
        self.children.append(child)
        return child

    def add_memory_child(self, child: "TopoObject") -> "TopoObject":
        if child.type.is_normal:
            raise TopologyError(
                f"{child.type.value} is a normal object; use add_child"
            )
        child.parent = self
        child.depth = self.depth + 1
        self.memory_children.append(child)
        return child

    # ------------------------------------------------------------------
    def iter_subtree(self, *, memory: bool = True) -> Iterator["TopoObject"]:
        """Depth-first iteration; memory children before normal children
        (the hwloc display convention)."""
        yield self
        if memory:
            for m in self.memory_children:
                yield from m.iter_subtree(memory=memory)
        for c in self.children:
            yield from c.iter_subtree(memory=memory)

    def ancestors(self) -> Iterator["TopoObject"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    @property
    def label(self) -> str:
        """hwloc-style display label, e.g. ``NUMANode L#2 (P#4)``."""
        base = self.subtype or self.type.value
        text = f"{base} L#{self.logical_index}"
        if self.os_index >= 0:
            text += f" (P#{self.os_index})"
        return text

    def __repr__(self) -> str:
        return f"<{self.label} cpuset={self.cpuset.to_list_syntax()!r}>"
