"""hwloc-style distances matrices.

Beyond the single SLIT view, hwloc's distances API exposes multiple
matrices between sets of objects, each tagged with what the values
*mean* (latency or bandwidth) and where they *came from* (OS/firmware,
benchmarks, or the user).  The paper's companion work (M&MMs [11])
navigates memory spaces through exactly these matrices; here they give a
whole-matrix complement to the per-pair attribute queries.

:func:`matrix_from_slit` lifts the firmware SLIT;
:func:`matrices_from_benchmarks` converts a benchmark characterization
sweep into full initiator×target latency and bandwidth matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TopologyError
from .build import Topology

__all__ = [
    "DistancesMatrix",
    "DistancesDB",
    "matrix_from_slit",
    "matrices_from_benchmarks",
]


@dataclass(frozen=True)
class DistancesMatrix:
    """One matrix: row labels × target NUMA nodes → values."""

    name: str
    means: str                       # 'latency' | 'bandwidth' | 'relative'
    source: str                      # 'os' | 'benchmark' | 'user'
    row_labels: tuple[str, ...]
    target_nodes: tuple[int, ...]    # OS indices
    values: tuple[tuple[float, ...], ...]

    def __post_init__(self) -> None:
        if self.means not in ("latency", "bandwidth", "relative"):
            raise TopologyError(f"bad means {self.means!r}")
        if self.source not in ("os", "benchmark", "user"):
            raise TopologyError(f"bad source {self.source!r}")
        if len(self.values) != len(self.row_labels):
            raise TopologyError("row count mismatch")
        if any(len(row) != len(self.target_nodes) for row in self.values):
            raise TopologyError("column count mismatch")

    def value(self, row_label: str, target_node: int) -> float:
        try:
            i = self.row_labels.index(row_label)
        except ValueError:
            raise TopologyError(f"no row {row_label!r}") from None
        try:
            j = self.target_nodes.index(target_node)
        except ValueError:
            raise TopologyError(f"no target node {target_node}") from None
        return self.values[i][j]

    def render(self) -> str:
        width = max(10, max(len(l) for l in self.row_labels) + 1)
        header = " " * width + "".join(
            f"{f'node{n}':>12}" for n in self.target_nodes
        )
        lines = [f"# {self.name} ({self.means}, from {self.source})", header]
        for label, row in zip(self.row_labels, self.values):
            lines.append(
                f"{label:<{width}}" + "".join(f"{v:>12.4g}" for v in row)
            )
        return "\n".join(lines)


@dataclass
class DistancesDB:
    """All matrices known for one topology (``hwloc_distances_get``)."""

    topology: Topology
    matrices: list[DistancesMatrix] = field(default_factory=list)

    def add(self, matrix: DistancesMatrix) -> None:
        unknown = set(matrix.target_nodes) - {
            n.os_index for n in self.topology.numanodes()
        }
        if unknown:
            raise TopologyError(f"matrix references unknown nodes {sorted(unknown)}")
        self.matrices.append(matrix)

    def get(
        self, *, means: str | None = None, source: str | None = None
    ) -> tuple[DistancesMatrix, ...]:
        return tuple(
            m
            for m in self.matrices
            if (means is None or m.means == means)
            and (source is None or m.source == source)
        )


def matrix_from_slit(topology: Topology) -> DistancesMatrix:
    """The OS-provided SLIT as a relative node×node matrix."""
    nodes = tuple(
        n.os_index for n in sorted(topology.numanodes(), key=lambda n: n.os_index)
    )
    values = tuple(
        tuple(float(topology.slit.distance(i, j)) for j in nodes) for i in nodes
    )
    return DistancesMatrix(
        name="NUMA:SLIT",
        means="relative",
        source="os",
        row_labels=tuple(f"node{n}" for n in nodes),
        target_nodes=nodes,
        values=values,
    )


def matrices_from_benchmarks(
    topology: Topology, report
) -> tuple[DistancesMatrix, DistancesMatrix]:
    """Full latency and bandwidth matrices from a
    :class:`~repro.bench.runner.BenchmarkReport` sweep."""
    scopes: list[tuple[str, tuple[int, ...]]] = []
    for key in report.pairs():
        entry = (key.initiator_label, key.initiator_pus)
        if entry not in scopes:
            scopes.append(entry)
    nodes = tuple(
        n.os_index for n in sorted(topology.numanodes(), key=lambda n: n.os_index)
    )

    def build(means: str, extract) -> DistancesMatrix:
        rows = []
        for label, pus in scopes:
            row = []
            for node in nodes:
                match = [
                    extract(v)
                    for k, v in report.measurements.items()
                    if k.initiator_pus == pus and k.target_node == node
                ]
                if not match:
                    raise TopologyError(
                        f"benchmark report misses pair ({label}, node{node})"
                    )
                row.append(match[0])
            rows.append(tuple(row))
        return DistancesMatrix(
            name=f"NUMA:benchmarked:{means}",
            means=means,
            source="benchmark",
            row_labels=tuple(label for label, _ in scopes),
            target_nodes=nodes,
            values=tuple(rows),
        )

    latency = build("latency", lambda v: v.loaded_latency)
    bandwidth = build(
        "bandwidth", lambda v: min(v.read_bandwidth, v.write_bandwidth)
    )
    return latency, bandwidth
