"""Topology traversal helpers.

Implements the first function of the paper's Fig. 4:
``hwloc_get_local_numanode_objs(topology, initiator, &nr, &targets)`` —
find the memory targets local to an initiator — plus generic helpers used
throughout the library.
"""

from __future__ import annotations

import enum

from ..errors import TopologyError
from .bitmap import Bitmap
from .build import Topology
from .objects import ObjType, TopoObject

__all__ = [
    "LocalNumanodeFlags",
    "as_cpuset",
    "get_local_numanode_objs",
    "objs_by_type",
    "find_covering_object",
]


class LocalNumanodeFlags(enum.Flag):
    """Flags mirroring ``hwloc_local_numanode_flag_e``.

    * ``EXACT`` (no flags in hwloc): nodes whose locality equals the
      initiator's cpuset.
    * ``LARGER``: also nodes whose locality *contains* the initiator
      (a PU finds its Group/Package/Machine-level nodes).
    * ``SMALLER``: also nodes whose locality is *contained in* the
      initiator (a Package finds its SubNUMA-cluster nodes).
    * ``ALL``: every node in the topology.
    """

    EXACT = 0
    LARGER = enum.auto()
    SMALLER = enum.auto()
    ALL = enum.auto()

    @classmethod
    def default(cls) -> "LocalNumanodeFlags":
        """LARGER|SMALLER: what the paper's allocation flow needs — all
        nodes an initiator can consider local (its own cluster's, its
        package's, and machine-wide ones)."""
        return cls.LARGER | cls.SMALLER


def as_cpuset(topology: Topology, initiator, *, cache=None) -> Bitmap:
    """Coerce an initiator (Bitmap, TopoObject, PU index, or iterable of
    PU indices) into a cpuset — initiators in the paper's API are either
    CPU-sets or specific objects.

    ``cache`` is an optional :class:`~repro.core.querycache.QueryCache`
    (duck-typed to keep this layer free of a ``core`` dependency): the
    normalization depends only on the immutable topology, so answers for
    hashable initiators are memoized under the ``"as_cpuset"`` family.
    """
    if isinstance(initiator, Bitmap):
        return initiator
    if cache is not None:
        try:
            cached = cache.get("as_cpuset", initiator, None)
        except TypeError:  # unhashable initiator (e.g. a list of PUs)
            cache = None
        else:
            if cached is not None:
                return cached
    cpuset = _as_cpuset_uncached(topology, initiator)
    if cache is not None:
        cache.store("as_cpuset", initiator, cpuset)
    return cpuset


def _as_cpuset_uncached(topology: Topology, initiator) -> Bitmap:
    if isinstance(initiator, TopoObject):
        if initiator.cpuset.is_empty():
            raise TopologyError(f"{initiator.label} has an empty cpuset")
        return initiator.cpuset
    if isinstance(initiator, int):
        if not topology.complete_cpuset.isset(initiator):
            raise TopologyError(f"PU {initiator} not in topology")
        return Bitmap([initiator])
    try:
        return Bitmap(initiator)
    except TypeError:
        raise TopologyError(
            f"cannot interpret initiator {initiator!r} as a cpuset"
        ) from None


def get_local_numanode_objs(
    topology: Topology,
    initiator,
    flags: LocalNumanodeFlags | None = None,
    *,
    cache=None,
) -> tuple[TopoObject, ...]:
    """Memory targets local to ``initiator`` (paper Fig. 4, first call).

    Results are ordered by logical index, like hwloc.  Locality depends
    only on the immutable topology, so when a ``cache`` is supplied the
    answer is memoized under the ``"local_nodes"`` family, keyed by the
    normalized cpuset and flags.
    """
    cpuset = as_cpuset(topology, initiator, cache=cache)
    if cpuset.is_empty():
        raise TopologyError("initiator cpuset is empty")
    flags = LocalNumanodeFlags.default() if flags is None else flags
    if cache is not None:
        cached = cache.get("local_nodes", (cpuset, flags), None)
        if cached is not None:
            return cached

    out = []
    for node in topology.numanodes():
        if flags & LocalNumanodeFlags.ALL:
            out.append(node)
            continue
        locality = node.cpuset
        if locality == cpuset:
            out.append(node)
        elif flags & LocalNumanodeFlags.LARGER and locality.includes(cpuset):
            out.append(node)
        elif flags & LocalNumanodeFlags.SMALLER and cpuset.includes(locality):
            out.append(node)
    result = tuple(out)
    if cache is not None:
        cache.store("local_nodes", (cpuset, flags), result)
    return result


def objs_by_type(topology: Topology, type: ObjType) -> tuple[TopoObject, ...]:
    """All objects of one type (thin alias kept for API parity)."""
    return topology.objs(type)


def find_covering_object(
    topology: Topology, cpuset: Bitmap, type: ObjType
) -> TopoObject:
    """Smallest object of ``type`` whose cpuset covers ``cpuset``."""
    best: TopoObject | None = None
    for obj in topology.objs(type):
        if obj.cpuset.includes(cpuset):
            if best is None or best.cpuset.weight() > obj.cpuset.weight():
                best = obj
    if best is None:
        raise TopologyError(
            f"no {type.value} covers cpuset {cpuset.to_list_syntax()!r}"
        )
    return best
