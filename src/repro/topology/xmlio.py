"""hwloc-style XML topology export.

hwloc can export a discovered topology to XML so that tools (and remote
analyses) can reload it without access to the machine.  We export the
same information our tree carries — objects, cpusets/nodesets, memory
attach points, capacities — plus, optionally, the memory-attribute values
(hwloc 2.3's XML includes a ``memattrs`` section for exactly this).

Import reconstructs a read-only :class:`XmlTopologySummary`, not a full
:class:`Topology` (the live tree needs the machine model behind it); the
summary is what remote tooling needs for inspection and diffing.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field

from ..errors import TopologyError
from .build import Topology
from .objects import ObjType, TopoObject

__all__ = ["export_xml", "parse_xml", "XmlTopologySummary"]


def _obj_to_element(obj: TopoObject) -> ET.Element:
    el = ET.Element("object")
    el.set("type", obj.type.value)
    el.set("logical_index", str(obj.logical_index))
    if obj.os_index >= 0:
        el.set("os_index", str(obj.os_index))
    if obj.name:
        el.set("name", obj.name)
    if obj.subtype:
        el.set("subtype", obj.subtype)
    el.set("cpuset", obj.cpuset.to_list_syntax())
    if not obj.nodeset.is_empty():
        el.set("nodeset", obj.nodeset.to_list_syntax())
    for key in ("capacity", "size", "kind", "tech", "line_size"):
        if key in obj.attrs:
            el.set(key, str(obj.attrs[key]))
    for child in obj.memory_children:
        sub = _obj_to_element(child)
        sub.set("attach", "memory")
        el.append(sub)
    for child in obj.children:
        el.append(_obj_to_element(child))
    return el


def export_xml(topology: Topology, memattrs=None) -> str:
    """Export a topology (and optionally its attribute values) as XML."""
    root = ET.Element("topology")
    root.set("machine", topology.machine_spec.name)
    root.append(_obj_to_element(topology.root))

    if memattrs is not None:
        attrs_el = ET.SubElement(root, "memattrs")
        for attr in memattrs.attributes():
            attr_el = ET.SubElement(attrs_el, "memattr")
            attr_el.set("id", str(attr.id))
            attr_el.set("name", attr.name)
            attr_el.set(
                "direction", "higher" if attr.higher_is_better else "lower"
            )
            if attr.unit:
                attr_el.set("unit", attr.unit)
            for node in topology.numanodes():
                per_initiator = memattrs._store.get_map(attr.id, node.os_index)
                for initiator, value in per_initiator.items():
                    v_el = ET.SubElement(attr_el, "value")
                    v_el.set("target", str(node.os_index))
                    if initiator is not None:
                        v_el.set("initiator", initiator.to_list_syntax())
                    v_el.set("value", repr(float(value)))

    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


@dataclass
class XmlTopologySummary:
    """What an XML import yields: counts, nodes, and attribute values."""

    machine: str
    object_counts: dict[str, int] = field(default_factory=dict)
    numa_nodes: dict[int, dict] = field(default_factory=dict)
    attribute_values: dict[str, list[tuple[int, str | None, float]]] = field(
        default_factory=dict
    )

    def count(self, type_name: str) -> int:
        return self.object_counts.get(type_name, 0)


def parse_xml(text: str) -> XmlTopologySummary:
    """Parse an :func:`export_xml` document back into a summary."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise TopologyError(f"bad topology XML: {exc}") from None
    if root.tag != "topology":
        raise TopologyError(f"not a topology document (root <{root.tag}>)")

    summary = XmlTopologySummary(machine=root.get("machine", ""))

    def walk(el: ET.Element) -> None:
        if el.tag == "object":
            type_name = el.get("type", "?")
            summary.object_counts[type_name] = (
                summary.object_counts.get(type_name, 0) + 1
            )
            if type_name == ObjType.NUMANODE.value:
                os_index = int(el.get("os_index", "-1"))
                summary.numa_nodes[os_index] = {
                    "capacity": int(el.get("capacity", "0")),
                    "kind": el.get("kind", ""),
                    "cpuset": el.get("cpuset", ""),
                    "logical_index": int(el.get("logical_index", "-1")),
                }
        for child in el:
            walk(child)

    for child in root:
        if child.tag == "object":
            walk(child)
        elif child.tag == "memattrs":
            for attr_el in child:
                name = attr_el.get("name", "?")
                values = []
                for v_el in attr_el:
                    values.append(
                        (
                            int(v_el.get("target", "-1")),
                            v_el.get("initiator"),
                            float(v_el.get("value", "nan")),
                        )
                    )
                summary.attribute_values[name] = values
    if not summary.object_counts:
        raise TopologyError("topology XML contains no objects")
    return summary
