"""Topology discovery: build the object tree from a machine model.

This plays the role of hwloc's Linux backend: it consumes what the
"hardware" (a :class:`~repro.hw.spec.MachineSpec` and its virtual sysfs)
exposes and produces the object tree.  Memory objects are attached to the
normal object matching their locality — Group for SubNUMA-cluster
memories, Package for socket memories, Machine for e.g. network-attached
memory — reproducing the multi-level structure of the paper's Figs. 1-3.

Memory-side caches (KNL hybrid/cache modes, Xeon 2LM) are inserted
between the attach point and the NUMANode, as hwloc does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..errors import TopologyError, UnknownObjectError
from ..firmware.slit import Slit, build_slit
from ..firmware.srat import Srat, build_srat
from ..hw.spec import AttachLevel, CacheSpec, MachineSpec, NodeInstance
from .bitmap import Bitmap
from .objects import ObjType, TopoObject

__all__ = ["Topology", "build_topology"]


@dataclass
class Topology:
    """A built topology: the tree plus by-type indexes and firmware views."""

    machine_spec: MachineSpec
    root: TopoObject
    srat: Srat
    slit: Slit
    _by_type: dict[ObjType, list[TopoObject]] = field(default_factory=dict)

    # -- indexing -------------------------------------------------------
    def objs(self, type: ObjType) -> tuple[TopoObject, ...]:
        """All objects of a type, ordered by logical index."""
        return tuple(self._by_type.get(type, ()))

    def nbobjs(self, type: ObjType) -> int:
        return len(self._by_type.get(type, ()))

    def obj_by_logical(self, type: ObjType, index: int) -> TopoObject:
        objs = self._by_type.get(type, [])
        if not 0 <= index < len(objs):
            raise UnknownObjectError(f"no {type.value} with logical index {index}")
        return objs[index]

    def obj_by_os_index(self, type: ObjType, os_index: int) -> TopoObject:
        for obj in self._by_type.get(type, []):
            if obj.os_index == os_index:
                return obj
        raise UnknownObjectError(f"no {type.value} with OS index {os_index}")

    # -- common shorthands ------------------------------------------------
    def numanodes(self) -> tuple[TopoObject, ...]:
        return self.objs(ObjType.NUMANODE)

    def numanode_by_os_index(self, os_index: int) -> TopoObject:
        return self.obj_by_os_index(ObjType.NUMANODE, os_index)

    def pus(self) -> tuple[TopoObject, ...]:
        return self.objs(ObjType.PU)

    def pu(self, os_index: int) -> TopoObject:
        return self.obj_by_os_index(ObjType.PU, os_index)

    @property
    def complete_cpuset(self) -> Bitmap:
        return self.root.cpuset

    @property
    def complete_nodeset(self) -> Bitmap:
        return self.root.nodeset

    def iter_all(self) -> Iterator[TopoObject]:
        return self.root.iter_subtree()

    def node_instance(self, numanode: TopoObject) -> NodeInstance:
        """The hardware-model instance behind a NUMANode object."""
        try:
            return numanode.attrs["instance"]
        except KeyError:
            raise TopologyError(
                f"{numanode.label} carries no hardware instance"
            ) from None

    def distance(self, node_a: int, node_b: int) -> int:
        """SLIT distance between two NUMA nodes (OS indices)."""
        return self.slit.distance(node_a, node_b)


def _index_topology(topo: Topology) -> None:
    by_type: dict[ObjType, list[TopoObject]] = {}
    for obj in topo.root.iter_subtree():
        by_type.setdefault(obj.type, []).append(obj)
    # NUMANode logical order must match the spec's logical numbering, not
    # tree-walk order (machine-level nodes are visited first otherwise).
    for t, objs in by_type.items():
        if t is ObjType.NUMANODE:
            objs.sort(key=lambda o: o.logical_index)
        else:
            objs.sort(key=lambda o: (o.depth, o.logical_index))
    topo._by_type = by_type


def _cache_objects(caches: tuple[CacheSpec, ...], *, shared: bool) -> list[CacheSpec]:
    return [c for c in caches if c.shared == shared]


_CACHE_TYPE = {1: ObjType.L1, 2: ObjType.L2, 3: ObjType.L3}


def _attach_numanode(
    parent: TopoObject, inst: NodeInstance, cpuset: Bitmap
) -> TopoObject:
    """Attach one NUMA node (possibly behind a memory-side cache)."""
    attach_to = parent
    if inst.spec.memside_cache is not None:
        cache = inst.spec.memside_cache
        mc = TopoObject(
            type=ObjType.MEMCACHE,
            logical_index=inst.logical_index,
            name=cache.label,
            cpuset=cpuset,
            nodeset=Bitmap([inst.os_index]),
            attrs={"size": cache.size, "associativity": cache.associativity},
        )
        parent.add_memory_child(mc)
        attach_to = mc
    node = TopoObject(
        type=ObjType.NUMANODE,
        logical_index=inst.logical_index,
        os_index=inst.os_index,
        subtype=inst.spec.subtype,
        cpuset=cpuset,
        nodeset=Bitmap([inst.os_index]),
        attrs={
            "capacity": inst.capacity,
            "tech": inst.tech.name,
            "kind": inst.kind.value,
            "instance": inst,
        },
    )
    attach_to.add_memory_child(node)
    return node


def _build_cores(
    parent: TopoObject,
    count: int,
    pus_per_core: int,
    first_pu: int,
    core_logical_start: int,
    private_caches: list[CacheSpec],
) -> int:
    """Create ``count`` cores (each with PUs and private caches).

    Returns the next free core logical index.
    """
    pu = first_pu
    for ci in range(count):
        core_cpuset = Bitmap.from_range(pu, pu + pus_per_core)
        core = TopoObject(
            type=ObjType.CORE,
            logical_index=core_logical_start + ci,
            os_index=core_logical_start + ci,
            cpuset=core_cpuset,
        )
        parent.add_child(core)
        for cache in private_caches:
            core.add_child(
                TopoObject(
                    type=_CACHE_TYPE[cache.level],
                    logical_index=core_logical_start + ci,
                    cpuset=core_cpuset,
                    attrs={"size": cache.size, "line_size": cache.line_size},
                )
            )
        for t in range(pus_per_core):
            core.add_child(
                TopoObject(
                    type=ObjType.PU,
                    logical_index=pu,
                    os_index=pu,
                    cpuset=Bitmap([pu]),
                )
            )
            pu += 1
    return core_logical_start + count


def build_topology(machine: MachineSpec) -> Topology:
    """Discover the topology of a machine model."""
    nodes = machine.numa_nodes()
    all_nodeset = Bitmap(n.os_index for n in nodes)
    root = TopoObject(
        type=ObjType.MACHINE,
        logical_index=0,
        name=machine.name,
        cpuset=Bitmap.from_range(0, machine.total_pus),
        nodeset=all_nodeset,
    )

    ranges = machine.pu_ranges()
    core_counter = 0
    for pi, pkg_spec in enumerate(machine.packages):
        pkg_pus = [r for r in ranges if r[0] == pi]
        pkg_cpuset = Bitmap(
            b for _, _, _, rng in pkg_pus for b in rng
        )
        pkg_nodeset = Bitmap(
            n.os_index for n in nodes if n.package == pi
        )
        pkg = TopoObject(
            type=ObjType.PACKAGE,
            logical_index=pi,
            os_index=pi,
            cpuset=pkg_cpuset,
            nodeset=pkg_nodeset,
        )
        root.add_child(pkg)

        if pkg_spec.groups:
            for gi, grp_spec in enumerate(pkg_spec.groups):
                rng = next(r[3] for r in pkg_pus if r[1] == gi)
                grp_cpuset = Bitmap(rng)
                grp_nodeset = Bitmap(
                    n.os_index for n in nodes if n.package == pi and n.group == gi
                )
                grp = TopoObject(
                    type=ObjType.GROUP,
                    logical_index=pi * len(pkg_spec.groups) + gi,
                    name=grp_spec.name,
                    subtype="Group0",
                    cpuset=grp_cpuset,
                    nodeset=grp_nodeset,
                )
                pkg.add_child(grp)
                for inst in nodes:
                    if (
                        inst.package == pi
                        and inst.group == gi
                        and inst.attach_level == AttachLevel.GROUP
                    ):
                        _attach_numanode(grp, inst, grp_cpuset)
                for cache in _cache_objects(grp_spec.caches, shared=True):
                    grp.add_child(
                        TopoObject(
                            type=_CACHE_TYPE[cache.level],
                            logical_index=grp.logical_index,
                            cpuset=grp_cpuset,
                            attrs={"size": cache.size, "line_size": cache.line_size},
                        )
                    )
                core_counter = _build_cores(
                    grp,
                    grp_spec.cores,
                    grp_spec.pus_per_core,
                    rng.start,
                    core_counter,
                    _cache_objects(grp_spec.caches, shared=False),
                )
        else:
            rng = pkg_pus[0][3]
            for cache in _cache_objects(pkg_spec.caches, shared=True):
                pkg.add_child(
                    TopoObject(
                        type=_CACHE_TYPE[cache.level],
                        logical_index=pi,
                        cpuset=pkg_cpuset,
                        attrs={"size": cache.size, "line_size": cache.line_size},
                    )
                )
            core_counter = _build_cores(
                pkg,
                pkg_spec.cores,
                pkg_spec.pus_per_core,
                rng.start,
                core_counter,
                _cache_objects(pkg_spec.caches, shared=False),
            )

        for inst in nodes:
            if inst.package == pi and inst.attach_level == AttachLevel.PACKAGE:
                _attach_numanode(pkg, inst, pkg_cpuset)

    for inst in nodes:
        if inst.attach_level == AttachLevel.MACHINE:
            _attach_numanode(root, inst, root.cpuset)

    topo = Topology(
        machine_spec=machine,
        root=root,
        srat=build_srat(machine),
        slit=build_slit(machine),
    )
    _index_topology(topo)
    _validate(topo)
    return topo


def _validate(topo: Topology) -> None:
    """Tree invariants: child cpusets nest, NUMA nodes are all present."""
    expected_nodes = {n.os_index for n in topo.machine_spec.numa_nodes()}
    seen_nodes = {n.os_index for n in topo.numanodes()}
    if expected_nodes != seen_nodes:
        raise TopologyError(
            f"NUMA node mismatch: spec {sorted(expected_nodes)} "
            f"vs tree {sorted(seen_nodes)}"
        )
    for obj in topo.iter_all():
        for child in obj.children:
            if not obj.cpuset.includes(child.cpuset):
                raise TopologyError(
                    f"{child.label} cpuset escapes parent {obj.label}"
                )
    pus = topo.pus()
    if len(pus) != topo.machine_spec.total_pus:
        raise TopologyError(
            f"PU count mismatch: {len(pus)} vs spec {topo.machine_spec.total_pus}"
        )
