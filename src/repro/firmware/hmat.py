"""HMAT — Heterogeneous Memory Attribute Table (synthetic).

Introduced in ACPI 6.2, the HMAT carries *System Locality Latency and
Bandwidth Information* structures: for (initiator proximity domain, target
proximity domain) pairs, theoretical access/read/write latency and
bandwidth.  It may also describe memory-side caches.

Per the paper (§IV-A1), current platforms and Linux only expose performance
for **local** accesses; :func:`build_hmat` honours
:attr:`MachineSpec.hmat_local_only` to reproduce that limitation, which is
what forces the benchmark-feeding path of §IV-A2 to exist at all.  Machines
with ``has_hmat=False`` (e.g. KNL, which predates ACPI 6.2) raise at build
time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import FirmwareError
from ..hw.spec import MachineSpec
from .srat import Srat, build_srat

__all__ = ["DataType", "HmatEntry", "HmatCacheEntry", "Hmat", "build_hmat"]


class DataType(enum.Enum):
    """HMAT data types (ACPI 6.2 table 5-146, reduced to what we model)."""

    ACCESS_LATENCY = "access_latency"
    READ_LATENCY = "read_latency"
    WRITE_LATENCY = "write_latency"
    ACCESS_BANDWIDTH = "access_bandwidth"
    READ_BANDWIDTH = "read_bandwidth"
    WRITE_BANDWIDTH = "write_bandwidth"

    @property
    def is_latency(self) -> bool:
        return self in (
            DataType.ACCESS_LATENCY,
            DataType.READ_LATENCY,
            DataType.WRITE_LATENCY,
        )


@dataclass(frozen=True)
class HmatEntry:
    """One (initiator, target, data-type) performance datum.

    Values are canonical: seconds for latencies, bytes/second for
    bandwidths (the binary ACPI encoding in picoseconds / MB/s is a
    rendering concern, handled by the sysfs layer).
    """

    initiator_pd: int
    target_pd: int
    data_type: DataType
    value: float

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise FirmwareError(
                f"HMAT value must be positive: {self.data_type} = {self.value}"
            )


@dataclass(frozen=True)
class HmatCacheEntry:
    """A memory-side cache description for one target domain."""

    target_pd: int
    cache_size: int
    associativity: int
    line_size: int = 64
    label: str = "MemSideCache"


@dataclass(frozen=True)
class Hmat:
    """A parsed/synthetic HMAT."""

    entries: tuple[HmatEntry, ...]
    caches: tuple[HmatCacheEntry, ...] = ()

    def lookup(
        self, initiator_pd: int, target_pd: int, data_type: DataType
    ) -> float | None:
        """Return the value for a pair, or ``None`` if the table omits it.

        ``None`` is the honest firmware answer — remote pairs are typically
        missing on real machines, and callers (the discovery layer) must
        cope, e.g. by falling back to benchmarking.
        """
        for entry in self.entries:
            if (
                entry.initiator_pd == initiator_pd
                and entry.target_pd == target_pd
                and entry.data_type is data_type
            ):
                return entry.value
        return None

    def initiators_of(self, target_pd: int) -> tuple[int, ...]:
        """Initiator domains with any datum for the given target."""
        return tuple(
            sorted({e.initiator_pd for e in self.entries if e.target_pd == target_pd})
        )

    def targets(self) -> tuple[int, ...]:
        return tuple(sorted({e.target_pd for e in self.entries}))

    def cache_of(self, target_pd: int) -> HmatCacheEntry | None:
        for cache in self.caches:
            if cache.target_pd == target_pd:
                return cache
        return None


def build_hmat(machine: MachineSpec, srat: Srat | None = None) -> Hmat:
    """Synthesize the HMAT for a machine.

    One entry set per (initiator domain, target node) pair, where initiator
    domains are the SRAT proximity domains that contain CPUs.  When
    ``machine.hmat_local_only`` is set (the realistic default) only pairs
    whose CPUs are *local* to the target are emitted.
    """
    if not machine.has_hmat:
        raise FirmwareError(
            f"{machine.name}: platform firmware predates ACPI 6.2 and "
            "publishes no HMAT; use benchmarking to characterize memory"
        )
    srat = srat or build_srat(machine)
    nodes = sorted(machine.numa_nodes(), key=lambda n: n.os_index)

    # initiator domain -> a representative PU in that domain
    initiator_pus: dict[int, int] = {}
    for entry in srat.cpus:
        initiator_pus.setdefault(entry.proximity_domain, entry.pu)

    entries: list[HmatEntry] = []
    for target in nodes:
        for domain, pu in sorted(initiator_pus.items()):
            cls = machine.locality_class(pu, target)
            if machine.hmat_local_only and cls != "local":
                continue
            lat, rbw, wbw = machine.access_performance(pu, target, loaded=False)
            tech = target.tech
            # Preserve any read/write asymmetry of the technology while
            # applying the interconnect-adjusted figures.
            rlat = lat * (tech.hmat_read_latency / tech.hmat_latency)
            wlat = lat * (tech.hmat_write_latency / tech.hmat_latency)
            pairs = [
                (DataType.ACCESS_LATENCY, max(rlat, wlat)),
                (DataType.READ_LATENCY, rlat),
                (DataType.WRITE_LATENCY, wlat),
                (DataType.ACCESS_BANDWIDTH, min(rbw, wbw)),
                (DataType.READ_BANDWIDTH, rbw),
                (DataType.WRITE_BANDWIDTH, wbw),
            ]
            entries.extend(
                HmatEntry(
                    initiator_pd=domain,
                    target_pd=target.os_index,
                    data_type=dt,
                    value=value,
                )
                for dt, value in pairs
            )

    caches = tuple(
        HmatCacheEntry(
            target_pd=node.os_index,
            cache_size=node.spec.memside_cache.size,
            associativity=node.spec.memside_cache.associativity,
            label=node.spec.memside_cache.label,
        )
        for node in nodes
        if node.spec.memside_cache is not None
    )
    return Hmat(entries=tuple(entries), caches=caches)
