"""A Linux-like virtual sysfs view of the NUMA topology.

Linux ≥ 5.2 digests the ACPI HMAT into
``/sys/devices/system/node/nodeN/access0/initiators/*`` attributes (the
paper's authors contributed that exposure, §IV-A1).  hwloc reads *these
files*, not the raw ACPI tables.  To keep our discovery path equally
honest, :func:`build_sysfs` renders the synthetic SRAT/SLIT/HMAT into an
in-memory file tree with the same paths, units and quirks:

* ``access0/initiators`` lists the best-performing (local) initiator nodes
  and the performance *those* initiators see — remote performance is absent.
* latencies are integral **nanoseconds**, bandwidths integral **MB/s**
  (decimal), exactly the units of the paper's Fig. 5.
* memory-side caches appear under ``memory_side_cache/indexN/``.

The discovery layer (:mod:`repro.core.discovery`) then *parses* this tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import FirmwareError
from ..hw.spec import MachineSpec
from ..units import KiB, bytes_to_mbps_field, ns_field
from .hmat import DataType, Hmat, build_hmat
from .slit import Slit, build_slit
from .srat import Srat, build_srat

__all__ = ["VirtualSysfs", "build_sysfs"]

_NODE_ROOT = "/sys/devices/system/node"


def _ranges(ints) -> str:
    """Render a sorted int list Linux-style: ``0-3,8,10-11``."""
    vals = sorted(set(ints))
    if not vals:
        return ""
    spans: list[str] = []
    start = prev = vals[0]
    for v in vals[1:]:
        if v == prev + 1:
            prev = v
            continue
        spans.append(f"{start}-{prev}" if start != prev else f"{start}")
        start = prev = v
    spans.append(f"{start}-{prev}" if start != prev else f"{start}")
    return ",".join(spans)


def parse_ranges(text: str) -> tuple[int, ...]:
    """Parse a Linux range list back into a tuple of ints."""
    text = text.strip()
    if not text:
        return ()
    out: list[int] = []
    for span in text.split(","):
        if "-" in span:
            lo, hi = span.split("-")
            out.extend(range(int(lo), int(hi) + 1))
        else:
            out.append(int(span))
    return tuple(out)


@dataclass
class VirtualSysfs:
    """An immutable-ish in-memory file tree addressed by absolute paths."""

    files: dict[str, str] = field(default_factory=dict)

    def read(self, path: str) -> str:
        try:
            return self.files[path]
        except KeyError:
            raise FirmwareError(f"sysfs: no such file: {path}") from None

    def exists(self, path: str) -> bool:
        if path in self.files:
            return True
        prefix = path.rstrip("/") + "/"
        return any(p.startswith(prefix) for p in self.files)

    def listdir(self, path: str) -> tuple[str, ...]:
        prefix = path.rstrip("/") + "/"
        names = {
            p[len(prefix):].split("/", 1)[0]
            for p in self.files
            if p.startswith(prefix)
        }
        if not names and path not in self.files:
            raise FirmwareError(f"sysfs: no such directory: {path}")
        return tuple(sorted(names))

    def render_tree(self, root: str = _NODE_ROOT) -> str:
        """Debug dump of the subtree at ``root``."""
        lines = []
        prefix = root.rstrip("/") + "/"
        for path in sorted(self.files):
            if path.startswith(prefix) or path == root:
                lines.append(f"{path}: {self.files[path].strip()!r}")
        return "\n".join(lines)


def build_sysfs(
    machine: MachineSpec,
    *,
    srat: Srat | None = None,
    slit: Slit | None = None,
    hmat: Hmat | None = None,
) -> VirtualSysfs:
    """Render the virtual sysfs for a machine.

    The HMAT-derived ``access0`` attributes are omitted entirely when the
    platform has no HMAT (``machine.has_hmat`` is false) — as on KNL, where
    hwloc must fall back to benchmarks or human knowledge.
    """
    srat = srat or build_srat(machine)
    slit = slit or build_slit(machine)
    if hmat is None and machine.has_hmat:
        hmat = build_hmat(machine, srat)

    nodes = sorted(machine.numa_nodes(), key=lambda n: n.os_index)
    fs: dict[str, str] = {}
    all_ids = [n.os_index for n in nodes]
    fs[f"{_NODE_ROOT}/online"] = _ranges(all_ids) + "\n"
    fs[f"{_NODE_ROOT}/possible"] = _ranges(all_ids) + "\n"
    has_cpu = [n.os_index for n in nodes if srat.pus_of_domain(n.os_index)]
    fs[f"{_NODE_ROOT}/has_cpu"] = _ranges(has_cpu) + "\n"
    fs[f"{_NODE_ROOT}/has_memory"] = _ranges(all_ids) + "\n"

    for node in nodes:
        base = f"{_NODE_ROOT}/node{node.os_index}"
        pus = srat.pus_of_domain(node.os_index)
        fs[f"{base}/cpulist"] = _ranges(pus) + "\n"
        kb = node.capacity // KiB
        fs[f"{base}/meminfo"] = (
            f"Node {node.os_index} MemTotal:       {kb} kB\n"
            f"Node {node.os_index} MemFree:        {kb} kB\n"
        )
        row = slit.matrix[node.os_index]
        fs[f"{base}/distance"] = " ".join(str(v) for v in row) + "\n"
        # Driver hint used only for human-readable identification (§III-A:
        # "only meant for debugging"); discovery must not rank by it.
        fs[f"{base}/kind_hint"] = node.kind.value + "\n"
        if node.spec.subtype:
            fs[f"{base}/subtype"] = node.spec.subtype + "\n"

        if hmat is not None:
            initiators = hmat.initiators_of(node.os_index)
            if initiators:
                acc = f"{base}/access0/initiators"
                for dom in initiators:
                    # Linux materializes symlinks named nodeM; an empty file
                    # marks membership in our virtual tree.
                    fs[f"{acc}/node{dom}"] = ""
                first = initiators[0]

                def val(dt: DataType, first=first, node=node) -> float | None:
                    return hmat.lookup(first, node.os_index, dt)

                rl, wl = val(DataType.READ_LATENCY), val(DataType.WRITE_LATENCY)
                rb, wb = val(DataType.READ_BANDWIDTH), val(DataType.WRITE_BANDWIDTH)
                if rl is not None:
                    fs[f"{acc}/read_latency"] = f"{ns_field(rl)}\n"
                if wl is not None:
                    fs[f"{acc}/write_latency"] = f"{ns_field(wl)}\n"
                if rb is not None:
                    fs[f"{acc}/read_bandwidth"] = f"{bytes_to_mbps_field(rb)}\n"
                if wb is not None:
                    fs[f"{acc}/write_bandwidth"] = f"{bytes_to_mbps_field(wb)}\n"

            cache = hmat.cache_of(node.os_index)
            if cache is not None:
                cbase = f"{base}/memory_side_cache/index1"
                fs[f"{cbase}/size"] = f"{cache.cache_size}\n"
                fs[f"{cbase}/line_size"] = f"{cache.line_size}\n"
                fs[f"{cbase}/indexing"] = (
                    "0\n" if cache.associativity == 1 else "2\n"
                )  # 0=direct-mapped, 2=complex (Linux encoding)
                fs[f"{cbase}/write_policy"] = "0\n"  # write-back

    return VirtualSysfs(files=fs)
