"""SLIT — System Locality Information Table (synthetic).

The SLIT publishes a matrix of *relative* distances between proximity
domains; 10 means local, and larger numbers scale roughly with access
cost.  Operating systems use it for zonelist ordering when no HMAT is
available; hwloc exposes it as the ``distances`` API.

We derive distances from the theoretical access latencies of the machine
model: ``distance(i, j) = round(10 * latency(i→j) / latency(i→i_local))``,
clamped to the SLIT convention of [10, 254].
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FirmwareError
from ..hw.spec import MachineSpec

__all__ = ["Slit", "build_slit"]


@dataclass(frozen=True)
class Slit:
    """Distance matrix between proximity domains (OS node indices)."""

    matrix: tuple[tuple[int, ...], ...]

    @property
    def num_domains(self) -> int:
        return len(self.matrix)

    def distance(self, from_domain: int, to_domain: int) -> int:
        n = self.num_domains
        if not (0 <= from_domain < n and 0 <= to_domain < n):
            raise FirmwareError(
                f"SLIT domain out of range: ({from_domain}, {to_domain}) of {n}"
            )
        return self.matrix[from_domain][to_domain]

    def render(self) -> str:
        """numactl-style distance table."""
        n = self.num_domains
        header = "node " + " ".join(f"{j:4d}" for j in range(n))
        rows = [header]
        for i in range(n):
            rows.append(f"{i:4d} " + " ".join(f"{v:4d}" for v in self.matrix[i]))
        return "\n".join(rows)


def build_slit(machine: MachineSpec) -> Slit:
    """Synthesize the SLIT from theoretical access latencies.

    The distance from domain *i* to domain *j* is measured from a CPU local
    to node *i* (CPU-less domains borrow the nearest CPUs — SLIT rows for
    memory-only domains are how Linux reports e.g. KNL MCDRAM distances).
    """
    nodes = sorted(machine.numa_nodes(), key=lambda n: n.os_index)
    n = len(nodes)

    def representative_pu(node) -> int:
        if node.local_pu_indices:
            return node.local_pu_indices[0]
        return 0

    matrix: list[tuple[int, ...]] = []
    for src in nodes:
        pu = representative_pu(src)
        # Reference latency: the fastest any node is reachable from this PU.
        lats = [
            machine.access_performance(pu, dst, loaded=False)[0] for dst in nodes
        ]
        ref = min(lats)
        row = []
        for dst, lat in zip(nodes, lats):
            if dst.os_index == src.os_index:
                row.append(10)
            else:
                row.append(max(10, min(254, round(10 * lat / ref))))
        matrix.append(tuple(row))
    return Slit(matrix=tuple(matrix))
