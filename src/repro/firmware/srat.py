"""SRAT — System Resource Affinity Table (synthetic).

The SRAT assigns every logical processor and every memory range to a
*proximity domain*.  We use one proximity domain per NUMA node, numbered by
OS node index, and assign each PU to the domain of its nearest
conventional-DRAM node (falling back to the nearest node of any kind on
DRAM-less platforms such as the Fugaku-like model) — mirroring how real
firmware keeps default allocations on conventional memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FirmwareError
from ..hw.spec import AttachLevel, MachineSpec, NodeInstance
from ..hw.techs import MemoryKind

__all__ = ["SratCpuAffinity", "SratMemoryAffinity", "Srat", "build_srat"]


@dataclass(frozen=True)
class SratCpuAffinity:
    """One logical processor → proximity domain assignment."""

    pu: int
    proximity_domain: int


@dataclass(frozen=True)
class SratMemoryAffinity:
    """One physical memory range → proximity domain assignment."""

    proximity_domain: int
    base_address: int
    length: int
    hot_pluggable: bool = False
    non_volatile: bool = False


@dataclass(frozen=True)
class Srat:
    """A parsed/synthetic SRAT."""

    cpus: tuple[SratCpuAffinity, ...]
    memories: tuple[SratMemoryAffinity, ...]

    def domain_of_pu(self, pu: int) -> int:
        for entry in self.cpus:
            if entry.pu == pu:
                return entry.proximity_domain
        raise FirmwareError(f"SRAT has no CPU affinity entry for PU {pu}")

    def pus_of_domain(self, domain: int) -> tuple[int, ...]:
        return tuple(e.pu for e in self.cpus if e.proximity_domain == domain)

    def memory_of_domain(self, domain: int) -> tuple[SratMemoryAffinity, ...]:
        return tuple(e for e in self.memories if e.proximity_domain == domain)

    @property
    def domains(self) -> tuple[int, ...]:
        seen = {e.proximity_domain for e in self.memories}
        seen.update(e.proximity_domain for e in self.cpus)
        return tuple(sorted(seen))


def _locality_rank(cls: str) -> int:
    return {"local": 0, "cross_group": 1, "cross_package": 2}[cls]


def _cpu_domain(machine: MachineSpec, pu: int, nodes: tuple[NodeInstance, ...]) -> int:
    """Pick the proximity domain for a PU.

    Preference order: nearest DRAM node, then nearest node of any kind;
    among equally-near candidates prefer smaller attach scope (group over
    package over machine) and then lower OS index.
    """

    def sort_key(node: NodeInstance) -> tuple:
        level_rank = {
            AttachLevel.GROUP: 0,
            AttachLevel.PACKAGE: 1,
            AttachLevel.MACHINE: 2,
        }[node.attach_level]
        return (
            _locality_rank(machine.locality_class(pu, node)),
            0 if node.kind is MemoryKind.DRAM else 1,
            level_rank,
            node.os_index,
        )

    return min(nodes, key=sort_key).os_index


def build_srat(machine: MachineSpec) -> Srat:
    """Synthesize the SRAT for a machine."""
    nodes = machine.numa_nodes()
    if not nodes:
        raise FirmwareError("machine has no NUMA nodes")

    cpus = tuple(
        SratCpuAffinity(pu=pu, proximity_domain=_cpu_domain(machine, pu, nodes))
        for pu in range(machine.total_pus)
    )

    # Lay memory ranges out contiguously in OS-index order, 1 GiB aligned,
    # purely so the table has plausible physical addresses.
    memories = []
    base = 0x1_0000_0000  # leave the traditional low hole
    align = 1 << 30
    for node in sorted(nodes, key=lambda n: n.os_index):
        memories.append(
            SratMemoryAffinity(
                proximity_domain=node.os_index,
                base_address=base,
                length=node.capacity,
                hot_pluggable=node.attach_level == AttachLevel.MACHINE,
                non_volatile=node.tech.persistent,
            )
        )
        base += (node.capacity + align - 1) // align * align
    return Srat(cpus=cpus, memories=tuple(memories))
