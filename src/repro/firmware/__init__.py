"""Synthetic platform firmware.

Real platforms describe their memory subsystem to the OS through ACPI
tables: SRAT (which CPUs and memory ranges belong to which proximity
domain), SLIT (relative NUMA distances) and — since ACPI 6.2 — HMAT
(latency/bandwidth between initiator and target proximity domains, plus
memory-side cache descriptions).  Linux ≥ 5.2 digests the HMAT into sysfs
attributes that hwloc then reads (paper §IV-A1).

This package synthesizes all three tables from a
:class:`~repro.hw.spec.MachineSpec` and renders the Linux-style virtual
sysfs tree, so that the discovery code in :mod:`repro.core.discovery` can
consume the same *shape* of information as real hwloc — including the
real-world limitation that current firmware only publishes performance for
**local** accesses.
"""

from .srat import Srat, SratCpuAffinity, SratMemoryAffinity, build_srat
from .slit import Slit, build_slit
from .hmat import Hmat, HmatEntry, HmatCacheEntry, DataType, build_hmat
from .sysfs import VirtualSysfs, build_sysfs

__all__ = [
    "Srat",
    "SratCpuAffinity",
    "SratMemoryAffinity",
    "build_srat",
    "Slit",
    "build_slit",
    "Hmat",
    "HmatEntry",
    "HmatCacheEntry",
    "DataType",
    "build_hmat",
    "VirtualSysfs",
    "build_sysfs",
]
