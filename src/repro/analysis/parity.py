"""Static-vs-measured parity: the analyzer's continuous validation.

Static placement hints go stale exactly when traffic estimates drift
from reality, so the quantitative analyzer is only trustworthy while
its numbers track measurement.  This harness closes that loop without
hardware counters: it runs each app's *scalar reference kernel* under
:mod:`repro.profiler.kerneltrace` instrumentation (exact element
counts, by construction) and diffs the measured per-buffer traffic
shares against the purely static shares the symbolic footprint engine
derives from source.

The binding values for the symbolic side come from *independent*
implementations — e.g. BFS trip counts from the vectorized
:func:`repro.apps.graph500.bfs.bfs` statistics, never from the
instrumented run itself — so the comparison stays a real differential
test.  ``repro-analyze --verify-parity`` gates CI on it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..apps.graph500.bfs import bfs, bfs_kernel
from ..apps.graph500.csr import build_csr
from ..apps.graph500.generator import kronecker_edges
from ..apps.pointer_chase_app import chase_kernel
from ..apps.spmv_app import spmv_kernel
from ..apps.stream_app import triad_kernel
from ..errors import ReproError
from ..profiler.kerneltrace import CountingSequence, merge_counts, trace_kernel
from .footprint import KernelFootprint, footprint_of_function, traffic_shares

__all__ = [
    "PARITY_APPS",
    "BufferParity",
    "ParityReport",
    "ParityResult",
    "parity_for_app",
    "run_parity",
]

#: Default drift tolerance: static shares must land within 10% of the
#: measured shares (the acceptance bar of the analyzer).
DEFAULT_TOLERANCE = 0.10

#: Shares below this are noise; absolute drift under it always passes.
ABSOLUTE_FLOOR = 0.005

#: Problem sizes — small enough that the pure-Python scalar kernels
#: finish instantly, large enough that shares are not degenerate.
TRIAD_N = 2048
CHASE_STEPS = 4096
SPMV_SCALE = 7
BFS_SCALE = 7
GRAPH_EDGEFACTOR = 8


@dataclass(frozen=True)
class BufferParity:
    """One buffer's static share vs. measured share."""

    buffer: str
    static_share: float
    measured_share: float

    @property
    def drift(self) -> float:
        """Relative drift against measurement (absolute when the
        measured share is zero)."""
        if self.measured_share <= 0.0:
            return self.static_share
        return abs(self.static_share - self.measured_share) / self.measured_share

    def within(self, tolerance: float) -> bool:
        if abs(self.static_share - self.measured_share) <= ABSOLUTE_FLOOR:
            return True
        return self.drift <= tolerance


@dataclass(frozen=True)
class ParityResult:
    """Parity verdict for one app."""

    app: str
    kernel: str
    buffers: tuple[BufferParity, ...]
    tolerance: float

    @property
    def ok(self) -> bool:
        return all(b.within(self.tolerance) for b in self.buffers)

    @property
    def max_drift(self) -> float:
        return max((b.drift for b in self.buffers), default=0.0)

    def describe(self) -> str:
        status = "ok" if self.ok else "DRIFT"
        lines = [
            f"{self.app} ({self.kernel}): {status} "
            f"[max drift {self.max_drift:.1%}, tolerance {self.tolerance:.0%}]"
        ]
        for b in sorted(self.buffers, key=lambda b: -b.measured_share):
            marker = "" if b.within(self.tolerance) else "  <-- drift"
            lines.append(
                f"  {b.buffer}: static={b.static_share:.4f} "
                f"measured={b.measured_share:.4f} "
                f"drift={b.drift:.1%}{marker}"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "kernel": self.kernel,
            "ok": self.ok,
            "tolerance": self.tolerance,
            "max_drift": self.max_drift,
            "buffers": [
                {
                    "buffer": b.buffer,
                    "static_share": b.static_share,
                    "measured_share": b.measured_share,
                    "drift": b.drift,
                    "ok": b.within(self.tolerance),
                }
                for b in self.buffers
            ],
        }


@dataclass(frozen=True)
class ParityReport:
    """All apps' verdicts; the CI gate checks :attr:`ok`."""

    results: tuple[ParityResult, ...]

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def describe(self) -> str:
        parts = [r.describe() for r in self.results]
        verdict = "parity: ok" if self.ok else "parity: DRIFT DETECTED"
        return "\n".join(parts + [verdict])

    def to_dict(self) -> dict:
        return {"ok": self.ok, "apps": [r.to_dict() for r in self.results]}


def _compare(
    app: str,
    kernel: str,
    static: dict[str, float],
    measured: dict[str, float],
    tolerance: float,
) -> ParityResult:
    names = sorted(set(static) | set(measured))
    return ParityResult(
        app=app,
        kernel=kernel,
        buffers=tuple(
            BufferParity(
                buffer=name,
                static_share=static.get(name, 0.0),
                measured_share=measured.get(name, 0.0),
            )
            for name in names
        ),
        tolerance=tolerance,
    )


def _bind_guards(
    footprint: KernelFootprint, value: float
) -> dict[str, float]:
    return {symbol: value for symbol in footprint.guard_symbols()}


# ----------------------------------------------------------------------
# Per-app cases


def _parity_triad(tolerance: float) -> ParityResult:
    n = TRIAD_N
    trace = trace_kernel(
        triad_kernel,
        buffers={
            "a": [0.0] * n,
            "b": [1.0] * n,
            "c": [2.0] * n,
        },
        scalars={"scalar": 1.5, "n": n},
    )
    footprint = footprint_of_function(triad_kernel)
    static = traffic_shares(footprint, {"n": n})
    return _compare(
        "stream_triad", "triad_kernel", static, trace.traffic_shares(), tolerance
    )


def _parity_spmv(tolerance: float) -> ParityResult:
    graph = build_csr(
        kronecker_edges(SPMV_SCALE, edgefactor=GRAPH_EDGEFACTOR, seed=7)
    )
    n = graph.num_vertices
    nnz = graph.num_directed_edges
    trace = trace_kernel(
        spmv_kernel,
        buffers={
            "y": [0.0] * n,
            "vals": [1.0] * nnz,
            "cols": graph.targets.tolist(),
            "x": [1.0] * n,
            "offsets": graph.offsets.tolist(),
        },
        scalars={"n": n},
    )
    footprint = footprint_of_function(spmv_kernel)
    static = traffic_shares(
        footprint, {"n": n, "seg(offsets)": nnz}
    )
    return _compare(
        "spmv", "spmv_kernel", static, trace.traffic_shares(), tolerance
    )


def _parity_chase(tolerance: float) -> ParityResult:
    steps = CHASE_STEPS
    # A single full-cycle permutation: every step lands somewhere new.
    rng = np.random.default_rng(11)
    order = rng.permutation(steps)
    table = [0] * steps
    for here, there in zip(order, np.roll(order, -1)):
        table[int(here)] = int(there)
    trace = trace_kernel(
        chase_kernel,
        buffers={"table": table},
        scalars={"start": int(order[0]), "steps": steps},
    )
    footprint = footprint_of_function(chase_kernel)
    static = traffic_shares(footprint, {"steps": steps})
    return _compare(
        "pointer_chase", "chase_kernel", static, trace.traffic_shares(), tolerance
    )


def _parity_bfs(tolerance: float) -> ParityResult:
    graph = build_csr(
        kronecker_edges(BFS_SCALE, edgefactor=GRAPH_EDGEFACTOR, seed=3)
    )
    n = graph.num_vertices
    degrees = np.diff(graph.offsets)
    root = int(np.argmax(degrees))

    # Independent reference: the vectorized BFS provides the trip-count
    # bindings (frontier total, edges scanned, branch selectivity).
    ref = bfs(graph, root)
    visited = ref.vertices_visited
    scanned = ref.edges_scanned
    if scanned <= 0:
        raise ReproError("degenerate BFS graph: no edges scanned")

    # Measured side: drive the scalar per-level kernel to completion.
    offsets = CountingSequence(graph.offsets.tolist())
    targets = CountingSequence(graph.targets.tolist())
    parent = CountingSequence([-1] * n)
    frontier = CountingSequence([0] * n)
    next_frontier = CountingSequence([0] * n)
    parent.raw[root] = root
    frontier.raw[0] = root
    frontier_len, level = 1, 0
    while frontier_len:
        frontier_len = bfs_kernel(
            offsets, targets, parent, frontier, next_frontier, frontier_len, level
        )
        frontier, next_frontier = next_frontier, frontier
        level += 1
    scalar_visited = sum(1 for p in parent.raw if p != -1)
    if scalar_visited != visited:
        raise ReproError(
            f"scalar/vectorized BFS disagree: {scalar_visited} != {visited}"
        )
    param_buffers = {
        "offsets": "csr_offsets",
        "targets": "csr_targets",
        "parent": "parent",
        "frontier": "frontier",
        "next_frontier": "frontier",
    }
    counts = merge_counts(
        {
            "offsets": offsets,
            "targets": targets,
            "parent": parent,
            "frontier": frontier,
            "next_frontier": next_frontier,
        },
        param_buffers,
    )
    total = sum(c.total for c in counts)
    measured = {c.buffer: c.total / total for c in counts}

    footprint = footprint_of_function(bfs_kernel)
    bindings: dict[str, float] = {
        "frontier_len": float(sum(ref.frontier_sizes)),
        "seg(offsets)": float(scanned),
    }
    bindings.update(_bind_guards(footprint, (visited - 1) / scanned))
    static = traffic_shares(footprint, bindings, param_buffers=param_buffers)
    return _compare("graph500_bfs", "bfs_kernel", static, measured, tolerance)


_CASES = {
    "stream_triad": _parity_triad,
    "spmv": _parity_spmv,
    "pointer_chase": _parity_chase,
    "graph500_bfs": _parity_bfs,
}

PARITY_APPS = tuple(_CASES)


def parity_for_app(
    app: str, *, tolerance: float = DEFAULT_TOLERANCE
) -> ParityResult:
    case = _CASES.get(app)
    if case is None:
        raise ReproError(
            f"unknown parity app {app!r} (known: {sorted(_CASES)})"
        )
    return case(tolerance)


def run_parity(
    apps: tuple[str, ...] | list[str] | None = None,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> ParityReport:
    """Differentially check every (or the selected) bundled app."""
    selected = tuple(apps) if apps else PARITY_APPS
    return ParityReport(
        results=tuple(
            parity_for_app(app, tolerance=tolerance) for app in selected
        )
    )
