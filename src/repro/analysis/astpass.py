"""AST access-pattern inference: the "hint compiler" of paper §V-C.

The paper surveys compiler passes that mark "streamed/linear accesses to
contiguous buffers" as bandwidth sensitive and indirection-heavy kernels
as latency sensitive, then concludes compilers "are not ready to provide
such hints yet".  This module is that pass, over the scalar reference
kernels the apps ship: a taint analysis on subscript index expressions
classifies every buffer access site, so a kernel can go source -> hints
-> placement with no profiling run.

Recognized idioms (the rule catalog docs/ANALYSIS.md expands on):

=====================================  ==============================
subscript                              classification
=====================================  ==============================
``a[i]``, ``a[i + 1]`` (i affine)      STREAM
``a[i * k + c]``, ``range(_,_,k)``     STRIDED
``a[idx[i]]`` (one-level indirection)  RANDOM
``a[a[i]]``, ``node = table[node]``,   POINTER_CHASE
``node = node.next``
``vals[k]``, ``k in range(S[i],        STREAM (CSR row sweep: the
S[i+1])``, i affine                    segments tile the array)
``targets[e]``, ``e in range(lo, hi)`` RANDOM (gather of segments at
with data-dependent ``lo``/``hi``      data-dependent offsets)
``a[f(i)]`` (call in the index)        unknown — recorded, not guessed
=====================================  ==============================

Index **taints** drive the table: a variable is *const* (loop-invariant),
*affine* (unit-stride induction, including ``out += 1`` counters), *seq*
(globally-sequential CSR segment variable), *randseg* (segment variable
at data-dependent offsets), *data* (value loaded from a buffer — the
carrier of indirection and, when it feeds a subscript of its own source
buffer, of pointer chasing), or *opaque* (gave up).  Loop bodies are
walked to a taint fixpoint before access sites are recorded, so
loop-carried dependences like ``node = table[node]`` classify correctly.

Direction is tracked per site (loads read, stores write, augmented
assignment does both), feeding the read/write-qualified attributes of
:func:`repro.sensitivity.attribute_for_pattern`.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field

from ..errors import ReproError
from ..sim.access import PatternKind

__all__ = [
    "InferredAccess",
    "KernelAnalysis",
    "analyze_function",
    "analyze_source",
]

#: Evidence precedence: dependence beats indirection beats stride beats
#: streaming.  A buffer with both stream and random sites is random — the
#: latency-bound sites dominate its placement needs (paper §III-B2).
_KIND_RANK = {"stream": 1, "strided": 2, "random": 3, "chase": 4}

_KIND_TO_PATTERN = {
    "stream": PatternKind.STREAM,
    "strided": PatternKind.STRIDED,
    "random": PatternKind.RANDOM,
    "chase": PatternKind.POINTER_CHASE,
}


@dataclass(frozen=True)
class _Taint:
    """Index class of one variable or expression."""

    kind: str                 # const | affine | strided | seq | randseg | data | opaque
    source: str | None = None  # buffer the value was loaded from (kind="data")


_CONST = _Taint("const")
_AFFINE = _Taint("affine")
_STRIDED = _Taint("strided")
_OPAQUE = _Taint("opaque")

#: Combination precedence for ``Add``/``Sub``: the less predictable
#: operand wins (``data + const`` is still a data-dependent index).
_COMBINE_RANK = {
    "const": 0,
    "affine": 1,
    "strided": 2,
    "seq": 3,
    "randseg": 4,
    "data": 5,
    "opaque": 6,
}


@dataclass
class InferredAccess:
    """What the pass concluded about one buffer.

    ``pattern`` is ``None`` when every access site was unanalyzable
    (dynamic indexing through calls — the documented false negative) or
    loop-invariant scalar touches only.
    """

    buffer: str
    pattern: PatternKind | None
    reads: int = 0                 # loop access sites that load
    writes: int = 0                # loop access sites that store
    scalar_reads: int = 0          # loop-invariant (negligible) loads
    scalar_writes: int = 0
    lines: tuple[int, ...] = ()
    unknown_lines: tuple[int, ...] = ()

    @property
    def direction(self) -> str | None:
        """``"read"``/``"write"``/``"readwrite"``, or ``None`` if untouched."""
        reads = self.reads or self.scalar_reads
        writes = self.writes or self.scalar_writes
        if self.reads or self.writes:
            reads, writes = self.reads, self.writes
        if reads and writes:
            return "readwrite"
        if reads:
            return "read"
        if writes:
            return "write"
        return None


@dataclass
class KernelAnalysis:
    """Per-buffer inference for one kernel function."""

    name: str
    accesses: dict[str, InferredAccess] = field(default_factory=dict)

    def pattern_of(self, buffer: str) -> PatternKind | None:
        access = self.accesses.get(buffer)
        return access.pattern if access is not None else None

    def describe(self) -> str:
        lines = [f"kernel {self.name}:"]
        for name in sorted(self.accesses):
            a = self.accesses[name]
            pat = a.pattern.value if a.pattern else "unknown"
            note = (
                f" ({len(a.unknown_lines)} unanalyzable site(s))"
                if a.unknown_lines
                else ""
            )
            lines.append(f"  {name}: {pat} [{a.direction or 'untouched'}]{note}")
        return "\n".join(lines)


class _Evidence:
    """Accumulated access sites for one buffer."""

    def __init__(self, buffer: str) -> None:
        self.buffer = buffer
        self.kinds: dict[str, int] = {}
        self.reads = 0
        self.writes = 0
        self.scalar_reads = 0
        self.scalar_writes = 0
        self.lines: set[int] = set()
        self.unknown_lines: set[int] = set()

    def record(self, kind: str | None, line: int, *, read: bool, write: bool) -> None:
        if kind is None:
            self.unknown_lines.add(line)
            return
        if kind == "scalar":
            self.scalar_reads += int(read)
            self.scalar_writes += int(write)
            return
        self.kinds[kind] = self.kinds.get(kind, 0) + 1
        self.reads += int(read)
        self.writes += int(write)
        self.lines.add(line)

    def finish(self) -> InferredAccess:
        pattern = None
        if self.kinds:
            best = max(self.kinds, key=lambda k: _KIND_RANK[k])
            pattern = _KIND_TO_PATTERN[best]
        return InferredAccess(
            buffer=self.buffer,
            pattern=pattern,
            reads=self.reads,
            writes=self.writes,
            scalar_reads=self.scalar_reads,
            scalar_writes=self.scalar_writes,
            lines=tuple(sorted(self.lines)),
            unknown_lines=tuple(sorted(self.unknown_lines)),
        )


class _KernelPass:
    """One function's walk: statement interpreter over taints."""

    def __init__(self, fn: ast.FunctionDef, buffers: tuple[str, ...] | None) -> None:
        self.fn = fn
        params = tuple(a.arg for a in fn.args.args)
        self.tracked = tuple(buffers) if buffers is not None else params
        self.env: dict[str, _Taint] = {p: _CONST for p in params}
        self.evidence: dict[str, _Evidence] = {}
        self.loop_depth = 0
        self.recording = True

    # -- taint helpers -------------------------------------------------
    def _combine(self, left: _Taint, right: _Taint, op: ast.operator) -> _Taint:
        if isinstance(op, (ast.Add, ast.Sub)):
            winner = max(left, right, key=lambda t: _COMBINE_RANK[t.kind])
            return winner
        if isinstance(op, ast.Mult):
            kinds = {left.kind, right.kind}
            if kinds == {"const"}:
                return _CONST
            if kinds <= {"const", "affine"} and "affine" in kinds:
                # i * k: constant (or loop-invariant) scale => strided.
                return _STRIDED
            if "data" in kinds:
                return left if left.kind == "data" else right
            return _OPAQUE
        if isinstance(op, (ast.FloorDiv, ast.Mod)):
            # a[i // 2] repeats lines, a[i % n] wraps: both keep the
            # operand's locality class.
            return left
        return _OPAQUE

    def _eval(self, node: ast.expr) -> _Taint:
        """Taint of an expression; records buffer loads found inside it."""
        if isinstance(node, ast.Constant):
            return _CONST
        if isinstance(node, ast.Name):
            return self.env.get(node.id, _CONST)
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left)
            right = self._eval(node.right)
            return self._combine(left, right, node.op)
        if isinstance(node, ast.Compare):
            self._eval(node.left)
            for comp in node.comparators:
                self._eval(comp)
            return _CONST
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self._eval(value)
            return _CONST
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node, read=True, write=False)
        if isinstance(node, ast.Call):
            func = node.func
            reductions = ("len", "min", "max", "int", "abs")
            if isinstance(func, ast.Name) and func.id in reductions:
                for arg in node.args:
                    # len(a) etc. are loop-invariant reductions, not
                    # element accesses — do not record a load.
                    if not isinstance(arg, ast.Name):
                        self._eval(arg)
                return _CONST
            for arg in node.args:
                self._eval(arg)
            return _Taint("opaque")
        if isinstance(node, (ast.Tuple, ast.List)):
            for elt in node.elts:
                self._eval(elt)
            return _OPAQUE
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            left = self._eval(node.body)
            right = self._eval(node.orelse)
            return max(left, right, key=lambda t: _COMBINE_RANK[t.kind])
        if isinstance(node, ast.Attribute):
            self._eval(node.value)
            return _OPAQUE
        return _OPAQUE

    # -- access recording ----------------------------------------------
    def _classify_index(self, taint: _Taint, base: str) -> str | None:
        if taint.kind == "const":
            return "scalar"
        if taint.kind in ("affine", "seq"):
            return "stream"
        if taint.kind == "strided":
            return "strided"
        if taint.kind == "randseg":
            return "random"
        if taint.kind == "data":
            return "chase" if taint.source == base else "random"
        return None   # opaque / call: the documented false negative

    def _record(
        self, base: str, kind: str | None, line: int, *, read: bool, write: bool
    ) -> None:
        if not self.recording or base not in self.tracked:
            return
        ev = self.evidence.get(base)
        if ev is None:
            ev = self.evidence[base] = _Evidence(base)
        ev.record(kind, line, read=read, write=write)

    def _eval_subscript(
        self, node: ast.Subscript, *, read: bool, write: bool
    ) -> _Taint:
        base = node.value
        index_taint = self._eval(node.slice)
        if not isinstance(base, ast.Name):
            # a.field[i], matrix[i][j]: analyze inward, give up on the base.
            self._eval(base)
            return _OPAQUE
        name = base.id
        kind = self._classify_index(index_taint, name)
        self._record(name, kind, node.lineno, read=read, write=write)
        if name in self.tracked:
            return _Taint("data", name)
        return _OPAQUE

    # -- statements ----------------------------------------------------
    def _is_self_increment(self, target: str, value: ast.expr) -> bool:
        """``x = x + 1`` (or ``x = 1 + x``) with a constant int step."""
        if not isinstance(value, ast.BinOp):
            return False
        if not isinstance(value.op, (ast.Add, ast.Sub)):
            return False
        left, right = value.left, value.right
        if isinstance(left, ast.Name) and left.id == target:
            return isinstance(right, ast.Constant) and isinstance(right.value, int)
        if isinstance(right, ast.Name) and right.id == target:
            return isinstance(left, ast.Constant) and isinstance(left.value, int)
        return False

    def _assign_name(self, name: str, value: ast.expr) -> None:
        # Chained self-reference through an attribute: node = node.next —
        # the linked-list walk a subscript can't express.
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == name
            and self.loop_depth > 0
        ):
            # Attribute the chase to the buffer the cursor was loaded
            # from (node = nodes[head]; node = node.next), or to the
            # cursor itself when it is the tracked buffer.
            buffer = name
            if name not in self.tracked:
                current = self.env.get(name)
                if (
                    current is not None
                    and current.kind == "data"
                    and current.source in self.tracked
                ):
                    buffer = current.source
            self._record(buffer, "chase", value.lineno, read=True, write=False)
            self.env[name] = _Taint("data", buffer)
            return
        if self.loop_depth > 0 and self._is_self_increment(name, value):
            # A monotonic counter is a unit-stride induction variable.
            self.env[name] = _AFFINE
            return
        self.env[name] = self._eval(value)

    def _do_assign_target(self, target: ast.expr, value: ast.expr) -> None:
        """Handle one assignment target; the RHS is evaluated exactly once
        per statement (by the caller for non-Name targets, here for Names)."""
        if isinstance(target, ast.Name):
            self._assign_name(target.id, value)
        elif isinstance(target, ast.Subscript):
            self._eval_subscript(target, read=False, write=True)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                if isinstance(elt, ast.Name):
                    self.env[elt.id] = _OPAQUE
                elif isinstance(elt, ast.Subscript):
                    self._eval_subscript(elt, read=False, write=True)

    def _range_target_taint(self, call: ast.Call) -> _Taint:
        args = call.args
        step_taint = None
        if len(args) == 3:
            step = args[2]
            if isinstance(step, ast.Constant) and isinstance(step.value, int):
                step_taint = _AFFINE if abs(step.value) == 1 else _STRIDED
            else:
                step_taint = _STRIDED if self._eval(step).kind == "const" else _OPAQUE
        # CSR row sweep: range(S[i], S[i + 1]) with i affine — consecutive
        # segments tile S's companion arrays, so the inner variable is
        # globally sequential.
        bounds = args[:2] if len(args) >= 2 else args
        if (
            len(args) >= 2
            and isinstance(args[0], ast.Subscript)
            and isinstance(args[1], ast.Subscript)
            and isinstance(args[0].value, ast.Name)
            and isinstance(args[1].value, ast.Name)
            and args[0].value.id == args[1].value.id
            and ast.unparse(args[1].slice) == f"{ast.unparse(args[0].slice)} + 1"
        ):
            lo_taint = self._eval(args[0].slice)
            # Record the two bound loads with their real classification.
            for bound in (args[0], args[1]):
                self._eval(bound)
            if lo_taint.kind == "affine":
                return _Taint("seq") if step_taint is None else step_taint
            return _Taint("randseg")
        taints = [self._eval(b) for b in bounds]
        kinds = {t.kind for t in taints}
        if kinds <= {"const", "affine", "strided"}:
            return step_taint or _AFFINE
        if kinds & {"data", "seq", "randseg"}:
            # Segment bounds computed from loaded values: short runs at
            # data-dependent offsets — line-granular random.
            return _Taint("randseg")
        return _OPAQUE

    def _walk_loop_body(self, body: list[ast.stmt]) -> None:
        self.loop_depth += 1
        try:
            # Fixpoint pass: propagate loop-carried taints (node =
            # table[node]) without recording, then record once.
            was_recording = self.recording
            self.recording = False
            self._walk(body)
            self.recording = was_recording
            self._walk(body)
        finally:
            self.loop_depth -= 1

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            if any(not isinstance(t, ast.Name) for t in stmt.targets):
                self._eval(stmt.value)
            for target in stmt.targets:
                self._do_assign_target(target, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                name = stmt.target.id
                if (
                    self.loop_depth > 0
                    and isinstance(stmt.op, (ast.Add, ast.Sub))
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, int)
                ):
                    self._eval(stmt.value)
                    self.env[name] = _AFFINE
                else:
                    self.env[name] = self._combine(
                        self.env.get(name, _CONST), self._eval(stmt.value), stmt.op
                    )
            elif isinstance(stmt.target, ast.Subscript):
                self._eval(stmt.value)
                self._eval_subscript(stmt.target, read=True, write=True)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    self._assign_name(stmt.target.id, stmt.value)
                elif isinstance(stmt.target, ast.Subscript):
                    self._eval(stmt.value)
                    self._eval_subscript(stmt.target, read=False, write=True)
        elif isinstance(stmt, ast.For):
            iter_node = stmt.iter
            if (
                isinstance(iter_node, ast.Call)
                and isinstance(iter_node.func, ast.Name)
                and iter_node.func.id == "range"
            ):
                target_taint = self._range_target_taint(iter_node)
            elif isinstance(iter_node, ast.Name):
                # for x in buf: a linear sweep loading elements of buf.
                src = iter_node.id
                if src in self.tracked:
                    self._record(
                        src, "stream", iter_node.lineno, read=True, write=False
                    )
                    target_taint = _Taint("data", src)
                else:
                    target_taint = self.env.get(src, _OPAQUE)
            else:
                self._eval(iter_node)
                target_taint = _OPAQUE
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = target_taint
            self._walk_loop_body(stmt.body)
            self._walk(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._walk_loop_body(stmt.body)
            self._walk(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._walk(stmt.body)
            self._walk(stmt.orelse)
        elif isinstance(stmt, (ast.Return, ast.Expr)):
            if stmt.value is not None:
                self._eval(stmt.value)
        elif isinstance(stmt, (ast.With,)):
            self._walk(stmt.body)
        # pass / break / continue / imports: nothing to do

    def _walk(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def run(self) -> KernelAnalysis:
        self._walk(self.fn.body)
        analysis = KernelAnalysis(name=self.fn.name)
        for name in self.tracked:
            ev = self.evidence.get(name)
            if ev is not None:
                analysis.accesses[name] = ev.finish()
        return analysis


def analyze_source(
    source: str,
    *,
    kernel: str | None = None,
    buffers: tuple[str, ...] | None = None,
    filename: str = "<source>",
) -> KernelAnalysis | dict[str, KernelAnalysis]:
    """Analyze kernel function(s) in a source snippet.

    ``kernel`` selects one function by name and returns its
    :class:`KernelAnalysis`; without it, every top-level function is
    analyzed and a ``{name: analysis}`` dict is returned.  ``buffers``
    restricts which names are tracked (default: the function's
    parameters).
    """
    try:
        tree = ast.parse(textwrap.dedent(source), filename=filename)
    except SyntaxError as exc:
        raise ReproError(f"cannot parse kernel source: {exc}") from exc
    functions = {
        node.name: node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    if not functions:
        raise ReproError(f"no function definitions in {filename}")
    if kernel is not None:
        if kernel not in functions:
            raise ReproError(
                f"no kernel {kernel!r} in {filename} "
                f"(found: {sorted(functions)})"
            )
        return _KernelPass(functions[kernel], buffers).run()
    return {
        name: _KernelPass(fn, buffers).run() for name, fn in functions.items()
    }


def analyze_function(func, *, buffers: tuple[str, ...] | None = None) -> KernelAnalysis:
    """Analyze a live Python function (via its source)."""
    try:
        source = inspect.getsource(func)
    except (OSError, TypeError) as exc:
        raise ReproError(f"cannot fetch source of {func!r}: {exc}") from exc
    tree = ast.parse(textwrap.dedent(source))
    try:
        ast.increment_lineno(tree, func.__code__.co_firstlineno - 1)
    except AttributeError:
        pass
    fn = next(
        node for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    return _KernelPass(fn, buffers).run()
