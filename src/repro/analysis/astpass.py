"""AST access-pattern inference: the "hint compiler" of paper §V-C.

The paper surveys compiler passes that mark "streamed/linear accesses to
contiguous buffers" as bandwidth sensitive and indirection-heavy kernels
as latency sensitive, then concludes compilers "are not ready to provide
such hints yet".  This module is that pass, over the scalar reference
kernels the apps ship: a taint analysis on subscript index expressions
classifies every buffer access site, so a kernel can go source -> hints
-> placement with no profiling run.

Recognized idioms (the rule catalog docs/ANALYSIS.md expands on):

=====================================  ==============================
subscript                              classification
=====================================  ==============================
``a[i]``, ``a[i + 1]`` (i affine)      STREAM
``a[i * k + c]``, ``range(_,_,k)``     STRIDED
``a[idx[i]]`` (one-level indirection)  RANDOM
``a[a[i]]``, ``node = table[node]``,   POINTER_CHASE
``node = node.next``
``vals[k]``, ``k in range(S[i],        STREAM (CSR row sweep: the
S[i+1])``, i affine                    segments tile the array)
``targets[e]``, ``e in range(lo, hi)`` RANDOM (gather of segments at
with data-dependent ``lo``/``hi``      data-dependent offsets)
``a[f(i)]``, ``f`` a module-local      resolved interprocedurally: the
helper                                 callee is inline-analyzed with
                                       the caller's argument taints
``a[f(i)]``, ``f`` opaque (builtin,    unknown — recorded, not guessed
method, imported)
=====================================  ==============================

Index **taints** drive the table: a variable is *const* (loop-invariant),
*affine* (unit-stride induction, including ``out += 1`` counters), *seq*
(globally-sequential CSR segment variable), *randseg* (segment variable
at data-dependent offsets), *data* (value loaded from a buffer — the
carrier of indirection and, when it feeds a subscript of its own source
buffer, of pointer chasing), or *opaque* (gave up).  Loop bodies are
walked to a taint fixpoint before access sites are recorded, so
loop-carried dependences like ``node = table[node]`` classify correctly.

Direction is tracked per site (loads read, stores write, augmented
assignment does both), feeding the read/write-qualified attributes of
:func:`repro.sensitivity.attribute_for_pattern`.

Calls to helpers defined in the same module (or source snippet) are
resolved through a :class:`repro.analysis.callgraph.CallResolver`:
the callee is walked as a sub-pass whose parameter environment carries
the caller's argument taints, buffer arguments stay tracked under the
caller's names, and the callee's return taint flows back into the call
expression.  Recursive cycles and helpers past the resolver's depth cap
fall back to the old opaque handling.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field

from ..errors import ReproError
from ..sim.access import PatternKind
from .callgraph import CallResolver, module_resolver

__all__ = [
    "InferredAccess",
    "KernelAnalysis",
    "analyze_function",
    "analyze_source",
]

#: Evidence precedence: dependence beats indirection beats stride beats
#: streaming.  A buffer with both stream and random sites is random — the
#: latency-bound sites dominate its placement needs (paper §III-B2).
_KIND_RANK = {"stream": 1, "strided": 2, "random": 3, "chase": 4}

_KIND_TO_PATTERN = {
    "stream": PatternKind.STREAM,
    "strided": PatternKind.STRIDED,
    "random": PatternKind.RANDOM,
    "chase": PatternKind.POINTER_CHASE,
}


@dataclass(frozen=True)
class _Taint:
    """Index class of one variable or expression."""

    kind: str                 # const | affine | strided | seq | randseg | data | opaque
    source: str | None = None  # buffer the value was loaded from (kind="data")


_CONST = _Taint("const")
_AFFINE = _Taint("affine")
_STRIDED = _Taint("strided")
_OPAQUE = _Taint("opaque")

#: Combination precedence for ``Add``/``Sub``: the less predictable
#: operand wins (``data + const`` is still a data-dependent index).
_COMBINE_RANK = {
    "const": 0,
    "affine": 1,
    "strided": 2,
    "seq": 3,
    "randseg": 4,
    "data": 5,
    "opaque": 6,
}


@dataclass
class InferredAccess:
    """What the pass concluded about one buffer.

    ``pattern`` is ``None`` when every access site was unanalyzable
    (dynamic indexing through calls — the documented false negative) or
    loop-invariant scalar touches only.
    """

    buffer: str
    pattern: PatternKind | None
    reads: int = 0                 # loop access sites that load
    writes: int = 0                # loop access sites that store
    scalar_reads: int = 0          # loop-invariant (negligible) loads
    scalar_writes: int = 0
    lines: tuple[int, ...] = ()
    unknown_lines: tuple[int, ...] = ()

    @property
    def direction(self) -> str | None:
        """``"read"``/``"write"``/``"readwrite"``, or ``None`` if untouched."""
        reads = self.reads or self.scalar_reads
        writes = self.writes or self.scalar_writes
        if self.reads or self.writes:
            reads, writes = self.reads, self.writes
        if reads and writes:
            return "readwrite"
        if reads:
            return "read"
        if writes:
            return "write"
        return None


@dataclass
class KernelAnalysis:
    """Per-buffer inference for one kernel function."""

    name: str
    accesses: dict[str, InferredAccess] = field(default_factory=dict)

    def pattern_of(self, buffer: str) -> PatternKind | None:
        access = self.accesses.get(buffer)
        return access.pattern if access is not None else None

    def describe(self) -> str:
        lines = [f"kernel {self.name}:"]
        for name in sorted(self.accesses):
            a = self.accesses[name]
            pat = a.pattern.value if a.pattern else "unknown"
            note = (
                f" ({len(a.unknown_lines)} unanalyzable site(s))"
                if a.unknown_lines
                else ""
            )
            lines.append(f"  {name}: {pat} [{a.direction or 'untouched'}]{note}")
        return "\n".join(lines)


class _Evidence:
    """Accumulated access sites for one buffer."""

    def __init__(self, buffer: str) -> None:
        self.buffer = buffer
        self.kinds: dict[str, int] = {}
        self.reads = 0
        self.writes = 0
        self.scalar_reads = 0
        self.scalar_writes = 0
        self.lines: set[int] = set()
        self.unknown_lines: set[int] = set()

    def record(self, kind: str | None, line: int, *, read: bool, write: bool) -> None:
        if kind is None:
            self.unknown_lines.add(line)
            return
        if kind == "scalar":
            self.scalar_reads += int(read)
            self.scalar_writes += int(write)
            return
        self.kinds[kind] = self.kinds.get(kind, 0) + 1
        self.reads += int(read)
        self.writes += int(write)
        self.lines.add(line)

    def absorb(self, other: _Evidence) -> None:
        """Merge a callee sub-pass's evidence for the same buffer."""
        for kind, count in other.kinds.items():
            self.kinds[kind] = self.kinds.get(kind, 0) + count
        self.reads += other.reads
        self.writes += other.writes
        self.scalar_reads += other.scalar_reads
        self.scalar_writes += other.scalar_writes
        self.lines |= other.lines
        self.unknown_lines |= other.unknown_lines

    def finish(self) -> InferredAccess:
        pattern = None
        if self.kinds:
            best = max(self.kinds, key=lambda k: _KIND_RANK[k])
            pattern = _KIND_TO_PATTERN[best]
        return InferredAccess(
            buffer=self.buffer,
            pattern=pattern,
            reads=self.reads,
            writes=self.writes,
            scalar_reads=self.scalar_reads,
            scalar_writes=self.scalar_writes,
            lines=tuple(sorted(self.lines)),
            unknown_lines=tuple(sorted(self.unknown_lines)),
        )


class _KernelPass:
    """One function's walk: statement interpreter over taints."""

    def __init__(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        buffers: tuple[str, ...] | None,
        *,
        resolver: CallResolver | None = None,
    ) -> None:
        self.fn = fn
        params = tuple(a.arg for a in fn.args.args)
        self.tracked = tuple(buffers) if buffers is not None else params
        self.env: dict[str, _Taint] = {p: _CONST for p in params}
        self.evidence: dict[str, _Evidence] = {}
        self.loop_depth = 0
        self.recording = True
        self.resolver = resolver
        self.return_taint: _Taint | None = None

    # -- taint helpers -------------------------------------------------
    def _combine(self, left: _Taint, right: _Taint, op: ast.operator) -> _Taint:
        if isinstance(op, (ast.Add, ast.Sub)):
            winner = max(left, right, key=lambda t: _COMBINE_RANK[t.kind])
            return winner
        if isinstance(op, ast.Mult):
            kinds = {left.kind, right.kind}
            if kinds == {"const"}:
                return _CONST
            if kinds <= {"const", "affine"} and "affine" in kinds:
                # i * k: constant (or loop-invariant) scale => strided.
                return _STRIDED
            if "data" in kinds:
                return left if left.kind == "data" else right
            return _OPAQUE
        if isinstance(op, (ast.FloorDiv, ast.Mod)):
            # a[i // 2] repeats lines, a[i % n] wraps: both keep the
            # operand's locality class.
            return left
        return _OPAQUE

    def _eval(self, node: ast.expr) -> _Taint:
        """Taint of an expression; records buffer loads found inside it."""
        if isinstance(node, ast.Constant):
            return _CONST
        if isinstance(node, ast.Name):
            return self.env.get(node.id, _CONST)
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left)
            right = self._eval(node.right)
            return self._combine(left, right, node.op)
        if isinstance(node, ast.Compare):
            self._eval(node.left)
            for comp in node.comparators:
                self._eval(comp)
            return _CONST
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self._eval(value)
            return _CONST
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node, read=True, write=False)
        if isinstance(node, ast.Call):
            func = node.func
            reductions = ("len", "min", "max", "int", "abs")
            if isinstance(func, ast.Name):
                if func.id in reductions:
                    for arg in node.args:
                        # len(a) etc. are loop-invariant reductions, not
                        # element accesses — do not record a load.
                        if not isinstance(arg, ast.Name):
                            self._eval(arg)
                    return _CONST
                resolved = self._eval_resolved_call(node, func.id)
                if resolved is not None:
                    return resolved
            for arg in node.args:
                self._eval(arg)
            for keyword in node.keywords:
                self._eval(keyword.value)
            return _Taint("opaque")
        if isinstance(node, (ast.Tuple, ast.List)):
            for elt in node.elts:
                self._eval(elt)
            return _OPAQUE
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            left = self._eval(node.body)
            right = self._eval(node.orelse)
            return max(left, right, key=lambda t: _COMBINE_RANK[t.kind])
        if isinstance(node, ast.Attribute):
            self._eval(node.value)
            return _OPAQUE
        return _OPAQUE

    # -- access recording ----------------------------------------------
    def _classify_index(self, taint: _Taint, base: str) -> str | None:
        if taint.kind == "const":
            return "scalar"
        if taint.kind in ("affine", "seq"):
            return "stream"
        if taint.kind == "strided":
            return "strided"
        if taint.kind == "randseg":
            return "random"
        if taint.kind == "data":
            return "chase" if taint.source == base else "random"
        return None   # opaque / call: the documented false negative

    def _record(
        self, base: str, kind: str | None, line: int, *, read: bool, write: bool
    ) -> None:
        if not self.recording or base not in self.tracked:
            return
        ev = self.evidence.get(base)
        if ev is None:
            ev = self.evidence[base] = _Evidence(base)
        ev.record(kind, line, read=read, write=write)

    def _eval_subscript(
        self, node: ast.Subscript, *, read: bool, write: bool
    ) -> _Taint:
        base = node.value
        index_taint = self._eval(node.slice)
        if not isinstance(base, ast.Name):
            # a.field[i], matrix[i][j]: analyze inward, give up on the base.
            self._eval(base)
            return _OPAQUE
        name = base.id
        kind = self._classify_index(index_taint, name)
        self._record(name, kind, node.lineno, read=read, write=write)
        if name in self.tracked:
            return _Taint("data", name)
        return _OPAQUE

    # -- interprocedural calls -----------------------------------------
    def _make_subpass(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        buffer_map: dict[str, str],
        env: dict[str, _Taint],
        call: ast.Call,
    ) -> _KernelPass:
        """Build the sub-pass that walks a resolved callee.
        ``buffer_map`` maps callee parameter names to the caller buffers
        they alias.  Subclasses override this to thread extra state
        (e.g. footprint multipliers) through call boundaries."""
        sub = _KernelPass(fn, tuple(buffer_map), resolver=self.resolver)
        sub.env.update(env)
        sub.loop_depth = self.loop_depth
        sub.recording = self.recording
        return sub

    def _eval_resolved_call(self, node: ast.Call, name: str) -> _Taint | None:
        """Inline-analyze a call to a module-local helper.

        Returns the callee's return taint translated back into the
        caller's namespace, or ``None`` when the callee is unknown or
        the call shape is unsupported — the caller then falls back to
        the generic opaque path.  All shape validation happens *before*
        any argument is evaluated, so the fallback never double-records
        loads from the argument expressions.
        """
        resolver = self.resolver
        if resolver is None:
            return None
        fn = resolver.resolve(name)
        if fn is None or not resolver.can_enter(name):
            return None
        spec = fn.args
        if (
            spec.vararg is not None
            or spec.kwarg is not None
            or spec.posonlyargs
            or spec.kwonlyargs
        ):
            return None
        params = [a.arg for a in spec.args]
        if len(node.args) > len(params):
            return None
        if any(isinstance(a, ast.Starred) for a in node.args):
            return None
        bound_names = set(params[: len(node.args)])
        for keyword in node.keywords:
            if (
                keyword.arg is None
                or keyword.arg not in params
                or keyword.arg in bound_names
            ):
                return None
            bound_names.add(keyword.arg)
        required = params[: len(params) - len(spec.defaults)]
        if any(param not in bound_names for param in required):
            # The call is ill-formed (missing a required argument);
            # don't pretend to analyze it.
            return None
        # Shape is supported: evaluate each argument exactly once
        # (recording any loads inside the argument expressions) and
        # bind parameters.  Unbound trailing parameters take their
        # defaults, which are loop-invariant from the callee's view.
        bound: dict[str, tuple[ast.expr, _Taint]] = {}
        for param, arg in zip(params, node.args):
            bound[param] = (arg, self._eval(arg))
        for keyword in node.keywords:
            if keyword.arg is not None:
                bound[keyword.arg] = (keyword.value, self._eval(keyword.value))
        # Caller buffers passed by name stay tracked inside the callee;
        # their evidence flows back under the caller's buffer names.
        buffer_map: dict[str, str] = {
            param: arg.id
            for param, (arg, _) in bound.items()
            if isinstance(arg, ast.Name) and arg.id in self.tracked
        }
        reverse: dict[str, str] = {}
        for param, buffer in buffer_map.items():
            reverse.setdefault(buffer, param)
        env: dict[str, _Taint] = {p: _CONST for p in params}
        for param, (_, taint) in bound.items():
            if taint.kind == "data" and taint.source is not None:
                mapped = reverse.get(taint.source)
                # Rename data sources into the callee's namespace; a
                # source not passed along is mangled so it can never
                # collide with a callee-local buffer name (which would
                # fake a pointer chase).
                renamed = (
                    mapped if mapped is not None else f"<caller:{taint.source}>"
                )
                taint = _Taint("data", renamed)
            env[param] = taint
        sub = self._make_subpass(fn, buffer_map, env, node)
        with resolver.entered(name):
            sub._walk(fn.body)
        for param, callee_evidence in sub.evidence.items():
            buffer = buffer_map.get(param)
            if buffer is None:
                continue
            mine = self.evidence.get(buffer)
            if mine is None:
                mine = self.evidence[buffer] = _Evidence(buffer)
            mine.absorb(callee_evidence)
        ret = sub.return_taint if sub.return_taint is not None else _CONST
        if ret.kind == "data" and ret.source is not None:
            if ret.source in buffer_map:
                return _Taint("data", buffer_map[ret.source])
            if ret.source.startswith("<caller:"):
                return _Taint("data", ret.source[len("<caller:"):-1])
            # Data loaded from a callee-local container: indirection
            # with no caller-visible source.
            return _OPAQUE
        return ret

    # -- statements ----------------------------------------------------
    def _is_self_increment(self, target: str, value: ast.expr) -> bool:
        """``x = x + 1`` (or ``x = 1 + x``) with a constant int step."""
        if not isinstance(value, ast.BinOp):
            return False
        if not isinstance(value.op, (ast.Add, ast.Sub)):
            return False
        left, right = value.left, value.right
        if isinstance(left, ast.Name) and left.id == target:
            return isinstance(right, ast.Constant) and isinstance(right.value, int)
        if isinstance(right, ast.Name) and right.id == target:
            return isinstance(left, ast.Constant) and isinstance(left.value, int)
        return False

    def _assign_name(self, name: str, value: ast.expr) -> None:
        # Chained self-reference through an attribute: node = node.next —
        # the linked-list walk a subscript can't express.
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == name
            and self.loop_depth > 0
        ):
            # Attribute the chase to the buffer the cursor was loaded
            # from (node = nodes[head]; node = node.next), or to the
            # cursor itself when it is the tracked buffer.
            buffer = name
            if name not in self.tracked:
                current = self.env.get(name)
                if (
                    current is not None
                    and current.kind == "data"
                    and current.source in self.tracked
                ):
                    buffer = current.source
            self._record(buffer, "chase", value.lineno, read=True, write=False)
            self.env[name] = _Taint("data", buffer)
            return
        if self.loop_depth > 0 and self._is_self_increment(name, value):
            # A monotonic counter is a unit-stride induction variable.
            self.env[name] = _AFFINE
            return
        self.env[name] = self._eval(value)

    def _note_mutation(self, name: str) -> None:
        """Hook: ``name`` was rebound through a path :meth:`_assign_name`
        does not see (tuple unpacking, augmented assignment).  Subclasses
        tracking symbolic values override this to invalidate them."""

    def _do_assign_target(self, target: ast.expr, value: ast.expr) -> None:
        """Handle one assignment target; the RHS is evaluated exactly once
        per statement (by the caller for non-Name targets, here for Names)."""
        if isinstance(target, ast.Name):
            self._assign_name(target.id, value)
        elif isinstance(target, ast.Subscript):
            self._eval_subscript(target, read=False, write=True)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                if isinstance(elt, ast.Name):
                    self.env[elt.id] = _OPAQUE
                    self._note_mutation(elt.id)
                elif isinstance(elt, ast.Subscript):
                    self._eval_subscript(elt, read=False, write=True)

    def _range_target_taint(self, call: ast.Call) -> _Taint:
        args = call.args
        step_taint = None
        if len(args) == 3:
            step = args[2]
            if isinstance(step, ast.Constant) and isinstance(step.value, int):
                step_taint = _AFFINE if abs(step.value) == 1 else _STRIDED
            else:
                step_taint = _STRIDED if self._eval(step).kind == "const" else _OPAQUE
        # CSR row sweep: range(S[i], S[i + 1]) with i affine — consecutive
        # segments tile S's companion arrays, so the inner variable is
        # globally sequential.
        bounds = args[:2] if len(args) >= 2 else args
        if (
            len(args) >= 2
            and isinstance(args[0], ast.Subscript)
            and isinstance(args[1], ast.Subscript)
            and isinstance(args[0].value, ast.Name)
            and isinstance(args[1].value, ast.Name)
            and args[0].value.id == args[1].value.id
            and ast.unparse(args[1].slice) == f"{ast.unparse(args[0].slice)} + 1"
        ):
            lo_taint = self._eval(args[0].slice)
            # Record the two bound loads with their real classification.
            for bound in (args[0], args[1]):
                self._eval(bound)
            if lo_taint.kind == "affine":
                return _Taint("seq") if step_taint is None else step_taint
            return _Taint("randseg")
        taints = [self._eval(b) for b in bounds]
        kinds = {t.kind for t in taints}
        if kinds <= {"const", "affine", "strided"}:
            return step_taint or _AFFINE
        if kinds & {"data", "seq", "randseg"}:
            # Segment bounds computed from loaded values: short runs at
            # data-dependent offsets — line-granular random.
            return _Taint("randseg")
        return _OPAQUE

    def _walk_loop_body(self, body: list[ast.stmt]) -> None:
        self.loop_depth += 1
        try:
            # Fixpoint pass: propagate loop-carried taints (node =
            # table[node]) without recording, then record once.
            was_recording = self.recording
            self.recording = False
            self._walk(body)
            self.recording = was_recording
            self._walk(body)
        finally:
            self.loop_depth -= 1

    def _for_iter_taint(self, stmt: ast.For) -> _Taint:
        """Taint of the loop target implied by the iterable."""
        iter_node = stmt.iter
        if (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id == "range"
        ):
            return self._range_target_taint(iter_node)
        if isinstance(iter_node, ast.Name):
            # for x in buf: a linear sweep loading elements of buf.
            src = iter_node.id
            if src in self.tracked:
                self._record(src, "stream", iter_node.lineno, read=True, write=False)
                return _Taint("data", src)
            return self.env.get(src, _OPAQUE)
        self._eval(iter_node)
        return _OPAQUE

    def _for_stmt(self, stmt: ast.For) -> None:
        target_taint = self._for_iter_taint(stmt)
        if isinstance(stmt.target, ast.Name):
            self.env[stmt.target.id] = target_taint
        self._walk_loop_body(stmt.body)
        self._walk(stmt.orelse)

    def _while_stmt(self, stmt: ast.While) -> None:
        self._eval(stmt.test)
        self._walk_loop_body(stmt.body)
        self._walk(stmt.orelse)

    def _if_stmt(self, stmt: ast.If) -> None:
        self._eval(stmt.test)
        self._walk(stmt.body)
        self._walk(stmt.orelse)

    def _return_stmt(self, stmt: ast.Return) -> None:
        taint = self._eval(stmt.value) if stmt.value is not None else _CONST
        # Multiple returns widen to the least predictable one.
        if (
            self.return_taint is None
            or _COMBINE_RANK[taint.kind] > _COMBINE_RANK[self.return_taint.kind]
        ):
            self.return_taint = taint

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            if any(not isinstance(t, ast.Name) for t in stmt.targets):
                self._eval(stmt.value)
            for target in stmt.targets:
                self._do_assign_target(target, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                name = stmt.target.id
                if (
                    self.loop_depth > 0
                    and isinstance(stmt.op, (ast.Add, ast.Sub))
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, int)
                ):
                    self._eval(stmt.value)
                    self.env[name] = _AFFINE
                    self._note_mutation(name)
                else:
                    self.env[name] = self._combine(
                        self.env.get(name, _CONST), self._eval(stmt.value), stmt.op
                    )
                    self._note_mutation(name)
            elif isinstance(stmt.target, ast.Subscript):
                self._eval(stmt.value)
                self._eval_subscript(stmt.target, read=True, write=True)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    self._assign_name(stmt.target.id, stmt.value)
                elif isinstance(stmt.target, ast.Subscript):
                    self._eval(stmt.value)
                    self._eval_subscript(stmt.target, read=False, write=True)
        elif isinstance(stmt, ast.For):
            self._for_stmt(stmt)
        elif isinstance(stmt, ast.While):
            self._while_stmt(stmt)
        elif isinstance(stmt, ast.If):
            self._if_stmt(stmt)
        elif isinstance(stmt, ast.Return):
            self._return_stmt(stmt)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, (ast.With,)):
            self._walk(stmt.body)
        # pass / break / continue / imports: nothing to do

    def _walk(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def run(self) -> KernelAnalysis:
        if self.resolver is not None:
            # Guard the pass's own name so self-recursive kernels fall
            # back to the opaque path instead of inlining forever.
            with self.resolver.entered(self.fn.name):
                self._walk(self.fn.body)
        else:
            self._walk(self.fn.body)
        analysis = KernelAnalysis(name=self.fn.name)
        for name in self.tracked:
            ev = self.evidence.get(name)
            if ev is not None:
                analysis.accesses[name] = ev.finish()
        return analysis


def analyze_source(
    source: str,
    *,
    kernel: str | None = None,
    buffers: tuple[str, ...] | None = None,
    filename: str = "<source>",
    interprocedural: bool = True,
) -> KernelAnalysis | dict[str, KernelAnalysis]:
    """Analyze kernel function(s) in a source snippet.

    ``kernel`` selects one function by name and returns its
    :class:`KernelAnalysis`; without it, every top-level function is
    analyzed and a ``{name: analysis}`` dict is returned.  ``buffers``
    restricts which names are tracked (default: the function's
    parameters).  With ``interprocedural`` (the default), calls between
    the snippet's top-level functions are resolved and inline-analyzed;
    pass ``False`` to force the old intraprocedural behavior.
    """
    try:
        tree = ast.parse(textwrap.dedent(source), filename=filename)
    except SyntaxError as exc:
        raise ReproError(f"cannot parse kernel source: {exc}") from exc
    functions = {
        node.name: node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    if not functions:
        raise ReproError(f"no function definitions in {filename}")
    resolver = CallResolver(functions) if interprocedural else None
    if kernel is not None:
        if kernel not in functions:
            raise ReproError(
                f"no kernel {kernel!r} in {filename} "
                f"(found: {sorted(functions)})"
            )
        return _KernelPass(functions[kernel], buffers, resolver=resolver).run()
    return {
        name: _KernelPass(fn, buffers, resolver=resolver).run()
        for name, fn in functions.items()
    }


def analyze_function(
    func,
    *,
    buffers: tuple[str, ...] | None = None,
    interprocedural: bool = True,
) -> KernelAnalysis:
    """Analyze a live Python function (via its source).

    With ``interprocedural`` (the default), calls to top-level helpers
    of the function's own module are resolved and inline-analyzed.
    """
    try:
        source = inspect.getsource(func)
    except (OSError, TypeError) as exc:
        raise ReproError(f"cannot fetch source of {func!r}: {exc}") from exc
    tree = ast.parse(textwrap.dedent(source))
    try:
        ast.increment_lineno(tree, func.__code__.co_firstlineno - 1)
    except AttributeError:
        pass
    fn = next(
        node for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    resolver = module_resolver(func) if interprocedural else None
    return _KernelPass(fn, buffers, resolver=resolver).run()
