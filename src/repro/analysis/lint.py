"""repro-lint: static validation of kernels, plans, and allocation sites.

Three families of checks, none of which runs the simulator:

* **Kernel rules (A…)** diff what :mod:`repro.analysis.astpass` infers
  from each app's reference kernel against the descriptors the app's
  traffic model declares — a mismatch means either the kernel or its
  model drifted.
* **Plan rules (P…)** validate a placement-plan JSON (buffers, node
  assignment, attribute annotations, fallback overrides) against a
  platform: unknown names, capacity-infeasible assignments, broken
  fallback chains.
* **Source rules (S…)** scan ``.py`` files for ``mem_alloc`` calls —
  and the request lists of ``mem_alloc_many`` batches — whose
  string-literal attribute is not registered on the target platform.
* **Footprint rules (F…)** evaluate the symbolic footprint of each
  registered kernel at its declared problem scale and cross-check the
  quantities: estimated working sets against the platform's capacity,
  and derived traffic shares against the shares the declared
  descriptors encode.

Each finding is a :class:`LintIssue` with a stable rule id, so CI can
gate on errors while warnings document known false negatives.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path

from ..alloc.fallback import attribute_fallback_chain
from ..errors import ReproError, UnknownAttributeError

__all__ = [
    "FOOTPRINT_TOLERANCE",
    "LintIssue",
    "LintReport",
    "RULES",
    "rule_catalog",
    "lint_app_kernels",
    "lint_kernel_footprints",
    "lint_plan",
    "lint_plan_file",
    "lint_source",
    "lint_paths",
]

#: F002 gate: derived traffic shares must land within 10% of declared.
FOOTPRINT_TOLERANCE = 0.10

#: Shares this close in absolute terms never gate (noise floor).
_SHARE_FLOOR = 0.005

#: rule id -> (severity, one-line description).
RULES: dict[str, tuple[str, str]] = {
    "A001": (
        "error",
        "pattern-mismatch: inferred access pattern differs from the "
        "declared descriptor",
    ),
    "A002": (
        "warning",
        "direction-mismatch: inferred read/write direction differs from "
        "the declared descriptor",
    ),
    "A003": (
        "error",
        "undeclared-buffer: buffer present on only one side of the "
        "inference/declaration diff",
    ),
    "A004": (
        "warning",
        "unknown-pattern: the pass could not classify the buffer "
        "(documented false negative)",
    ),
    "A005": (
        "warning",
        "partial-classification: buffer classified, but some access "
        "sites stayed unanalyzable (the pattern may be incomplete)",
    ),
    "F001": (
        "error",
        "capacity-infeasible-footprint: estimated working set at the "
        "declared scale exceeds the platform's total capacity",
    ),
    "F002": (
        "error",
        "traffic-share-drift: derived traffic share differs from the "
        "declared descriptor's share beyond tolerance",
    ),
    "P001": (
        "error",
        "unknown-buffer: plan assignment/attribute names a buffer the "
        "plan does not size",
    ),
    "P002": (
        "error",
        "unknown-node: plan assigns a buffer to a NUMA node the platform "
        "does not have",
    ),
    "P003": (
        "error",
        "capacity-infeasible: bytes assigned to a node exceed its capacity",
    ),
    "P004": (
        "error",
        "unknown-attribute: plan annotates a buffer with an unregistered "
        "attribute name",
    ),
    "P005": (
        "error",
        "broken-fallback-chain: no member of an attribute's fallback "
        "chain has values on the platform",
    ),
    "S001": (
        "error",
        "unknown-attribute-literal: mem_alloc call passes an attribute "
        "name the platform does not register",
    ),
}


def rule_catalog() -> str:
    """Human-readable rule table for ``repro-lint --list-rules``."""
    lines = ["rule  severity  description"]
    for rule_id, (severity, description) in sorted(RULES.items()):
        lines.append(f"{rule_id}  {severity:8}  {description}")
    return "\n".join(lines)


@dataclass(frozen=True)
class LintIssue:
    """One finding: where, which rule, what happened."""

    rule: str
    message: str
    location: str = ""

    @property
    def severity(self) -> str:
        return RULES[self.rule][0]

    def __str__(self) -> str:
        where = f"{self.location}: " if self.location else ""
        return f"{where}{self.rule} [{self.severity}] {self.message}"


@dataclass
class LintReport:
    """Accumulated findings from one lint run.

    ``stats`` carries quantitative side-channels of the run — most
    importantly ``unknown_sites``, the number of access sites the
    static pass could not analyze across all linted kernels, which
    bounds how much the A-rule diff can be trusted.
    """

    issues: list[LintIssue] = field(default_factory=list)
    stats: dict[str, int] = field(default_factory=dict)

    def add(self, rule: str, message: str, location: str = "") -> None:
        if rule not in RULES:
            raise ReproError(f"unknown lint rule {rule!r}")
        self.issues.append(LintIssue(rule=rule, message=message, location=location))

    def bump(self, stat: str, amount: int = 1) -> None:
        self.stats[stat] = self.stats.get(stat, 0) + amount

    def extend(self, other: "LintReport") -> None:
        self.issues.extend(other.issues)
        for stat, amount in other.stats.items():
            self.bump(stat, amount)

    @property
    def errors(self) -> list[LintIssue]:
        return [i for i in self.issues if i.severity == "error"]

    @property
    def warnings(self) -> list[LintIssue]:
        return [i for i in self.issues if i.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when nothing gating was found (warnings allowed)."""
        return not self.errors

    def render(self) -> str:
        suffix = ""
        unknown = self.stats.get("unknown_sites", 0)
        if unknown:
            suffix = f" [{unknown} unanalyzable site(s)]"
        if not self.issues:
            return f"repro-lint: clean{suffix}"
        lines = [str(issue) for issue in self.issues]
        lines.append(
            f"repro-lint: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s){suffix}"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "stats": dict(self.stats),
            "issues": [
                {
                    "rule": i.rule,
                    "severity": i.severity,
                    "message": i.message,
                    "location": i.location,
                }
                for i in self.issues
            ],
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


# ----------------------------------------------------------------------
# Kernel rules (A...): inference vs declaration


def _declared_direction(access) -> str:
    reads = access.bytes_read > 0
    writes = access.bytes_written > 0
    if reads and writes:
        return "readwrite"
    return "read" if reads else "write"


def lint_app_kernels(kernels=None) -> LintReport:
    """Diff every registered app kernel against its declared descriptors."""
    from .kernels import app_kernels

    report = LintReport()
    for spec in kernels if kernels is not None else app_kernels():
        where = f"{spec.name} ({Path(spec.source_file).name})"
        inferred = spec.inferred()
        declared = spec.declared_by_buffer()
        for buffer in sorted(set(inferred) - set(declared)):
            report.add(
                "A003",
                f"kernel touches buffer {buffer!r} but the traffic model "
                "declares no descriptor for it",
                where,
            )
        for buffer in sorted(set(declared) - set(inferred)):
            report.add(
                "A003",
                f"traffic model declares buffer {buffer!r} but the kernel "
                "source never touches it",
                where,
            )
        for buffer in sorted(set(inferred) & set(declared)):
            inf, dec = inferred[buffer], declared[buffer]
            report.bump("unknown_sites", len(inf.unknown_lines))
            if inf.pattern is None:
                report.add(
                    "A004",
                    f"buffer {buffer!r}: pattern not classifiable "
                    f"(unanalyzable sites at lines {list(inf.unknown_lines)}); "
                    f"declared {dec.pattern.value}",
                    where,
                )
                continue
            if inf.unknown_lines:
                report.add(
                    "A005",
                    f"buffer {buffer!r}: classified {inf.pattern.value}, but "
                    f"{len(inf.unknown_lines)} site(s) at lines "
                    f"{list(inf.unknown_lines)} stayed unanalyzable",
                    where,
                )
            if inf.pattern is not dec.pattern:
                report.add(
                    "A001",
                    f"buffer {buffer!r}: inferred {inf.pattern.value}, "
                    f"declared {dec.pattern.value}",
                    where,
                )
            inf_dir = inf.direction
            dec_dir = _declared_direction(dec)
            if inf_dir is not None and inf_dir != dec_dir:
                report.add(
                    "A002",
                    f"buffer {buffer!r}: inferred direction {inf_dir}, "
                    f"declared {dec_dir}",
                    where,
                )
    return report


# ----------------------------------------------------------------------
# Footprint rules (F...): symbolic estimates vs declaration and platform


def lint_kernel_footprints(
    kernels=None,
    *,
    platform: str = "xeon-cascadelake-1lm",
    tolerance: float = FOOTPRINT_TOLERANCE,
    machine=None,
) -> LintReport:
    """Quantitatively cross-check each registered kernel's footprint.

    For every kernel carrying registry ``bindings``, the symbolic
    footprint is evaluated at the declared problem scale and two
    invariants are gated:

    * **F001** — the compiled phases' estimated working sets must fit
      the platform's total memory capacity (an infeasible declaration
      can never be placed);
    * **F002** — the derived per-buffer traffic shares must land within
      ``tolerance`` of the shares the declared descriptors encode
      (beyond it, source and traffic model have drifted apart).
    """
    from .footprint import phases_from_footprint
    from .kernels import app_kernels

    report = LintReport()
    if machine is None:
        machine, _ = _platform_stack(platform)
    total_capacity = sum(n.capacity for n in machine.numa_nodes())

    for spec in kernels if kernels is not None else app_kernels():
        where = f"{spec.name} ({Path(spec.source_file).name})"
        if spec.bindings is None:
            continue
        footprint = spec.footprint()
        derived = spec.derived_shares() or {}
        declared = spec.declared_shares()
        for buffer in sorted(declared):
            declared_share = declared[buffer]
            derived_share = derived.get(buffer, 0.0)
            if abs(derived_share - declared_share) <= _SHARE_FLOOR:
                continue
            drift = (
                abs(derived_share - declared_share) / declared_share
                if declared_share > 0
                else derived_share
            )
            if drift > tolerance:
                report.add(
                    "F002",
                    f"buffer {buffer!r}: derived traffic share "
                    f"{derived_share:.4f} vs declared {declared_share:.4f} "
                    f"({drift:.1%} drift, tolerance {tolerance:.0%})",
                    where,
                )
        if spec.buffer_sizes:
            phases = phases_from_footprint(
                footprint,
                bindings=spec.footprint_bindings(footprint),
                buffer_sizes=spec.buffer_sizes,
                param_buffers=spec.param_buffers,
                name_prefix=spec.name,
            )
            for phase in phases:
                working_set = sum(a.working_set for a in phase.accesses)
                if working_set > total_capacity:
                    report.add(
                        "F001",
                        f"phase {phase.name!r}: estimated working set "
                        f"{working_set / 1e9:.2f} GB exceeds {platform} "
                        f"total capacity {total_capacity / 1e9:.2f} GB",
                        where,
                    )
    return report


# ----------------------------------------------------------------------
# Plan rules (P...): placement-plan JSON vs platform


def _platform_stack(platform: str):
    from .. import quick_setup

    setup = quick_setup(platform)
    return setup.machine, setup.memattrs


def lint_plan(
    plan: dict,
    *,
    platform: str | None = None,
    location: str = "",
    machine=None,
    memattrs=None,
) -> LintReport:
    """Validate one placement plan without simulating it.

    Plan schema (all sections optional except ``buffers``)::

        {
          "platform": "xeon-cascadelake-1lm",
          "buffers": {"name": bytes, ...},
          "assignment": {"name": node | {"node": fraction, ...}, ...},
          "attributes": {"name": "Attribute", ...},
          "fallback_overrides": {"Attribute": ["Other", ...], ...}
        }
    """
    report = LintReport()
    platform = plan.get("platform") or platform
    if machine is None or memattrs is None:
        if not platform:
            report.add("P001", "plan names no platform and none was given", location)
            return report
        machine, memattrs = _platform_stack(platform)
    nodes = {n.os_index: n for n in machine.numa_nodes()}

    buffers = plan.get("buffers", {})
    assignment = plan.get("assignment", {})
    attributes = plan.get("attributes", {})
    overrides = {
        k: tuple(v) for k, v in plan.get("fallback_overrides", {}).items()
    }

    sections = (("assignment", assignment), ("attributes", attributes))
    for section_name, section in sections:
        for buffer in sorted(set(section) - set(buffers)):
            report.add(
                "P001",
                f"{section_name} names buffer {buffer!r} not present in 'buffers'",
                location,
            )

    # P002/P003: node existence and capacity feasibility.
    per_node: dict[int, float] = {}
    for buffer, target in sorted(assignment.items()):
        if buffer not in buffers:
            continue
        size = buffers[buffer]
        shares = target if isinstance(target, dict) else {target: 1.0}
        for node_key, fraction in shares.items():
            node_index = int(node_key)
            if node_index not in nodes:
                report.add(
                    "P002",
                    f"buffer {buffer!r} assigned to node {node_index}, but "
                    f"{platform} only has nodes {sorted(nodes)}",
                    location,
                )
                continue
            per_node[node_index] = per_node.get(node_index, 0.0) + size * fraction
    for node_index, assigned in sorted(per_node.items()):
        capacity = nodes[node_index].capacity
        if assigned > capacity:
            report.add(
                "P003",
                f"node {node_index}: {assigned / 1e9:.2f} GB assigned exceeds "
                f"{capacity / 1e9:.2f} GB capacity",
                location,
            )

    # P004/P005: attribute names and their fallback chains.
    for attr_name in sorted(
        {*(attributes[b] for b in attributes if b in buffers), *overrides}
    ):
        try:
            memattrs.get_by_name(attr_name)
        except UnknownAttributeError:
            report.add(
                "P004",
                f"attribute {attr_name!r} is not registered on {platform}",
                location,
            )
            continue
        chain = attribute_fallback_chain(
            memattrs, attr_name, overrides=overrides or None
        )
        if not any(
            attr.name == "Capacity" or memattrs.has_values(attr) for attr in chain
        ):
            report.add(
                "P005",
                f"attribute {attr_name!r}: no member of fallback chain "
                f"{[a.name for a in chain]} has values on {platform}",
                location,
            )
    for attr_name, chain_names in sorted(overrides.items()):
        for name in chain_names:
            try:
                memattrs.get_by_name(name)
            except UnknownAttributeError:
                report.add(
                    "P005",
                    f"fallback override for {attr_name!r} references unknown "
                    f"attribute {name!r} (entry would be silently skipped)",
                    location,
                )
    return report


def lint_plan_file(path: str | Path, *, platform: str | None = None) -> LintReport:
    path = Path(path)
    try:
        plan = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        report = LintReport()
        report.add("P001", f"unreadable plan: {exc}", str(path))
        return report
    if not isinstance(plan, dict):
        report = LintReport()
        report.add("P001", "plan JSON must be an object", str(path))
        return report
    return lint_plan(plan, platform=platform, location=str(path))


# ----------------------------------------------------------------------
# Source rules (S...): attribute literals at allocation sites

_ALLOC_CALLS = {"mem_alloc"}
_BATCH_ALLOC_CALLS = {"mem_alloc_many"}


def _call_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _string_const(node: ast.expr | None):
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _batch_attribute_literals(call: ast.Call):
    """Yield (lineno, name) from a ``mem_alloc_many`` request list.

    Requests mirror :class:`~repro.alloc.allocator.AllocRequest`:
    ``AllocRequest(...)`` constructor calls, dicts with an
    ``"attribute"`` key, or (size, attribute, ...) tuples/lists.
    """
    requests = call.args[0] if call.args else None
    if requests is None:
        for kw in call.keywords:
            if kw.arg == "requests":
                requests = kw.value
    if not isinstance(requests, (ast.List, ast.Tuple)):
        return
    for element in requests.elts:
        if isinstance(element, ast.Call) and _call_name(element) == "AllocRequest":
            candidates = [element.args[1]] if len(element.args) >= 2 else []
            candidates.extend(
                kw.value for kw in element.keywords if kw.arg == "attribute"
            )
        elif isinstance(element, ast.Dict):
            candidates = [
                value
                for key, value in zip(element.keys, element.values)
                if _string_const(key) == "attribute"
            ]
        elif isinstance(element, (ast.Tuple, ast.List)) and len(element.elts) >= 2:
            candidates = [element.elts[1]]
        else:
            continue
        for candidate in candidates:
            name = _string_const(candidate)
            if name is not None:
                yield element.lineno, name


def _attribute_literals(tree: ast.AST):
    """Yield (lineno, name) for string-literal attributes at allocation
    sites: ``mem_alloc`` calls and ``mem_alloc_many`` request batches."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func_name = _call_name(node)
        if func_name in _BATCH_ALLOC_CALLS:
            yield from _batch_attribute_literals(node)
            continue
        if func_name not in _ALLOC_CALLS:
            continue
        candidates = []
        if len(node.args) >= 2:
            candidates.append(node.args[1])
        for kw in node.keywords:
            if kw.arg == "attribute":
                candidates.append(kw.value)
        for arg in candidates:
            name = _string_const(arg)
            if name is not None:
                yield node.lineno, name


def lint_source(
    path: str | Path,
    *,
    platform: str = "xeon-cascadelake-1lm",
    memattrs=None,
) -> LintReport:
    """Validate attribute-name literals at ``mem_alloc`` call sites."""
    path = Path(path)
    report = LintReport()
    if memattrs is None:
        _, memattrs = _platform_stack(platform)
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except (OSError, SyntaxError) as exc:
        report.add("S001", f"unparseable source: {exc}", str(path))
        return report
    for lineno, name in _attribute_literals(tree):
        try:
            memattrs.get_by_name(name)
        except UnknownAttributeError:
            report.add(
                "S001",
                f"mem_alloc attribute {name!r} is not registered on the platform",
                f"{path}:{lineno}",
            )
    return report


def lint_paths(
    paths,
    *,
    platform: str = "xeon-cascadelake-1lm",
) -> LintReport:
    """Lint files and directories: ``.json`` as plans, ``.py`` for S-rules."""
    report = LintReport()
    _, memattrs = _platform_stack(platform)
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
            files.extend(sorted(p.rglob("*.json")))
        else:
            files.append(p)
    for f in files:
        if f.suffix == ".json":
            report.extend(lint_plan_file(f, platform=platform))
        elif f.suffix == ".py":
            report.extend(lint_source(f, platform=platform, memattrs=memattrs))
        else:
            report.add("P001", "not a .py or .json file", str(f))
    return report
