"""repro-lint: static validation of kernels, plans, and allocation sites.

Three families of checks, none of which runs the simulator:

* **Kernel rules (A…)** diff what :mod:`repro.analysis.astpass` infers
  from each app's reference kernel against the descriptors the app's
  traffic model declares — a mismatch means either the kernel or its
  model drifted.
* **Plan rules (P…)** validate a placement-plan JSON (buffers, node
  assignment, attribute annotations, fallback overrides) against a
  platform: unknown names, capacity-infeasible assignments, broken
  fallback chains.
* **Source rules (S…)** scan ``.py`` files for ``mem_alloc`` calls whose
  string-literal attribute is not registered on the target platform.

Each finding is a :class:`LintIssue` with a stable rule id, so CI can
gate on errors while warnings document known false negatives.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path

from ..alloc.fallback import attribute_fallback_chain
from ..errors import ReproError, UnknownAttributeError

__all__ = [
    "LintIssue",
    "LintReport",
    "RULES",
    "rule_catalog",
    "lint_app_kernels",
    "lint_plan",
    "lint_plan_file",
    "lint_source",
    "lint_paths",
]

#: rule id -> (severity, one-line description).
RULES: dict[str, tuple[str, str]] = {
    "A001": (
        "error",
        "pattern-mismatch: inferred access pattern differs from the "
        "declared descriptor",
    ),
    "A002": (
        "warning",
        "direction-mismatch: inferred read/write direction differs from "
        "the declared descriptor",
    ),
    "A003": (
        "error",
        "undeclared-buffer: buffer present on only one side of the "
        "inference/declaration diff",
    ),
    "A004": (
        "warning",
        "unknown-pattern: the pass could not classify the buffer "
        "(documented false negative)",
    ),
    "P001": (
        "error",
        "unknown-buffer: plan assignment/attribute names a buffer the "
        "plan does not size",
    ),
    "P002": (
        "error",
        "unknown-node: plan assigns a buffer to a NUMA node the platform "
        "does not have",
    ),
    "P003": (
        "error",
        "capacity-infeasible: bytes assigned to a node exceed its capacity",
    ),
    "P004": (
        "error",
        "unknown-attribute: plan annotates a buffer with an unregistered "
        "attribute name",
    ),
    "P005": (
        "error",
        "broken-fallback-chain: no member of an attribute's fallback "
        "chain has values on the platform",
    ),
    "S001": (
        "error",
        "unknown-attribute-literal: mem_alloc call passes an attribute "
        "name the platform does not register",
    ),
}


def rule_catalog() -> str:
    """Human-readable rule table for ``repro-lint --list-rules``."""
    lines = ["rule  severity  description"]
    for rule_id, (severity, description) in sorted(RULES.items()):
        lines.append(f"{rule_id}  {severity:8}  {description}")
    return "\n".join(lines)


@dataclass(frozen=True)
class LintIssue:
    """One finding: where, which rule, what happened."""

    rule: str
    message: str
    location: str = ""

    @property
    def severity(self) -> str:
        return RULES[self.rule][0]

    def __str__(self) -> str:
        where = f"{self.location}: " if self.location else ""
        return f"{where}{self.rule} [{self.severity}] {self.message}"


@dataclass
class LintReport:
    """Accumulated findings from one lint run."""

    issues: list[LintIssue] = field(default_factory=list)

    def add(self, rule: str, message: str, location: str = "") -> None:
        if rule not in RULES:
            raise ReproError(f"unknown lint rule {rule!r}")
        self.issues.append(LintIssue(rule=rule, message=message, location=location))

    def extend(self, other: "LintReport") -> None:
        self.issues.extend(other.issues)

    @property
    def errors(self) -> list[LintIssue]:
        return [i for i in self.issues if i.severity == "error"]

    @property
    def warnings(self) -> list[LintIssue]:
        return [i for i in self.issues if i.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when nothing gating was found (warnings allowed)."""
        return not self.errors

    def render(self) -> str:
        if not self.issues:
            return "repro-lint: clean"
        lines = [str(issue) for issue in self.issues]
        lines.append(
            f"repro-lint: {len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Kernel rules (A...): inference vs declaration


def _declared_direction(access) -> str:
    reads = access.bytes_read > 0
    writes = access.bytes_written > 0
    if reads and writes:
        return "readwrite"
    return "read" if reads else "write"


def lint_app_kernels(kernels=None) -> LintReport:
    """Diff every registered app kernel against its declared descriptors."""
    from .kernels import app_kernels

    report = LintReport()
    for spec in kernels if kernels is not None else app_kernels():
        where = f"{spec.name} ({Path(spec.source_file).name})"
        inferred = spec.inferred()
        declared = spec.declared_by_buffer()
        for buffer in sorted(set(inferred) - set(declared)):
            report.add(
                "A003",
                f"kernel touches buffer {buffer!r} but the traffic model "
                "declares no descriptor for it",
                where,
            )
        for buffer in sorted(set(declared) - set(inferred)):
            report.add(
                "A003",
                f"traffic model declares buffer {buffer!r} but the kernel "
                "source never touches it",
                where,
            )
        for buffer in sorted(set(inferred) & set(declared)):
            inf, dec = inferred[buffer], declared[buffer]
            if inf.pattern is None:
                report.add(
                    "A004",
                    f"buffer {buffer!r}: pattern not classifiable "
                    f"(unanalyzable sites at lines {list(inf.unknown_lines)}); "
                    f"declared {dec.pattern.value}",
                    where,
                )
                continue
            if inf.pattern is not dec.pattern:
                report.add(
                    "A001",
                    f"buffer {buffer!r}: inferred {inf.pattern.value}, "
                    f"declared {dec.pattern.value}",
                    where,
                )
            inf_dir = inf.direction
            dec_dir = _declared_direction(dec)
            if inf_dir is not None and inf_dir != dec_dir:
                report.add(
                    "A002",
                    f"buffer {buffer!r}: inferred direction {inf_dir}, "
                    f"declared {dec_dir}",
                    where,
                )
    return report


# ----------------------------------------------------------------------
# Plan rules (P...): placement-plan JSON vs platform


def _platform_stack(platform: str):
    from .. import quick_setup

    setup = quick_setup(platform)
    return setup.machine, setup.memattrs


def lint_plan(
    plan: dict,
    *,
    platform: str | None = None,
    location: str = "",
    machine=None,
    memattrs=None,
) -> LintReport:
    """Validate one placement plan without simulating it.

    Plan schema (all sections optional except ``buffers``)::

        {
          "platform": "xeon-cascadelake-1lm",
          "buffers": {"name": bytes, ...},
          "assignment": {"name": node | {"node": fraction, ...}, ...},
          "attributes": {"name": "Attribute", ...},
          "fallback_overrides": {"Attribute": ["Other", ...], ...}
        }
    """
    report = LintReport()
    platform = plan.get("platform") or platform
    if machine is None or memattrs is None:
        if not platform:
            report.add("P001", "plan names no platform and none was given", location)
            return report
        machine, memattrs = _platform_stack(platform)
    nodes = {n.os_index: n for n in machine.numa_nodes()}

    buffers = plan.get("buffers", {})
    assignment = plan.get("assignment", {})
    attributes = plan.get("attributes", {})
    overrides = {
        k: tuple(v) for k, v in plan.get("fallback_overrides", {}).items()
    }

    sections = (("assignment", assignment), ("attributes", attributes))
    for section_name, section in sections:
        for buffer in sorted(set(section) - set(buffers)):
            report.add(
                "P001",
                f"{section_name} names buffer {buffer!r} not present in 'buffers'",
                location,
            )

    # P002/P003: node existence and capacity feasibility.
    per_node: dict[int, float] = {}
    for buffer, target in sorted(assignment.items()):
        if buffer not in buffers:
            continue
        size = buffers[buffer]
        shares = target if isinstance(target, dict) else {target: 1.0}
        for node_key, fraction in shares.items():
            node_index = int(node_key)
            if node_index not in nodes:
                report.add(
                    "P002",
                    f"buffer {buffer!r} assigned to node {node_index}, but "
                    f"{platform} only has nodes {sorted(nodes)}",
                    location,
                )
                continue
            per_node[node_index] = per_node.get(node_index, 0.0) + size * fraction
    for node_index, assigned in sorted(per_node.items()):
        capacity = nodes[node_index].capacity
        if assigned > capacity:
            report.add(
                "P003",
                f"node {node_index}: {assigned / 1e9:.2f} GB assigned exceeds "
                f"{capacity / 1e9:.2f} GB capacity",
                location,
            )

    # P004/P005: attribute names and their fallback chains.
    for attr_name in sorted(
        {*(attributes[b] for b in attributes if b in buffers), *overrides}
    ):
        try:
            memattrs.get_by_name(attr_name)
        except UnknownAttributeError:
            report.add(
                "P004",
                f"attribute {attr_name!r} is not registered on {platform}",
                location,
            )
            continue
        chain = attribute_fallback_chain(
            memattrs, attr_name, overrides=overrides or None
        )
        if not any(
            attr.name == "Capacity" or memattrs.has_values(attr) for attr in chain
        ):
            report.add(
                "P005",
                f"attribute {attr_name!r}: no member of fallback chain "
                f"{[a.name for a in chain]} has values on {platform}",
                location,
            )
    for attr_name, chain_names in sorted(overrides.items()):
        for name in chain_names:
            try:
                memattrs.get_by_name(name)
            except UnknownAttributeError:
                report.add(
                    "P005",
                    f"fallback override for {attr_name!r} references unknown "
                    f"attribute {name!r} (entry would be silently skipped)",
                    location,
                )
    return report


def lint_plan_file(path: str | Path, *, platform: str | None = None) -> LintReport:
    path = Path(path)
    try:
        plan = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        report = LintReport()
        report.add("P001", f"unreadable plan: {exc}", str(path))
        return report
    if not isinstance(plan, dict):
        report = LintReport()
        report.add("P001", "plan JSON must be an object", str(path))
        return report
    return lint_plan(plan, platform=platform, location=str(path))


# ----------------------------------------------------------------------
# Source rules (S...): attribute literals at allocation sites

_ALLOC_CALLS = {"mem_alloc"}


def _attribute_literals(tree: ast.AST):
    """Yield (lineno, name) for string-literal attributes at mem_alloc sites."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        func_name = (
            func.attr if isinstance(func, ast.Attribute)
            else func.id if isinstance(func, ast.Name)
            else None
        )
        if func_name not in _ALLOC_CALLS:
            continue
        candidates = []
        if len(node.args) >= 2:
            candidates.append(node.args[1])
        for kw in node.keywords:
            if kw.arg == "attribute":
                candidates.append(kw.value)
        for arg in candidates:
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                yield node.lineno, arg.value


def lint_source(
    path: str | Path,
    *,
    platform: str = "xeon-cascadelake-1lm",
    memattrs=None,
) -> LintReport:
    """Validate attribute-name literals at ``mem_alloc`` call sites."""
    path = Path(path)
    report = LintReport()
    if memattrs is None:
        _, memattrs = _platform_stack(platform)
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except (OSError, SyntaxError) as exc:
        report.add("S001", f"unparseable source: {exc}", str(path))
        return report
    for lineno, name in _attribute_literals(tree):
        try:
            memattrs.get_by_name(name)
        except UnknownAttributeError:
            report.add(
                "S001",
                f"mem_alloc attribute {name!r} is not registered on the platform",
                f"{path}:{lineno}",
            )
    return report


def lint_paths(
    paths,
    *,
    platform: str = "xeon-cascadelake-1lm",
) -> LintReport:
    """Lint files and directories: ``.json`` as plans, ``.py`` for S-rules."""
    report = LintReport()
    _, memattrs = _platform_stack(platform)
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
            files.extend(sorted(p.rglob("*.json")))
        else:
            files.append(p)
    for f in files:
        if f.suffix == ".json":
            report.extend(lint_plan_file(f, platform=platform))
        elif f.suffix == ".py":
            report.extend(lint_source(f, platform=platform, memattrs=memattrs))
        else:
            report.add("P001", "not a .py or .json file", str(f))
    return report
