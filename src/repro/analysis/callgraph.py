"""Call-graph construction and resolution for interprocedural analysis.

PR 3's taint pass gave up on any subscript whose index came out of a
call — the documented ``a[f(i)]`` false negative.  This module supplies
the missing half: a :class:`CallResolver` maps callee names to their
``ast.FunctionDef`` so :mod:`repro.analysis.astpass` can inline-analyze
module-local helpers at each call site (context-sensitively: the
caller's argument taints seed the callee's environment, and the
callee's buffer evidence flows back under the caller's buffer names).

:func:`build_call_graph` additionally materializes the graph itself —
who calls whom, plus a per-function :class:`FunctionSummary` (parameter
access patterns and return-value taint) — for reports, tests, and the
``repro-analyze`` CLI.

Only *top-level* ``def``s of one module participate; methods, closures,
builtins, and imported names stay opaque, as does any call deeper than
:data:`MAX_INLINE_DEPTH` or on a recursive cycle.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from collections.abc import Iterator, Mapping
from contextlib import contextmanager
from dataclasses import dataclass

from ..errors import ReproError

__all__ = [
    "MAX_INLINE_DEPTH",
    "CallGraph",
    "CallResolver",
    "FunctionSummary",
    "build_call_graph",
    "module_resolver",
]

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef

#: Call chains deeper than this are treated as opaque rather than
#: inlined — a backstop against pathological helper towers; real kernel
#: helper nests are one or two levels.
MAX_INLINE_DEPTH = 8


def _collect_functions(tree: ast.Module) -> dict[str, FunctionNode]:
    return {
        node.name: node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


class CallResolver:
    """Name -> ``FunctionDef`` lookup with a recursion/depth guard.

    The active-call stack makes cycle detection trivial: a name already
    on the stack (direct or mutual recursion) cannot be re-entered, and
    neither can anything once the stack hits ``max_depth``.  Unresolved
    calls simply fall back to the pre-existing opaque handling — the
    pass never guesses.
    """

    def __init__(
        self,
        functions: Mapping[str, FunctionNode],
        *,
        max_depth: int = MAX_INLINE_DEPTH,
    ) -> None:
        self.functions = dict(functions)
        self.max_depth = max_depth
        self._stack: list[str] = []

    def resolve(self, name: str) -> FunctionNode | None:
        return self.functions.get(name)

    def can_enter(self, name: str) -> bool:
        return name not in self._stack and len(self._stack) < self.max_depth

    @contextmanager
    def entered(self, name: str) -> Iterator[None]:
        self._stack.append(name)
        try:
            yield
        finally:
            self._stack.pop()

    @classmethod
    def from_source(
        cls, source: str, *, filename: str = "<source>"
    ) -> CallResolver:
        try:
            tree = ast.parse(textwrap.dedent(source), filename=filename)
        except SyntaxError as exc:
            raise ReproError(f"cannot parse {filename}: {exc}") from exc
        return cls(_collect_functions(tree))


@dataclass(frozen=True)
class FunctionSummary:
    """Taint summary of one function, as seen from its signature."""

    name: str
    params: tuple[str, ...]
    callees: tuple[str, ...]
    #: Taint kind of the returned value ("const", "affine", "data", ...).
    returns: str
    #: Per-parameter inferred pattern ("stream", "random", ...) or
    #: "unknown" for parameters with only unanalyzable sites.
    patterns: Mapping[str, str]

    def describe(self) -> str:
        pats = ", ".join(f"{p}={k}" for p, k in sorted(self.patterns.items()))
        return (
            f"{self.name}({', '.join(self.params)}) -> {self.returns}"
            + (f" [{pats}]" if pats else "")
        )


@dataclass
class CallGraph:
    """Top-level functions of one module and their local call edges."""

    functions: dict[str, FunctionNode]
    edges: dict[str, tuple[str, ...]]

    def callees(self, name: str) -> tuple[str, ...]:
        return self.edges.get(name, ())

    def callers(self, name: str) -> tuple[str, ...]:
        return tuple(
            sorted(f for f, callees in self.edges.items() if name in callees)
        )

    def resolver(self) -> CallResolver:
        return CallResolver(self.functions)

    def summarize(self, name: str) -> FunctionSummary:
        fn = self.functions.get(name)
        if fn is None:
            raise ReproError(
                f"no function {name!r} in call graph "
                f"(found: {sorted(self.functions)})"
            )
        from .astpass import _KernelPass

        kernel_pass = _KernelPass(fn, None, resolver=self.resolver())
        analysis = kernel_pass.run()
        returns = (
            kernel_pass.return_taint.kind
            if kernel_pass.return_taint is not None
            else "const"
        )
        patterns = {
            buffer: (access.pattern.value if access.pattern else "unknown")
            for buffer, access in analysis.accesses.items()
        }
        return FunctionSummary(
            name=name,
            params=tuple(a.arg for a in fn.args.args),
            callees=self.callees(name),
            returns=returns,
            patterns=patterns,
        )

    def summaries(self) -> dict[str, FunctionSummary]:
        return {name: self.summarize(name) for name in sorted(self.functions)}

    def render(self) -> str:
        lines = []
        for name in sorted(self.functions):
            callees = self.edges.get(name, ())
            arrow = f" -> {', '.join(callees)}" if callees else ""
            lines.append(f"{name}{arrow}")
        return "\n".join(lines)


def build_call_graph(
    source: str | Mapping[str, FunctionNode],
    *,
    filename: str = "<source>",
) -> CallGraph:
    """Build the local call graph of a source snippet (or function map)."""
    if isinstance(source, str):
        try:
            tree = ast.parse(textwrap.dedent(source), filename=filename)
        except SyntaxError as exc:
            raise ReproError(f"cannot parse {filename}: {exc}") from exc
        functions = _collect_functions(tree)
    else:
        functions = dict(source)
    edges: dict[str, tuple[str, ...]] = {}
    for name, fn in functions.items():
        called: list[str] = []
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in functions
                and node.func.id not in called
            ):
                called.append(node.func.id)
        edges[name] = tuple(called)
    return CallGraph(functions=functions, edges=edges)


#: One parsed-function table per module file; parsing is pure (no code
#: runs) and module sources do not change within a process.
_MODULE_CACHE: dict[str, dict[str, FunctionNode]] = {}


def module_resolver(func: object) -> CallResolver | None:
    """Resolver over the defining module of a live function.

    Returns ``None`` (analysis stays intraprocedural) when the module
    source is unavailable — builtins, C extensions, ``exec``'d code.
    """
    module = inspect.getmodule(func)
    if module is None:
        return None
    path = getattr(module, "__file__", None)
    if not isinstance(path, str):
        return None
    functions = _MODULE_CACHE.get(path)
    if functions is None:
        try:
            tree = ast.parse(inspect.getsource(module), filename=path)
        except (OSError, TypeError, SyntaxError):
            functions = {}
        else:
            functions = _collect_functions(tree)
        _MODULE_CACHE[path] = functions
    if not functions:
        return None
    return CallResolver(functions)
