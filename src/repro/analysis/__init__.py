"""Source-level access-pattern analysis — the paper's missing compiler.

The paper (§V-C) surveys compiler support for memory-attribute hints and
concludes compilers "are not ready to provide such hints yet".  This
package is that hint compiler for the repo's own kernels:

* :mod:`astpass` — taint-based AST interpretation of scalar kernels,
  classifying each array parameter as STREAM / STRIDED / RANDOM /
  POINTER_CHASE with read/write direction;
* :mod:`kernels` — the registry binding each bundled app's reference
  kernel to the descriptors its traffic model declares;
* :mod:`hints` — the output side: attribute annotations for
  ``mem_alloc``, synthetic phases for the placement search, and
  end-to-end hint-driven placements;
* :mod:`lint` — ``repro-lint``: diffs inference against declaration and
  validates placement plans without simulating.
"""

from .astpass import (
    InferredAccess,
    KernelAnalysis,
    analyze_function,
    analyze_source,
)
from .hints import (
    access_from_inferred,
    hint_placement,
    hints_for,
    phase_from_analysis,
)
from .kernels import AppKernel, app_kernels, merge_params
from .lint import (
    LintIssue,
    LintReport,
    lint_app_kernels,
    lint_paths,
    lint_plan,
    lint_plan_file,
    rule_catalog,
)

__all__ = [
    "InferredAccess",
    "KernelAnalysis",
    "analyze_function",
    "analyze_source",
    "AppKernel",
    "app_kernels",
    "merge_params",
    "hints_for",
    "access_from_inferred",
    "phase_from_analysis",
    "hint_placement",
    "LintIssue",
    "LintReport",
    "lint_app_kernels",
    "lint_paths",
    "lint_plan",
    "lint_plan_file",
    "rule_catalog",
]
