"""Source-level access-pattern analysis — the paper's missing compiler.

The paper (§V-C) surveys compiler support for memory-attribute hints and
concludes compilers "are not ready to provide such hints yet".  This
package is that hint compiler for the repo's own kernels:

* :mod:`astpass` — taint-based AST interpretation of scalar kernels,
  classifying each array parameter as STREAM / STRIDED / RANDOM /
  POINTER_CHASE with read/write direction; helper calls are resolved
  interprocedurally via :mod:`callgraph`;
* :mod:`callgraph` — module-level call resolution: function discovery,
  cycle/depth-guarded inlining, and per-function summaries;
* :mod:`footprint` — the quantitative layer: symbolic per-buffer trip
  counts (polynomials over kernel parameters), evaluated traffic
  shares, and compilation of loop nests into simulator
  :class:`~repro.sim.access.KernelPhase` objects;
* :mod:`kernels` — the registry binding each bundled app's reference
  kernel to the descriptors its traffic model declares, plus the
  problem-scale bindings that make the footprints numeric;
* :mod:`parity` — the differential gate: static shares vs. instrumented
  scalar-kernel runs (``repro-analyze --verify-parity``);
* :mod:`hints` — the output side: attribute annotations for
  ``mem_alloc``, synthetic phases for the placement search, and
  end-to-end hint-driven placements;
* :mod:`lint` — ``repro-lint``: diffs inference against declaration,
  checks footprint quantities (F rules), and validates placement plans
  without simulating.
"""

from .astpass import (
    InferredAccess,
    KernelAnalysis,
    analyze_function,
    analyze_source,
)
from .callgraph import (
    CallGraph,
    CallResolver,
    FunctionSummary,
    build_call_graph,
)
from .footprint import (
    BufferFootprint,
    KernelFootprint,
    LoopNest,
    SymExpr,
    footprint_from_source,
    footprint_of_function,
    phases_from_footprint,
    traffic_shares,
)
from .hints import (
    access_from_inferred,
    hint_placement,
    hints_for,
    phase_from_analysis,
)
from .kernels import AppKernel, app_kernels, merge_params
from .lint import (
    LintIssue,
    LintReport,
    lint_app_kernels,
    lint_kernel_footprints,
    lint_paths,
    lint_plan,
    lint_plan_file,
    rule_catalog,
)
from .parity import (
    BufferParity,
    ParityReport,
    ParityResult,
    parity_for_app,
    run_parity,
)

__all__ = [
    "InferredAccess",
    "KernelAnalysis",
    "analyze_function",
    "analyze_source",
    "CallGraph",
    "CallResolver",
    "FunctionSummary",
    "build_call_graph",
    "BufferFootprint",
    "KernelFootprint",
    "LoopNest",
    "SymExpr",
    "footprint_from_source",
    "footprint_of_function",
    "phases_from_footprint",
    "traffic_shares",
    "AppKernel",
    "app_kernels",
    "merge_params",
    "hints_for",
    "access_from_inferred",
    "phase_from_analysis",
    "hint_placement",
    "LintIssue",
    "LintReport",
    "lint_app_kernels",
    "lint_kernel_footprints",
    "lint_paths",
    "lint_plan",
    "lint_plan_file",
    "rule_catalog",
    "BufferParity",
    "ParityReport",
    "ParityResult",
    "parity_for_app",
    "run_parity",
]
