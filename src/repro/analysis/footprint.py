"""Symbolic footprint engine: from taints to *numbers*.

The taint pass (:mod:`repro.analysis.astpass`) answers "what pattern?";
this module answers "how much?".  It rides the same AST walk with a
multiplier stack of symbolic loop trip counts, so every recorded access
site contributes a :class:`SymExpr` — a polynomial over kernel
parameters — to its buffer's per-nest bytes-moved and working-set
estimate.  Binding the symbols (``{"n": 8192, "seg(offsets)": nnz}``)
turns a :class:`KernelFootprint` into concrete traffic shares or a
fully *derived* :class:`~repro.sim.access.KernelPhase` per top-level
loop nest — no declared descriptors needed, which is exactly what the
``repro-analyze`` parity harness checks against measurement.

Symbol grammar (docs/ANALYSIS.md has the full table):

========================  =============================================
symbol                    meaning
========================  =============================================
``n`` (a parameter name)  the parameter's runtime value
``len(buf)``              element count of a swept buffer
``seg(S)``                total elements covered by a segment sweep
                          ``range(S[i], S[i+1])`` — replaces the
                          enclosing loop's factor (CSR: nnz; BFS:
                          edges scanned)
``sel@L<line>``           selectivity of the data-dependent branch at
                          <line>; defaults to 1.0 (upper bound)
``while@L<line>``         trip count of the ``while`` at <line>;
                          defaults to 1.0
``trips@L<line>``         unresolvable trip count; defaults to 1.0
========================  =============================================

The ``@``-symbols are *guard symbols*: they default so an unbound
footprint still evaluates to a (possibly loose) upper bound, while
plain symbols must be bound explicitly — refusing to guess sizes.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from collections.abc import Mapping
from dataclasses import dataclass, field

from ..errors import ReproError
from ..sim.access import BufferAccess, KernelPhase, PatternKind
from .astpass import (
    _COMBINE_RANK,
    _KIND_RANK,
    _KIND_TO_PATTERN,
    KernelAnalysis,
    _KernelPass,
    _Taint,
)
from .callgraph import CallResolver, module_resolver

__all__ = [
    "BufferFootprint",
    "KernelFootprint",
    "LoopNest",
    "SymExpr",
    "footprint_from_source",
    "footprint_of_function",
    "phases_from_footprint",
    "resolve_bindings",
    "traffic_by_buffer",
    "traffic_shares",
]

#: Prefixes of guard symbols — bindable, but safe to default to 1.0.
GUARD_PREFIXES = ("sel@", "while@", "trips@")

_EPS = 1e-12


class SymExpr:
    """A multivariate polynomial over named symbols, float coefficients.

    Deliberately tiny (add/sub/mul, divide by constants, evaluate):
    trip-count algebra needs nothing more, and staying self-contained
    keeps the analyzer dependency-free.
    """

    __slots__ = ("terms",)

    def __init__(
        self, terms: Mapping[tuple[str, ...], float] | None = None
    ) -> None:
        clean: dict[tuple[str, ...], float] = {}
        if terms:
            for syms, coeff in terms.items():
                key = tuple(sorted(syms))
                clean[key] = clean.get(key, 0.0) + float(coeff)
        self.terms: dict[tuple[str, ...], float] = {
            k: v for k, v in clean.items() if abs(v) > _EPS
        }

    @classmethod
    def const(cls, value: float) -> SymExpr:
        return cls({(): float(value)})

    @classmethod
    def sym(cls, name: str) -> SymExpr:
        return cls({(name,): 1.0})

    @staticmethod
    def _coerce(value: SymExpr | float | int) -> SymExpr:
        if isinstance(value, SymExpr):
            return value
        return SymExpr.const(value)

    def __add__(self, other: SymExpr | float | int) -> SymExpr:
        other = self._coerce(other)
        merged = dict(self.terms)
        for key, coeff in other.terms.items():
            merged[key] = merged.get(key, 0.0) + coeff
        return SymExpr(merged)

    __radd__ = __add__

    def __sub__(self, other: SymExpr | float | int) -> SymExpr:
        return self + self._coerce(other) * -1.0

    def __mul__(self, other: SymExpr | float | int) -> SymExpr:
        if isinstance(other, (int, float)):
            return SymExpr(
                {key: coeff * other for key, coeff in self.terms.items()}
            )
        product: dict[tuple[str, ...], float] = {}
        for left_syms, left_coeff in self.terms.items():
            for right_syms, right_coeff in other.terms.items():
                key = tuple(sorted(left_syms + right_syms))
                product[key] = product.get(key, 0.0) + left_coeff * right_coeff
        return SymExpr(product)

    __rmul__ = __mul__

    def __truediv__(self, other: SymExpr | float | int) -> SymExpr:
        if isinstance(other, SymExpr):
            if not other.is_const:
                raise ReproError(f"cannot divide by non-constant {other}")
            other = other.const_value
        if abs(float(other)) < _EPS:
            raise ReproError("division by zero in symbolic expression")
        return self * (1.0 / float(other))

    @property
    def is_zero(self) -> bool:
        return not self.terms

    @property
    def is_const(self) -> bool:
        return all(key == () for key in self.terms)

    @property
    def const_value(self) -> float:
        if not self.is_const:
            raise ReproError(f"{self} is not a constant")
        return self.terms.get((), 0.0)

    def symbols(self) -> frozenset[str]:
        return frozenset(s for key in self.terms for s in key)

    def evaluate(self, bindings: Mapping[str, float]) -> float:
        missing = sorted(self.symbols() - set(bindings))
        if missing:
            raise ReproError(f"unbound footprint symbols: {missing}")
        total = 0.0
        for syms, coeff in self.terms.items():
            value = coeff
            for name in syms:
                value *= float(bindings[name])
            total += value
        return total

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, float)):
            return self.is_const and abs(self.const_value - other) < _EPS
        if isinstance(other, SymExpr):
            return self.terms == other.terms
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self.terms.items()))

    def __str__(self) -> str:
        if not self.terms:
            return "0"
        parts = []
        for syms in sorted(self.terms, key=lambda k: (len(k), k)):
            coeff = self.terms[syms]
            coeff_str = f"{coeff:g}"
            if not syms:
                parts.append(coeff_str)
            elif abs(coeff - 1.0) < _EPS:
                parts.append("*".join(syms))
            else:
                parts.append("*".join((coeff_str,) + syms))
        return " + ".join(parts)

    def __repr__(self) -> str:
        return f"SymExpr({self})"


_ZERO = SymExpr()
_ONE = SymExpr.const(1.0)


# ----------------------------------------------------------------------
# Accumulation state


@dataclass
class _Factor:
    """One entry of the multiplier stack."""

    expr: SymExpr
    is_loop: bool
    #: Segment sweeps (``range(S[i], S[i+1])``) cover the companion
    #: arrays *in total* across the enclosing loop, so their factor
    #: replaces the nearest enclosing loop factor instead of nesting
    #: under it.
    replaces_parent: bool = False


class _BufferAcc:
    """Per-(nest, buffer) symbolic accumulation."""

    def __init__(self, buffer: str) -> None:
        self.buffer = buffer
        self.reads = _ZERO
        self.writes = _ZERO
        self.touched = _ZERO
        self.whole = False
        self.kinds: dict[str, int] = {}
        self.unknown_sites = 0


class _NestAcc:
    def __init__(self, name: str, line: int) -> None:
        self.name = name
        self.line = line
        self.buffers: dict[str, _BufferAcc] = {}

    def buffer(self, name: str) -> _BufferAcc:
        acc = self.buffers.get(name)
        if acc is None:
            acc = self.buffers[name] = _BufferAcc(name)
        return acc


class _FootprintState:
    """Shared across the root pass and its interprocedural sub-passes."""

    def __init__(self) -> None:
        self.nests: list[_NestAcc] = []
        self.current: _NestAcc | None = None
        self._prelude: _NestAcc | None = None
        self._line_counts: dict[int, int] = {}

    def enter_nest(self, line: int) -> None:
        count = self._line_counts.get(line, 0) + 1
        self._line_counts[line] = count
        name = f"L{line}" if count == 1 else f"L{line}#{count}"
        nest = _NestAcc(name, line)
        self.nests.append(nest)
        self.current = nest

    def exit_nest(self) -> None:
        self.current = None

    def active(self) -> _NestAcc:
        if self.current is not None:
            return self.current
        if self._prelude is None:
            self._prelude = _NestAcc("prelude", 0)
            self.nests.insert(0, self._prelude)
        return self._prelude


# ----------------------------------------------------------------------
# The pass


class _FootprintPass(_KernelPass):
    """Taint walk + symbolic multiplier stack.

    The multiplier stack and nest state are *shared* with every
    interprocedural sub-pass, so helper bodies accumulate into the
    caller's nests at the caller's trip counts, with callee parameter
    names renamed back to caller buffers.
    """

    def __init__(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        buffers: tuple[str, ...] | None,
        *,
        resolver: CallResolver | None = None,
        state: _FootprintState | None = None,
        factors: list[_Factor] | None = None,
    ) -> None:
        super().__init__(fn, buffers, resolver=resolver)
        self.state = state if state is not None else _FootprintState()
        self.factors = factors if factors is not None else []
        self.rename: dict[str, str] = {}
        self.symenv: dict[str, SymExpr] = {
            a.arg: SymExpr.sym(a.arg) for a in fn.args.args
        }

    # -- symbolic evaluation -------------------------------------------
    def _renamed(self, name: str) -> str:
        return self.rename.get(name, name)

    def _sym_eval(self, node: ast.expr) -> SymExpr | None:
        """Pure symbolic value of an expression, or ``None``.  Never
        records accesses — safe to call during factor computation."""
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float)) and not isinstance(
                node.value, bool
            ):
                return SymExpr.const(node.value)
            return None
        if isinstance(node, ast.Name):
            return self.symenv.get(node.id)
        if isinstance(node, ast.UnaryOp):
            operand = self._sym_eval(node.operand)
            if operand is None:
                return None
            if isinstance(node.op, ast.USub):
                return operand * -1.0
            if isinstance(node.op, ast.UAdd):
                return operand
            return None
        if isinstance(node, ast.BinOp):
            left = self._sym_eval(node.left)
            right = self._sym_eval(node.right)
            if left is None or right is None:
                return None
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, (ast.Div, ast.FloorDiv)):
                if right.is_const and abs(right.const_value) > _EPS:
                    return left / right
                return None
            return None
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "len"
            and len(node.args) == 1
            and not node.keywords
            and isinstance(node.args[0], ast.Name)
        ):
            return SymExpr.sym(f"len({self._renamed(node.args[0].id)})")
        return None

    def _current_multiplier(self) -> SymExpr:
        result = _ONE
        skip_next_loop = False
        for factor in reversed(self.factors):
            if factor.is_loop and skip_next_loop:
                # A segment sweep replaced this loop; a replaced segment
                # sweep keeps replacing outward.
                skip_next_loop = factor.replaces_parent
                continue
            result = result * factor.expr
            if factor.replaces_parent:
                skip_next_loop = True
        return result

    # -- factor computation --------------------------------------------
    def _has_enclosing_loop(self) -> bool:
        return any(f.is_loop for f in self.factors)

    def _segment_source(self, lo: ast.expr, hi: ast.expr) -> str | None:
        """Buffer swept segment-wise by ``range(lo, hi)``, if any."""
        if (
            isinstance(lo, ast.Subscript)
            and isinstance(hi, ast.Subscript)
            and isinstance(lo.value, ast.Name)
            and isinstance(hi.value, ast.Name)
            and lo.value.id == hi.value.id
            and lo.value.id in self.tracked
            and ast.unparse(hi.slice) == f"{ast.unparse(lo.slice)} + 1"
        ):
            return self._renamed(lo.value.id)
        if isinstance(lo, ast.Name) and isinstance(hi, ast.Name):
            lo_taint = self.env.get(lo.id)
            hi_taint = self.env.get(hi.id)
            if (
                lo_taint is not None
                and hi_taint is not None
                and lo_taint.kind == "data"
                and hi_taint.kind == "data"
                and lo_taint.source == hi_taint.source
                and lo_taint.source in self.tracked
            ):
                return self._renamed(lo_taint.source)
        return None

    def _range_factor(self, call: ast.Call, line: int) -> _Factor:
        args = call.args
        if len(args) >= 2:
            source = self._segment_source(args[0], args[1])
            if source is not None and self._has_enclosing_loop():
                return _Factor(
                    SymExpr.sym(f"seg({source})"),
                    is_loop=True,
                    replaces_parent=True,
                )
        step = 1.0
        if len(args) == 3:
            step_expr = self._sym_eval(args[2])
            if (
                step_expr is None
                or not step_expr.is_const
                or abs(step_expr.const_value) < _EPS
            ):
                return _Factor(SymExpr.sym(f"trips@L{line}"), is_loop=True)
            step = abs(step_expr.const_value)
        if len(args) == 1:
            lo: SymExpr | None = _ZERO
            hi = self._sym_eval(args[0])
        elif len(args) >= 2:
            lo = self._sym_eval(args[0])
            hi = self._sym_eval(args[1])
        else:
            lo = hi = None
        if lo is None or hi is None:
            return _Factor(SymExpr.sym(f"trips@L{line}"), is_loop=True)
        return _Factor((hi - lo) / step, is_loop=True)

    # -- statement overrides -------------------------------------------
    def _push(self, factor: _Factor) -> None:
        self.factors.append(factor)

    def _pop(self) -> None:
        self.factors.pop()

    def _for_stmt(self, stmt: ast.For) -> None:
        iter_node = stmt.iter
        is_range = (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id == "range"
        )
        entering_nest = self.loop_depth == 0
        if entering_nest:
            self.state.enter_nest(stmt.lineno)
        try:
            if isinstance(stmt.target, ast.Name):
                # The loop variable takes a fresh value each iteration.
                self.symenv.pop(stmt.target.id, None)
            if is_range:
                assert isinstance(iter_node, ast.Call)
                factor = self._range_factor(iter_node, stmt.lineno)
                # Range bounds are evaluated once per *enclosing*
                # iteration: record their loads before pushing.
                target_taint = self._for_iter_taint(stmt)
                if isinstance(stmt.target, ast.Name):
                    self.env[stmt.target.id] = target_taint
                self._push(factor)
                try:
                    self._walk_loop_body(stmt.body)
                finally:
                    self._pop()
            else:
                if (
                    isinstance(iter_node, ast.Name)
                    and iter_node.id in self.tracked
                ):
                    expr = SymExpr.sym(f"len({self._renamed(iter_node.id)})")
                else:
                    expr = SymExpr.sym(f"trips@L{stmt.lineno}")
                # The element loads of ``for x in buf`` happen once per
                # iteration: push first so they get the inner multiplier.
                self._push(_Factor(expr, is_loop=True))
                try:
                    target_taint = self._for_iter_taint(stmt)
                    if isinstance(stmt.target, ast.Name):
                        self.env[stmt.target.id] = target_taint
                    self._walk_loop_body(stmt.body)
                finally:
                    self._pop()
            self._walk(stmt.orelse)
        finally:
            if entering_nest:
                self.state.exit_nest()

    def _while_stmt(self, stmt: ast.While) -> None:
        entering_nest = self.loop_depth == 0
        if entering_nest:
            self.state.enter_nest(stmt.lineno)
        try:
            self._push(
                _Factor(SymExpr.sym(f"while@L{stmt.lineno}"), is_loop=True)
            )
            try:
                # The test runs once per iteration — inside the factor.
                self._eval(stmt.test)
                self._walk_loop_body(stmt.body)
            finally:
                self._pop()
            self._walk(stmt.orelse)
        finally:
            if entering_nest:
                self.state.exit_nest()

    def _test_taint(self, node: ast.expr) -> _Taint:
        """Like :meth:`_eval` on a condition, but surfaces the *max*
        operand taint instead of collapsing comparisons to const."""
        if isinstance(node, ast.Compare):
            taints = [self._eval(node.left)]
            taints += [self._eval(comp) for comp in node.comparators]
            return max(taints, key=lambda t: _COMBINE_RANK[t.kind])
        if isinstance(node, ast.BoolOp):
            taints = [self._test_taint(value) for value in node.values]
            return max(taints, key=lambda t: _COMBINE_RANK[t.kind])
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            return self._test_taint(node.operand)
        return self._eval(node)

    def _if_stmt(self, stmt: ast.If) -> None:
        taint = self._test_taint(stmt.test)
        if taint.kind == "data":
            # Data-dependent branch: its body runs for an unknown
            # fraction of iterations.  sel@ defaults to 1.0 — an upper
            # bound — and is bindable to the measured selectivity.
            self._push(
                _Factor(SymExpr.sym(f"sel@L{stmt.lineno}"), is_loop=False)
            )
            try:
                self._walk(stmt.body)
            finally:
                self._pop()
        else:
            self._walk(stmt.body)
        self._walk(stmt.orelse)

    # -- value tracking overrides --------------------------------------
    def _assign_name(self, name: str, value: ast.expr) -> None:
        expr = self._sym_eval(value)
        super()._assign_name(name, value)
        if expr is not None:
            self.symenv[name] = expr
        else:
            self.symenv.pop(name, None)

    def _note_mutation(self, name: str) -> None:
        self.symenv.pop(name, None)

    # -- recording ------------------------------------------------------
    def _record(
        self, base: str, kind: str | None, line: int, *, read: bool, write: bool
    ) -> None:
        super()._record(base, kind, line, read=read, write=write)
        if not self.recording or base not in self.tracked:
            return
        acc = self.state.active().buffer(self._renamed(base))
        if kind is None:
            acc.unknown_sites += 1
            return
        multiplier = self._current_multiplier()
        if read:
            acc.reads = acc.reads + multiplier
        if write:
            acc.writes = acc.writes + multiplier
        if kind == "scalar":
            # One element, touched repeatedly.
            acc.touched = acc.touched + _ONE
            return
        acc.kinds[kind] = acc.kinds.get(kind, 0) + 1
        if kind in ("random", "chase"):
            acc.whole = True
        else:
            acc.touched = acc.touched + multiplier

    # -- interprocedural plumbing --------------------------------------
    def _make_subpass(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        buffer_map: dict[str, str],
        env: dict[str, _Taint],
        call: ast.Call,
    ) -> _KernelPass:
        sub = _FootprintPass(
            fn,
            tuple(buffer_map),
            resolver=self.resolver,
            state=self.state,
            factors=self.factors,
        )
        sub.env.update(env)
        sub.loop_depth = self.loop_depth
        sub.recording = self.recording
        sub.rename = {
            param: self._renamed(buffer) for param, buffer in buffer_map.items()
        }
        # Seed the callee's symbolic environment from sym-evaluable
        # caller arguments, so trip counts inside helpers resolve to
        # caller-level symbols.
        params = [a.arg for a in fn.args.args]
        for param, arg in zip(params, call.args):
            expr = self._sym_eval(arg)
            if expr is not None:
                sub.symenv[param] = expr
        for keyword in call.keywords:
            if keyword.arg in params:
                expr = self._sym_eval(keyword.value)
                if expr is not None:
                    sub.symenv[keyword.arg] = expr
        return sub


# ----------------------------------------------------------------------
# Results


@dataclass
class BufferFootprint:
    """Symbolic traffic and working set of one buffer in one nest."""

    buffer: str
    pattern: PatternKind | None
    reads: SymExpr        # element loads
    writes: SymExpr       # element stores
    touched: SymExpr      # distinct elements reached by contiguous sites
    whole_buffer: bool    # random/chase sites may reach every element
    unknown_sites: int = 0

    @property
    def traffic(self) -> SymExpr:
        return self.reads + self.writes

    def describe(self) -> str:
        pattern = self.pattern.value if self.pattern else "unknown"
        ws = "whole buffer" if self.whole_buffer else f"~{self.touched} elems"
        note = f" ({self.unknown_sites} unknown site(s))" if self.unknown_sites else ""
        return (
            f"{self.buffer}: {pattern} reads={self.reads} "
            f"writes={self.writes} ws={ws}{note}"
        )


@dataclass
class LoopNest:
    """One top-level loop nest — one candidate phase."""

    name: str
    line: int
    buffers: dict[str, BufferFootprint] = field(default_factory=dict)

    def describe(self) -> str:
        lines = [f"nest {self.name}:"]
        for name in sorted(self.buffers):
            lines.append(f"  {self.buffers[name].describe()}")
        return "\n".join(lines)


@dataclass
class KernelFootprint:
    """Everything the symbolic pass derived for one kernel."""

    kernel: str
    nests: tuple[LoopNest, ...]
    analysis: KernelAnalysis

    def symbols(self) -> frozenset[str]:
        out: set[str] = set()
        for nest in self.nests:
            for bf in nest.buffers.values():
                out |= bf.reads.symbols()
                out |= bf.writes.symbols()
                out |= bf.touched.symbols()
        return frozenset(out)

    def guard_symbols(self) -> frozenset[str]:
        return frozenset(
            s for s in self.symbols() if s.startswith(GUARD_PREFIXES)
        )

    def footprints_of(self, buffer: str) -> tuple[BufferFootprint, ...]:
        return tuple(
            nest.buffers[buffer]
            for nest in self.nests
            if buffer in nest.buffers
        )

    def describe(self) -> str:
        lines = [f"kernel {self.kernel}:"]
        for nest in self.nests:
            lines.append(textwrap.indent(nest.describe(), "  "))
        free = sorted(self.symbols())
        if free:
            lines.append(f"  symbols: {', '.join(free)}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Evaluation helpers


def resolve_bindings(
    footprint: KernelFootprint,
    bindings: Mapping[str, float] | None = None,
    *,
    buffer_sizes: Mapping[str, int] | None = None,
    elem_bytes: int = 8,
) -> dict[str, float]:
    """Complete a binding map: guard symbols default to 1.0 and
    ``len(buf)`` symbols resolve from ``buffer_sizes``; everything else
    must come from ``bindings``.  Raises on unresolvable symbols."""
    full: dict[str, float] = {s: 1.0 for s in footprint.guard_symbols()}
    for symbol in footprint.symbols():
        if symbol.startswith("len(") and symbol.endswith(")"):
            name = symbol[4:-1]
            if buffer_sizes and name in buffer_sizes:
                full[symbol] = buffer_sizes[name] / elem_bytes
    if bindings:
        full.update({k: float(v) for k, v in bindings.items()})
    missing = sorted(footprint.symbols() - set(full))
    if missing:
        raise ReproError(
            f"kernel {footprint.kernel}: unbound footprint symbols {missing} "
            "— pass them via bindings="
        )
    return full


def _merge_names(
    names: Mapping[str, str] | None, buffer: str
) -> str | None:
    """Map a kernel parameter to its logical buffer; ``None`` drops it."""
    if names is None:
        return buffer
    return names.get(buffer)


def traffic_by_buffer(
    footprint: KernelFootprint,
    bindings: Mapping[str, float] | None = None,
    *,
    param_buffers: Mapping[str, str] | None = None,
    buffer_sizes: Mapping[str, int] | None = None,
    elem_bytes: int = 8,
) -> dict[str, tuple[float, float]]:
    """Evaluated (read, write) element counts per logical buffer,
    summed over nests and merged across aliased parameters."""
    full = resolve_bindings(
        footprint, bindings, buffer_sizes=buffer_sizes, elem_bytes=elem_bytes
    )
    out: dict[str, tuple[float, float]] = {}
    for nest in footprint.nests:
        for param, bf in nest.buffers.items():
            logical = _merge_names(param_buffers, param)
            if logical is None:
                continue
            reads = bf.reads.evaluate(full)
            writes = bf.writes.evaluate(full)
            prev = out.get(logical, (0.0, 0.0))
            out[logical] = (prev[0] + reads, prev[1] + writes)
    return out


def traffic_shares(
    footprint: KernelFootprint,
    bindings: Mapping[str, float] | None = None,
    *,
    param_buffers: Mapping[str, str] | None = None,
    buffer_sizes: Mapping[str, int] | None = None,
    elem_bytes: int = 8,
) -> dict[str, float]:
    """Per-buffer share of total estimated traffic (uniform element
    size, so element shares equal byte shares)."""
    traffic = traffic_by_buffer(
        footprint,
        bindings,
        param_buffers=param_buffers,
        buffer_sizes=buffer_sizes,
        elem_bytes=elem_bytes,
    )
    total = sum(r + w for r, w in traffic.values())
    if total <= 0.0:
        return {name: 0.0 for name in traffic}
    return {name: (r + w) / total for name, (r, w) in traffic.items()}


_PATTERN_GRANULARITY = {
    PatternKind.RANDOM: 8,
    PatternKind.POINTER_CHASE: 8,
}

_PATTERN_RANK = {
    pattern: _KIND_RANK[kind] for kind, pattern in _KIND_TO_PATTERN.items()
}


@dataclass
class _MergedBuffer:
    """Aliased parameters merged into one logical buffer's numbers."""

    pattern: PatternKind
    reads: float = 0.0
    writes: float = 0.0
    touched: float = 0.0
    whole: bool = False
    rank: int = 0


def phases_from_footprint(
    footprint: KernelFootprint,
    *,
    bindings: Mapping[str, float] | None = None,
    buffer_sizes: Mapping[str, int],
    param_buffers: Mapping[str, str] | None = None,
    threads: int = 1,
    elem_bytes: int = 8,
    name_prefix: str | None = None,
) -> tuple[KernelPhase, ...]:
    """Compile *derived* phases: one :class:`KernelPhase` per top-level
    loop nest, every number coming from the symbolic footprint — no
    declared descriptors involved.

    ``buffer_sizes`` is keyed by logical buffer names (after
    ``param_buffers`` renaming) and bounds the working-set estimates.
    """
    full = resolve_bindings(
        footprint, bindings, buffer_sizes=buffer_sizes, elem_bytes=elem_bytes
    )
    prefix = name_prefix if name_prefix is not None else footprint.kernel
    phases: list[KernelPhase] = []
    for nest in footprint.nests:
        merged: dict[str, _MergedBuffer] = {}
        for param, bf in nest.buffers.items():
            logical = _merge_names(param_buffers, param)
            if logical is None or bf.pattern is None:
                continue
            reads = bf.reads.evaluate(full) * elem_bytes
            writes = bf.writes.evaluate(full) * elem_bytes
            if reads + writes <= 0.0:
                continue
            entry = merged.setdefault(logical, _MergedBuffer(bf.pattern))
            entry.reads += reads
            entry.writes += writes
            entry.touched += bf.touched.evaluate(full) * elem_bytes
            entry.whole = entry.whole or bf.whole_buffer
            rank = _PATTERN_RANK[bf.pattern]
            if rank > entry.rank:
                entry.rank = rank
                entry.pattern = bf.pattern
        accesses = []
        for logical in sorted(merged):
            entry = merged[logical]
            size = buffer_sizes.get(logical)
            if entry.whole and size is not None:
                working_set = size
            else:
                working_set = int(entry.touched)
                if size is not None:
                    working_set = min(working_set, size)
            working_set = max(working_set, elem_bytes)
            accesses.append(
                BufferAccess(
                    buffer=logical,
                    pattern=entry.pattern,
                    bytes_read=int(round(entry.reads)),
                    bytes_written=int(round(entry.writes)),
                    working_set=working_set,
                    granularity=_PATTERN_GRANULARITY.get(entry.pattern, 64),
                )
            )
        if accesses:
            phases.append(
                KernelPhase(
                    name=f"{prefix}:{nest.name}",
                    accesses=tuple(accesses),
                    threads=threads,
                )
            )
    return tuple(phases)


# ----------------------------------------------------------------------
# Entry points


def footprint_from_source(
    source: str,
    *,
    kernel: str | None = None,
    buffers: tuple[str, ...] | None = None,
    filename: str = "<source>",
    interprocedural: bool = True,
) -> KernelFootprint:
    """Symbolic footprint of one kernel in a source snippet.

    ``kernel`` may be omitted when the snippet defines exactly one
    function.
    """
    try:
        tree = ast.parse(textwrap.dedent(source), filename=filename)
    except SyntaxError as exc:
        raise ReproError(f"cannot parse kernel source: {exc}") from exc
    functions = {
        node.name: node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    if kernel is None:
        if len(functions) != 1:
            raise ReproError(
                f"{filename} defines {len(functions)} functions "
                f"({sorted(functions)}); pass kernel= to pick one"
            )
        (kernel,) = functions
    if kernel not in functions:
        raise ReproError(
            f"no kernel {kernel!r} in {filename} (found: {sorted(functions)})"
        )
    resolver = CallResolver(functions) if interprocedural else None
    return _run_footprint(functions[kernel], buffers, resolver)


def footprint_of_function(
    func,
    *,
    buffers: tuple[str, ...] | None = None,
    interprocedural: bool = True,
) -> KernelFootprint:
    """Symbolic footprint of a live Python function."""
    try:
        source = inspect.getsource(func)
    except (OSError, TypeError) as exc:
        raise ReproError(f"cannot fetch source of {func!r}: {exc}") from exc
    tree = ast.parse(textwrap.dedent(source))
    try:
        ast.increment_lineno(tree, func.__code__.co_firstlineno - 1)
    except AttributeError:
        pass
    fn = next(
        node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    resolver = module_resolver(func) if interprocedural else None
    return _run_footprint(fn, buffers, resolver)


def _run_footprint(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    buffers: tuple[str, ...] | None,
    resolver: CallResolver | None,
) -> KernelFootprint:
    fp_pass = _FootprintPass(fn, buffers, resolver=resolver)
    analysis = fp_pass.run()
    nests: list[LoopNest] = []
    for nest_acc in fp_pass.state.nests:
        buffers_out: dict[str, BufferFootprint] = {}
        for name, acc in nest_acc.buffers.items():
            if (
                acc.reads.is_zero
                and acc.writes.is_zero
                and not acc.unknown_sites
            ):
                continue
            pattern = None
            if acc.kinds:
                best = max(acc.kinds, key=lambda k: _KIND_RANK[k])
                pattern = _KIND_TO_PATTERN[best]
            buffers_out[name] = BufferFootprint(
                buffer=name,
                pattern=pattern,
                reads=acc.reads,
                writes=acc.writes,
                touched=acc.touched,
                whole_buffer=acc.whole,
                unknown_sites=acc.unknown_sites,
            )
        if buffers_out:
            nests.append(
                LoopNest(
                    name=nest_acc.name, line=nest_acc.line, buffers=buffers_out
                )
            )
    return KernelFootprint(
        kernel=fn.name, nests=tuple(nests), analysis=analysis
    )
