"""Registry binding app kernel *sources* to their declared descriptors.

Each bundled application ships a scalar reference kernel (the analyzable
source) next to the :class:`~repro.sim.access.BufferAccess` descriptors
its traffic model declares.  An :class:`AppKernel` holds both plus the
parameter-to-buffer mapping, so the static pass and ``repro-lint`` can
diff inference against declaration buffer by buffer.

Parameters absent from ``param_buffers`` are auxiliary arrays the traffic
model folds into another buffer (e.g. SpMV's ``offsets``); they are
analyzed but excluded from the descriptor diff.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..sim.access import BufferAccess, PatternKind
from .astpass import InferredAccess, KernelAnalysis, analyze_function

if TYPE_CHECKING:
    from .footprint import KernelFootprint

__all__ = ["AppKernel", "app_kernels", "merge_params"]

#: Evidence precedence when several kernel parameters alias one declared
#: buffer: dependence beats indirection beats stride beats streaming.
_PATTERN_RANK = {
    PatternKind.STREAM: 1,
    PatternKind.STRIDED: 2,
    PatternKind.RANDOM: 3,
    PatternKind.POINTER_CHASE: 4,
}


def merge_params(
    analysis: KernelAnalysis,
    param_buffers: dict[str, str] | None = None,
) -> dict[str, InferredAccess]:
    """Fold a parameter-space analysis into declared-buffer space.

    ``param_buffers`` maps kernel parameter names to declared buffer
    names; several parameters may alias one buffer (Graph500's
    ``frontier``/``next_frontier`` are the two halves of the frontier
    queue).  ``None`` maps every analyzed parameter to itself.
    """
    if param_buffers is None:
        param_buffers = {name: name for name in analysis.accesses}
    merged: dict[str, InferredAccess] = {}
    for param, inferred in analysis.accesses.items():
        buffer = param_buffers.get(param)
        if buffer is None:
            continue
        prior = merged.get(buffer)
        if prior is None:
            merged[buffer] = InferredAccess(
                buffer=buffer,
                pattern=inferred.pattern,
                reads=inferred.reads,
                writes=inferred.writes,
                scalar_reads=inferred.scalar_reads,
                scalar_writes=inferred.scalar_writes,
                lines=inferred.lines,
                unknown_lines=inferred.unknown_lines,
            )
            continue
        pattern = prior.pattern
        if inferred.pattern is not None and (
            pattern is None
            or _PATTERN_RANK[inferred.pattern] > _PATTERN_RANK[pattern]
        ):
            pattern = inferred.pattern
        merged[buffer] = InferredAccess(
            buffer=buffer,
            pattern=pattern,
            reads=prior.reads + inferred.reads,
            writes=prior.writes + inferred.writes,
            scalar_reads=prior.scalar_reads + inferred.scalar_reads,
            scalar_writes=prior.scalar_writes + inferred.scalar_writes,
            lines=tuple(sorted({*prior.lines, *inferred.lines})),
            unknown_lines=tuple(
                sorted({*prior.unknown_lines, *inferred.unknown_lines})
            ),
        )
    return merged


@dataclass(frozen=True)
class AppKernel:
    """One app's kernel source + declared descriptors.

    ``bindings`` (symbol -> value, at the declared descriptors' problem
    scale) and ``buffer_sizes`` (logical buffer -> bytes) make the
    kernel *quantitatively* checkable: the footprint-aware lint rules
    evaluate the symbolic estimates against the declared traffic shares
    and the platform capacities.  ``guard_rate`` binds any guard symbol
    (``sel@``/``while@``/``trips@``) the footprint exposes.
    """

    name: str
    func: Callable
    param_buffers: dict[str, str]
    declared: tuple[BufferAccess, ...]
    bindings: dict[str, float] | None = None
    buffer_sizes: dict[str, int] | None = None
    guard_rate: float | None = None

    @property
    def module(self) -> str:
        return self.func.__module__

    @property
    def source_file(self) -> str:
        return getattr(self.func.__code__, "co_filename", "<unknown>")

    def analyze(self) -> KernelAnalysis:
        """Parameter-space analysis of the kernel source."""
        return analyze_function(self.func)

    def inferred(self) -> dict[str, InferredAccess]:
        """Inference merged into declared-buffer space."""
        return merge_params(self.analyze(), self.param_buffers)

    def declared_by_buffer(self) -> dict[str, BufferAccess]:
        return {a.buffer: a for a in self.declared}

    def footprint(self) -> "KernelFootprint":
        """Symbolic footprint of the kernel source."""
        from .footprint import footprint_of_function

        return footprint_of_function(self.func)

    def footprint_bindings(
        self, footprint: "KernelFootprint"
    ) -> dict[str, float]:
        """Registry bindings completed with the app's guard rate."""
        bindings = dict(self.bindings or {})
        if self.guard_rate is not None:
            for symbol in footprint.guard_symbols():
                bindings.setdefault(symbol, self.guard_rate)
        return bindings

    def derived_shares(self) -> dict[str, float] | None:
        """Static traffic shares at the declared problem scale, or
        ``None`` when the registry carries no bindings."""
        if self.bindings is None:
            return None
        from .footprint import traffic_shares

        footprint = self.footprint()
        return traffic_shares(
            footprint,
            self.footprint_bindings(footprint),
            param_buffers=self.param_buffers,
            buffer_sizes=self.buffer_sizes,
        )

    def declared_shares(self) -> dict[str, float]:
        """Traffic shares the declared descriptors encode."""
        total = sum(a.total_bytes for a in self.declared)
        if total <= 0:
            return {a.buffer: 0.0 for a in self.declared}
        return {a.buffer: a.total_bytes / total for a in self.declared}


def app_kernels() -> tuple[AppKernel, ...]:
    """The bundled apps' kernels, source and declaration side by side.

    Each base kernel is paired with an *interprocedural variant* — the
    same loop nest with the classifying access hidden behind a helper
    call (``a[f(i)]``-style).  The variants carry the same declared
    descriptors, so the lint diff passing on them proves the call
    resolution end to end.
    """
    # Imported lazily: apps pull in the allocator/engine stack, which the
    # analyzer itself does not need.
    from ..apps.graph500 import (
        Graph500Config,
        TrafficModel,
        bfs_kernel,
        bfs_split_kernel,
    )
    from ..apps.pointer_chase_app import (
        chase_accesses,
        chase_helper_kernel,
        chase_kernel,
    )
    from ..apps.spmv_app import (
        SyntheticMatrix,
        spmv_buffer_sizes,
        spmv_gather_kernel,
        spmv_kernel,
        spmv_phases,
    )
    from ..apps.stream_app import (
        triad_accesses,
        triad_indexed_kernel,
        triad_kernel,
    )

    g500_model = TrafficModel.analytic(20)
    g500_cfg = Graph500Config(scale=20, nroots=1, threads=16)
    (g500_phase,) = g500_model.phases(g500_cfg)
    spmv_matrix = SyntheticMatrix(num_vertices=1 << 16, num_directed_edges=1 << 20)
    (spmv_phase,) = spmv_phases(spmv_matrix, threads=1)

    triad_elems = 1 << 20          # 8 MiB buffers at 8 B/element
    triad_bindings = {"n": float(triad_elems)}
    triad_sizes = {"a": 8 << 20, "b": 8 << 20, "c": 8 << 20}
    spmv_bindings = {
        "n": float(spmv_matrix.num_vertices),
        "seg(offsets)": float(spmv_matrix.num_directed_edges),
    }
    spmv_sizes = spmv_buffer_sizes(spmv_matrix)
    chase_bindings = {"steps": float(1 << 10)}
    chase_sizes = {"table": 1 << 20}
    reached = g500_model.reached_vertices
    scanned = g500_model.edges_scanned
    g500_bindings = {
        "frontier_len": float(reached),
        "seg(offsets)": float(scanned),
    }
    g500_sizes = g500_model.buffer_sizes()
    g500_params = {
        "offsets": "csr_offsets",
        "targets": "csr_targets",
        "parent": "parent",
        "frontier": "frontier",
        "next_frontier": "frontier",
    }
    spmv_params = {"vals": "vals", "cols": "cols", "x": "x", "y": "y"}

    return (
        AppKernel(
            name="stream_triad",
            func=triad_kernel,
            param_buffers={"a": "a", "b": "b", "c": "c"},
            declared=triad_accesses(8 << 20),
            bindings=triad_bindings,
            buffer_sizes=triad_sizes,
        ),
        AppKernel(
            name="stream_triad_indexed",
            func=triad_indexed_kernel,
            param_buffers={"a": "a", "b": "b", "c": "c"},
            declared=triad_accesses(8 << 20),
            bindings=triad_bindings,
            buffer_sizes=triad_sizes,
        ),
        AppKernel(
            name="spmv",
            func=spmv_kernel,
            param_buffers=spmv_params,
            declared=spmv_phase.accesses,
            bindings=spmv_bindings,
            buffer_sizes=spmv_sizes,
        ),
        AppKernel(
            name="spmv_gather",
            func=spmv_gather_kernel,
            param_buffers=spmv_params,
            declared=spmv_phase.accesses,
            bindings=spmv_bindings,
            buffer_sizes=spmv_sizes,
        ),
        AppKernel(
            name="pointer_chase",
            func=chase_kernel,
            param_buffers={"table": "table"},
            declared=chase_accesses(1 << 20, 1 << 10),
            bindings=chase_bindings,
            buffer_sizes=chase_sizes,
        ),
        AppKernel(
            name="pointer_chase_helper",
            func=chase_helper_kernel,
            param_buffers={"table": "table"},
            declared=chase_accesses(1 << 20, 1 << 10),
            bindings=chase_bindings,
            buffer_sizes=chase_sizes,
        ),
        AppKernel(
            name="graph500_bfs",
            func=bfs_kernel,
            param_buffers=g500_params,
            declared=g500_phase.accesses,
            bindings=g500_bindings,
            buffer_sizes=g500_sizes,
            guard_rate=reached / scanned,
        ),
        AppKernel(
            name="graph500_bfs_split",
            func=bfs_split_kernel,
            param_buffers=g500_params,
            declared=g500_phase.accesses,
            bindings=g500_bindings,
            buffer_sizes=g500_sizes,
            guard_rate=reached / scanned,
        ),
    )
