"""Registry binding app kernel *sources* to their declared descriptors.

Each bundled application ships a scalar reference kernel (the analyzable
source) next to the :class:`~repro.sim.access.BufferAccess` descriptors
its traffic model declares.  An :class:`AppKernel` holds both plus the
parameter-to-buffer mapping, so the static pass and ``repro-lint`` can
diff inference against declaration buffer by buffer.

Parameters absent from ``param_buffers`` are auxiliary arrays the traffic
model folds into another buffer (e.g. SpMV's ``offsets``); they are
analyzed but excluded from the descriptor diff.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from ..sim.access import BufferAccess, PatternKind
from .astpass import InferredAccess, KernelAnalysis, analyze_function

__all__ = ["AppKernel", "app_kernels", "merge_params"]

#: Evidence precedence when several kernel parameters alias one declared
#: buffer: dependence beats indirection beats stride beats streaming.
_PATTERN_RANK = {
    PatternKind.STREAM: 1,
    PatternKind.STRIDED: 2,
    PatternKind.RANDOM: 3,
    PatternKind.POINTER_CHASE: 4,
}


def merge_params(
    analysis: KernelAnalysis,
    param_buffers: dict[str, str] | None = None,
) -> dict[str, InferredAccess]:
    """Fold a parameter-space analysis into declared-buffer space.

    ``param_buffers`` maps kernel parameter names to declared buffer
    names; several parameters may alias one buffer (Graph500's
    ``frontier``/``next_frontier`` are the two halves of the frontier
    queue).  ``None`` maps every analyzed parameter to itself.
    """
    if param_buffers is None:
        param_buffers = {name: name for name in analysis.accesses}
    merged: dict[str, InferredAccess] = {}
    for param, inferred in analysis.accesses.items():
        buffer = param_buffers.get(param)
        if buffer is None:
            continue
        prior = merged.get(buffer)
        if prior is None:
            merged[buffer] = InferredAccess(
                buffer=buffer,
                pattern=inferred.pattern,
                reads=inferred.reads,
                writes=inferred.writes,
                scalar_reads=inferred.scalar_reads,
                scalar_writes=inferred.scalar_writes,
                lines=inferred.lines,
                unknown_lines=inferred.unknown_lines,
            )
            continue
        pattern = prior.pattern
        if inferred.pattern is not None and (
            pattern is None
            or _PATTERN_RANK[inferred.pattern] > _PATTERN_RANK[pattern]
        ):
            pattern = inferred.pattern
        merged[buffer] = InferredAccess(
            buffer=buffer,
            pattern=pattern,
            reads=prior.reads + inferred.reads,
            writes=prior.writes + inferred.writes,
            scalar_reads=prior.scalar_reads + inferred.scalar_reads,
            scalar_writes=prior.scalar_writes + inferred.scalar_writes,
            lines=tuple(sorted({*prior.lines, *inferred.lines})),
            unknown_lines=tuple(
                sorted({*prior.unknown_lines, *inferred.unknown_lines})
            ),
        )
    return merged


@dataclass(frozen=True)
class AppKernel:
    """One app's kernel source + declared descriptors."""

    name: str
    func: Callable
    param_buffers: dict[str, str]
    declared: tuple[BufferAccess, ...]

    @property
    def module(self) -> str:
        return self.func.__module__

    @property
    def source_file(self) -> str:
        return getattr(self.func.__code__, "co_filename", "<unknown>")

    def analyze(self) -> KernelAnalysis:
        """Parameter-space analysis of the kernel source."""
        return analyze_function(self.func)

    def inferred(self) -> dict[str, InferredAccess]:
        """Inference merged into declared-buffer space."""
        return merge_params(self.analyze(), self.param_buffers)

    def declared_by_buffer(self) -> dict[str, BufferAccess]:
        return {a.buffer: a for a in self.declared}


def app_kernels() -> tuple[AppKernel, ...]:
    """The bundled apps' kernels, source and declaration side by side."""
    # Imported lazily: apps pull in the allocator/engine stack, which the
    # analyzer itself does not need.
    from ..apps.graph500 import Graph500Config, TrafficModel, bfs_kernel
    from ..apps.pointer_chase_app import chase_accesses, chase_kernel
    from ..apps.spmv_app import SyntheticMatrix, spmv_kernel, spmv_phases
    from ..apps.stream_app import triad_accesses, triad_kernel

    g500_model = TrafficModel.analytic(20)
    g500_cfg = Graph500Config(scale=20, nroots=1, threads=16)
    (g500_phase,) = g500_model.phases(g500_cfg)
    spmv_matrix = SyntheticMatrix(num_vertices=1 << 16, num_directed_edges=1 << 20)
    (spmv_phase,) = spmv_phases(spmv_matrix, threads=1)

    return (
        AppKernel(
            name="stream_triad",
            func=triad_kernel,
            param_buffers={"a": "a", "b": "b", "c": "c"},
            declared=triad_accesses(8 << 20),
        ),
        AppKernel(
            name="spmv",
            func=spmv_kernel,
            param_buffers={"vals": "vals", "cols": "cols", "x": "x", "y": "y"},
            declared=spmv_phase.accesses,
        ),
        AppKernel(
            name="pointer_chase",
            func=chase_kernel,
            param_buffers={"table": "table"},
            declared=chase_accesses(1 << 20, 1 << 10),
        ),
        AppKernel(
            name="graph500_bfs",
            func=bfs_kernel,
            param_buffers={
                "offsets": "csr_offsets",
                "targets": "csr_targets",
                "parent": "parent",
                "frontier": "frontier",
                "next_frontier": "frontier",
            },
            declared=g500_phase.accesses,
        ),
    )
