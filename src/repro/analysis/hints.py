"""From inference to hints: descriptors, attribute annotations, placements.

The output side of the static pass.  Given a
:class:`~repro.analysis.astpass.KernelAnalysis` (merged to buffer space),
this module emits exactly what the rest of the stack already consumes:

* **attribute annotations** (:func:`hints_for`) — per-buffer criterion
  names, direction-qualified via
  :func:`repro.sensitivity.attribute_for_pattern`, ready for
  ``mem_alloc`` (the annotation a compiler would insert);
* **access descriptors** (:func:`phase_from_analysis`) — synthetic
  :class:`~repro.sim.access.BufferAccess`/:class:`~repro.sim.access.KernelPhase`
  records that feed ``classify_kernel`` and ``sensitivity.search``
  unchanged, so a kernel can be searched without a profiling run;
* **placements** (:func:`hint_placement`) — the result of actually
  allocating every buffer through the heterogeneous allocator under the
  static hints, for scoring against the search optimum.
"""

from __future__ import annotations

from ..errors import ReproError
from ..sensitivity.staticanalysis import attribute_for_pattern
from ..sim.access import BufferAccess, KernelPhase, Placement
from .astpass import InferredAccess, KernelAnalysis
from .kernels import merge_params

__all__ = [
    "hints_for",
    "access_from_inferred",
    "phase_from_analysis",
    "hint_placement",
]


def _merged(
    analysis: KernelAnalysis | dict[str, InferredAccess],
    param_buffers: dict[str, str] | None,
) -> dict[str, InferredAccess]:
    if isinstance(analysis, KernelAnalysis):
        return merge_params(analysis, param_buffers)
    return analysis


def hints_for(
    analysis: KernelAnalysis | dict[str, InferredAccess],
    *,
    param_buffers: dict[str, str] | None = None,
    directional: bool = True,
    default: str = "Capacity",
) -> dict[str, str]:
    """Per-buffer allocation criteria from inferred patterns.

    Buffers the pass could not classify (dynamic indexing, scalar-only
    touches) get ``default`` — ``Capacity``, the attribute every platform
    provides, i.e. "no hint".  With ``directional=True`` single-direction
    buffers get the qualified attribute (``ReadBandwidth``, ...), served
    through the allocator's fallback chain on platforms without values
    for it.
    """
    out: dict[str, str] = {}
    for name, inferred in _merged(analysis, param_buffers).items():
        if inferred.pattern is None:
            out[name] = default
        elif directional:
            reads = inferred.reads or inferred.scalar_reads
            writes = inferred.writes or inferred.scalar_writes
            if inferred.reads or inferred.writes:
                reads, writes = inferred.reads, inferred.writes
            out[name] = attribute_for_pattern(
                inferred.pattern, reads=reads, writes=writes
            )
        else:
            out[name] = attribute_for_pattern(inferred.pattern)
    return out


def access_from_inferred(
    inferred: InferredAccess,
    working_set: int,
    *,
    traffic_scale: float = 1.0,
) -> BufferAccess:
    """A synthetic descriptor for one inferred buffer.

    Static analysis sees access *sites*, not byte counts; the descriptor
    models each loop site as one sweep over the working set
    (``bytes = sites * working_set * traffic_scale``), which preserves
    the relative traffic shares ``classify_kernel`` thresholds on and
    gives the placement search a pattern-faithful workload.
    """
    if inferred.pattern is None:
        raise ReproError(
            f"buffer {inferred.buffer!r} has no inferred pattern; "
            "cannot emit a descriptor"
        )
    reads = inferred.reads or (
        1 if inferred.scalar_reads and not inferred.writes else 0
    )
    writes = inferred.writes or (
        1 if inferred.scalar_writes and not inferred.reads else 0
    )
    if reads == 0 and writes == 0:
        reads = 1
    return BufferAccess(
        buffer=inferred.buffer,
        pattern=inferred.pattern,
        bytes_read=reads * working_set * traffic_scale,
        bytes_written=writes * working_set * traffic_scale,
        working_set=working_set,
        granularity=8,
    )


def phase_from_analysis(
    analysis: KernelAnalysis | dict[str, InferredAccess],
    buffer_sizes: dict[str, int],
    *,
    param_buffers: dict[str, str] | None = None,
    name: str = "static",
    threads: int = 1,
    traffic_scale: float = 1.0,
) -> KernelPhase:
    """A priceable phase built purely from source-level inference.

    Buffers without an inferred pattern are omitted (and absent buffers
    in ``buffer_sizes`` raise): the phase only claims what the pass can
    defend.  The result feeds ``classify_kernel`` and
    ``sensitivity.search`` exactly like a profiled phase.
    """
    merged = _merged(analysis, param_buffers)
    accesses = []
    for buffer_name in sorted(merged):
        inferred = merged[buffer_name]
        if inferred.pattern is None:
            continue
        if buffer_name not in buffer_sizes:
            raise ReproError(f"no size for inferred buffer {buffer_name!r}")
        accesses.append(
            access_from_inferred(
                inferred, buffer_sizes[buffer_name], traffic_scale=traffic_scale
            )
        )
    if not accesses:
        raise ReproError(f"kernel {name!r}: nothing classifiable to price")
    return KernelPhase(name=name, threads=threads, accesses=tuple(accesses))


def hint_placement(
    allocator,
    hints: dict[str, str],
    buffer_sizes: dict[str, int],
    initiator,
    *,
    name_prefix: str = "hint_",
    keep: bool = False,
) -> Placement:
    """Allocate every hinted buffer through ``mem_alloc`` and return the
    resulting placement.

    This is the zero-profiling path end to end: source -> hints ->
    allocator -> placement.  Buffers are freed before returning unless
    ``keep=True`` (the placement snapshot stays valid either way).
    Allocation order is by descending size, the order a real program's
    big arrays hit the allocator's capacity walk hardest.
    """
    missing = sorted(set(hints) - set(buffer_sizes))
    if missing:
        raise ReproError(f"no sizes for hinted buffers: {missing}")
    order = sorted(hints, key=lambda b: (-buffer_sizes[b], b))
    buffers = allocator.mem_alloc_many(
        [
            {
                "size": buffer_sizes[b],
                "attribute": hints[b],
                "initiator": initiator,
                "name": f"{name_prefix}{b}",
            }
            for b in order
        ]
    )
    placement = Placement(
        {
            b: buf.placement_fractions()
            for b, buf in zip(order, buffers)
        }
    )
    if not keep:
        for buf in buffers:
            allocator.free(buf)
    return placement
