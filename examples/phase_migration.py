#!/usr/bin/env python
"""Phase-aware migration (§VII): when is moving a buffer worth it?

A two-phase application alternates which 3 GB buffer is hot. The
:class:`~repro.alloc.PhaseManager` prices the upcoming phase with and
without migrating the newly-hot buffer into MCDRAM, charges the kernel's
``move_pages`` cost model, and migrates only when it pays off.

Run:  python examples/phase_migration.py
"""

import repro
from repro.alloc import PhaseManager
from repro.sim import BufferAccess, KernelPhase, PatternKind
from repro.units import GB

PUS = tuple(range(64))


def hot_phase(buffer: str, sweeps: int) -> KernelPhase:
    nbytes = 3 * GB
    return KernelPhase(
        name=f"hot_{buffer}",
        threads=16,
        accesses=(
            BufferAccess(
                buffer=buffer,
                pattern=PatternKind.STREAM,
                bytes_read=nbytes * sweeps,
                working_set=nbytes,
            ),
        ),
    )


def main() -> None:
    setup = repro.quick_setup("knl-snc4-flat")
    manager = PhaseManager(setup.allocator, setup.engine)

    a = setup.allocator.mem_alloc(3 * GB, "Bandwidth", 0, name="a")
    b = setup.allocator.mem_alloc(3 * GB, "Capacity", 0, name="b")
    print("initial placement:")
    print(f"  {a.describe()}")
    print(f"  {b.describe()}")

    print("\nphase boundary: buffer 'b' becomes the hot one.\n")
    for sweeps in (2, 20, 200):
        decision = manager.evaluate(
            "b", "Bandwidth", (hot_phase("b", sweeps),), pus=PUS
        )
        print(f"  next phase = {sweeps:>3} sweeps: {decision.describe()}")

    print("\napplying the decision for the 200-sweep phase:")
    # Make room first (the §VII priority idea in miniature): demote 'a'.
    setup.allocator.migrate("a", "Capacity")
    decision = manager.apply("b", "Bandwidth", (hot_phase("b", 200),), pus=PUS)
    print(f"  {decision.describe()}")
    print(f"  a now: {a.describe()}")
    print(f"  b now: {b.describe()}")

    setup.allocator.free(a)
    setup.allocator.free(b)


if __name__ == "__main__":
    main()
