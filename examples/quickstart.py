#!/usr/bin/env python
"""Quickstart: discover a machine, inspect its memory attributes, and
allocate by criterion instead of by memory kind.

Run:  python examples/quickstart.py [platform]
"""

import sys

import repro
from repro.core import render_memattrs
from repro.topology import render_lstopo
from repro.units import GB


def main() -> None:
    platform = sys.argv[1] if len(sys.argv) > 1 else "knl-snc4-flat"
    print(f"### Setting up the full stack for '{platform}'\n")
    setup = repro.quick_setup(platform)

    print("### Topology (lstopo)\n")
    print(render_lstopo(setup.topology))

    print("\n### Memory attributes (lstopo --memattrs)\n")
    print(render_memattrs(setup.memattrs, only=("Capacity", "Bandwidth", "Latency")))

    print("\n### Allocating 1 GB by criterion from PU 0\n")
    for criterion in ("Bandwidth", "Latency", "Capacity"):
        buf = setup.allocator.mem_alloc(1 * GB, criterion, initiator=0)
        print(f"  mem_alloc(1GB, {criterion!r})  ->  {buf.describe()}")
        setup.allocator.free(buf)

    print(
        "\nThe same three lines of application code run unmodified on any\n"
        "platform model — try: python examples/quickstart.py xeon-cascadelake-1lm"
    )


if __name__ == "__main__":
    main()
