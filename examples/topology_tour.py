#!/usr/bin/env python
"""A tour of every modeled platform: topologies (Figs. 1-3), NUMA
distances, and where each allocation criterion lands.

Run:  python examples/topology_tour.py [--full]
"""

import sys

import repro
from repro.hw import PLATFORM_REGISTRY
from repro.topology import render_lstopo
from repro.units import GB

HIGHLIGHTS = (
    "knl-snc4-hybrid50",      # Fig. 1
    "xeon-cascadelake-1lm",   # Fig. 2 (use --full for the SNC2 variant)
    "fictitious-four-kind",   # Fig. 3
)


def tour(platform: str) -> None:
    print(f"\n{'=' * 70}\n{platform}\n{'=' * 70}")
    setup = repro.quick_setup(platform)
    print(render_lstopo(setup.topology))

    print("\nNUMA distances (SLIT):")
    print(setup.topology.slit.render())

    print("\nWhere does each criterion send a 1 GB buffer from PU 0?")
    for criterion in ("Bandwidth", "Latency", "Capacity", "Locality"):
        try:
            buf = setup.allocator.mem_alloc(1 * GB, criterion, 0)
            print(f"  {criterion:<10} -> {buf.target.label} "
                  f"({buf.target.attrs['kind']})")
            setup.allocator.free(buf)
        except Exception as exc:  # pragma: no cover - demo output only
            print(f"  {criterion:<10} -> failed: {exc}")


def main() -> None:
    platforms = (
        sorted(PLATFORM_REGISTRY) if "--full" in sys.argv else HIGHLIGHTS
    )
    for platform in platforms:
        tour(platform)


if __name__ == "__main__":
    main()
