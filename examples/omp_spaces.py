#!/usr/bin/env python
"""OpenMP memory spaces over memory attributes (paper §IV / §VIII).

Demonstrates the runtime integration the paper targets: the predefined
OpenMP spaces resolve through attribute rankings, and allocator traits
(fallback modes, interleaved partitioning) map onto the heterogeneous
allocator.

Run:  python examples/omp_spaces.py
"""

import repro
from repro.omp import (
    AllocatorTraits,
    FallbackMode,
    OmpRuntime,
    PREDEFINED_SPACES,
    space_targets,
)
from repro.units import GB, TB


def main() -> None:
    setup = repro.quick_setup("knl-snc4-flat")
    rt = OmpRuntime(setup.allocator)

    print("### What backs each OpenMP memory space on this KNL?\n")
    for name, space in PREDEFINED_SPACES.items():
        targets = space_targets(setup.memattrs, space, 0)
        backing = ", ".join(t.label for t in targets[:2])
        print(f"  {name:<26} (ranks by {space.attribute:<9}) -> {backing}")

    print("\n### omp_alloc with traits\n")
    hbw = rt.make_allocator("omp_high_bw_mem_space")
    buf = rt.omp_alloc(2 * GB, hbw, 0)
    print(f"  high-bw, 2GB:       {buf.describe()}")
    rt.omp_free(buf)

    buf = rt.omp_alloc(25 * GB, hbw, 0)
    print(f"  high-bw, 25GB:      {buf.describe()}")
    print("    (MCDRAM full -> default_mem_fb placed it anyway)")
    rt.omp_free(buf)

    null_fb = rt.make_allocator(
        "omp_high_bw_mem_space", AllocatorTraits(fallback=FallbackMode.NULL_FB)
    )
    print(f"  high-bw, 10TB, null_fb: {rt.omp_alloc(10 * TB, null_fb, 0)}")

    inter = rt.make_allocator(
        "omp_high_bw_mem_space",
        AllocatorTraits(partition_interleaved=True),
    )
    buf = rt.omp_alloc(6 * GB, inter, 0)
    print(f"  high-bw, 6GB, interleaved partition: {buf.describe()}")
    rt.omp_free(buf)


if __name__ == "__main__":
    main()
