#!/usr/bin/env python
"""Define a *future* platform as data, save it as JSON, and run the whole
stack on it — the paper's §II-C/§VIII forward-looking scenario.

The machine below is a 2026-flavoured node: on-package HBM per compute
cluster, DDR5 per socket, and a CXL-attached DRAM expander shared by the
machine.  No code in the library knows about it; the attribute flow makes
the right calls anyway — which is the whole point of the paper.

Run:  python examples/custom_platform.py
"""

import json
import tempfile

from repro.hw import (
    GroupSpec,
    MachineSpec,
    MemoryNodeSpec,
    PackageSpec,
    load_machine,
    machine_to_dict,
    save_machine,
    tech,
)
from repro.hw.spec import CacheSpec
from repro.topology import render_lstopo
from repro.units import GB


def build_future_node() -> MachineSpec:
    caches = (
        CacheSpec(level=1, size=64 * 1024),
        CacheSpec(level=2, size=2 * 1024 * 1024),
        CacheSpec(level=3, size=96 * 10**6, shared=True),
    )
    groups = tuple(
        GroupSpec(
            cores=8,
            pus_per_core=2,
            name=f"Cluster L#{i}",
            memories=(
                MemoryNodeSpec(tech=tech("hbm2"), capacity=24 * GB, subtype="HBM"),
            ),
            caches=caches,
        )
        for i in range(2)
    )
    package = PackageSpec(
        groups=groups,
        memories=(MemoryNodeSpec(tech=tech("ddr5"), capacity=256 * GB),),
    )
    return MachineSpec(
        name="future-hbm-ddr5-cxl",
        packages=(package, package),
        machine_memories=(
            MemoryNodeSpec(
                tech=tech("cxl-dram"), capacity=1024 * GB, subtype="CXL"
            ),
        ),
    )


def main() -> None:
    machine = build_future_node()

    with tempfile.NamedTemporaryFile(suffix=".json", mode="w", delete=False) as f:
        path = f.name
    save_machine(machine, path)
    print(f"### Machine description saved to {path}")
    print(json.dumps(machine_to_dict(machine), indent=2)[:400] + "  ...\n")

    machine = load_machine(path)
    print("### Topology\n")
    from repro.alloc import HeterogeneousAllocator
    from repro.bench import characterize_machine, feed_attributes
    from repro.core import MemAttrs
    from repro.kernel import KernelMemoryManager
    from repro.sim import SimEngine
    from repro.topology import build_topology

    topo = build_topology(machine)
    print(render_lstopo(topo))

    engine = SimEngine(machine, topo)
    memattrs = MemAttrs(topo)
    feed_attributes(memattrs, characterize_machine(engine))
    allocator = HeterogeneousAllocator(memattrs, KernelMemoryManager(machine))

    print("\n### Criterion placements from PU 0 (no code knows this machine)\n")
    for criterion in ("Bandwidth", "Latency", "Capacity"):
        buf = allocator.mem_alloc(1 * GB, criterion, 0)
        print(f"  {criterion:<10} -> {buf.target.label} "
              f"[{buf.target.attrs['tech']}]")
        allocator.free(buf)

    print(
        "\nHBM for bandwidth, local DDR5 for latency, the CXL expander for\n"
        "capacity — derived entirely from measured attributes."
    )


if __name__ == "__main__":
    main()
