#!/usr/bin/env python
"""The Fig. 6 workflow: determine buffer sensitivity three ways, then
feed the allocator.

1. **profiling** (§V-B): run once on the wrong tier, read the VTune-style
   Memory Access analysis, classify each buffer;
2. **static analysis** (§V-C): classify the kernel's access descriptors
   without running anything;
3. **search oracle** (§V-A): exhaustively price every placement of the
   critical buffers;
then place the buffers with the planner and show the resulting speedup.

Run:  python examples/sensitivity_workflow.py
"""

import repro
from repro.alloc import PlacementPlanner
from repro.apps.graph500 import Graph500Config, Graph500Driver, TrafficModel
from repro.profiler import analyze_run, object_analysis, render_object_report
from repro.sensitivity import (
    classify_kernel,
    exhaustive_search,
    recommend_requests,
)

PUS = tuple(range(40))


def main() -> None:
    setup = repro.quick_setup("xeon-cascadelake-1lm")
    driver = Graph500Driver(setup.engine)
    model = TrafficModel.analytic(22)
    cfg = Graph500Config(scale=22, nroots=1, threads=16)
    phases = model.phases(cfg)

    print("### Baseline: everything on the capacity tier (NVDIMM)")
    naive_placement = driver.placement_all_on(2, model)
    naive = driver.run_model(cfg, naive_placement, pus=PUS, model=model)
    print(f"  {naive.describe()}")

    print("\n### Method 1 — profiling the naive run (VTune-style)")
    run = setup.engine.price_run(phases, naive_placement, pus=PUS)
    summary = analyze_run(setup.machine, run)
    print(f"  PMem Bound: {summary.bound_pct['PMem']:.1f}% of clockticks "
          f"(latency-sensitive: {summary.latency_sensitive})")
    print(render_object_report(object_analysis(run), top=4))
    requests = recommend_requests(setup.machine, run, model.buffer_sizes())
    print("  recommended requests:")
    for r in requests:
        print(f"    {r.name:<12} -> {r.attribute:<9} (priority {r.priority})")

    print("\n### Method 2 — static analysis of the kernel descriptor")
    for buffer, criterion in classify_kernel(phases[0]).items():
        print(f"    {buffer:<12} -> {criterion}")

    print("\n### Method 3 — exhaustive placement search (the 2^N oracle)")
    candidates = exhaustive_search(
        setup.engine,
        phases,
        model.buffer_sizes(),
        (0, 2),
        default_node=0,
        pus=PUS,
    )
    best = candidates[0]
    print(f"    best of {len(candidates)} placements: {best.as_dict()} "
          f"({best.seconds * 1e3:.1f} ms)")

    print("\n### Feeding the allocator (priority planner)")
    report = PlacementPlanner(setup.allocator).plan(requests, 0)
    print(report.describe())
    tuned = driver.run_model(
        cfg, setup.allocator.placement(), pus=PUS, model=model
    )
    print(f"\n  tuned: {tuned.describe()}")
    print(f"  speedup over naive: "
          f"{tuned.harmonic_teps / naive.harmonic_teps:.2f}x")


if __name__ == "__main__":
    main()
