#!/usr/bin/env python
"""Table III live: STREAM Triad through the heterogeneous allocator,
sweeping the requested criterion and the array sizes.

Shows the three behaviours the paper measures:
* criterion choice decides the memory kind (Latency→DRAM, Bandwidth→HBM,
  Capacity→NVDIMM);
* the NVDIMM write-buffer cliff between 22 and 89 GiB on the Xeon;
* the KNL capacity fallback at 17.9 GiB (MCDRAM full ⇒ DRAM speed).

Run:  python examples/stream_triad_criteria.py
"""

import repro
from repro.apps import StreamApp
from repro.errors import CapacityError
from repro.units import GiB


def sweep(platform, criteria, sizes_gib, threads, pus):
    print(f"\n=== {platform}: STREAM Triad (GB/s) ===")
    header = f"{'total':>10} |" + "".join(f" {c:>12} |" for c in criteria)
    print(header)
    print("-" * len(header))
    for gib in sizes_gib:
        cells = []
        for criterion in criteria:
            setup = repro.quick_setup(platform)
            app = StreamApp(setup.engine, setup.allocator)
            try:
                r = app.run(
                    int(gib * GiB), criterion, 0, threads=threads, pus=pus
                )
                note = "*" if r.fallback_used else " "
                cells.append(f"{r.triad_gbps:>11.2f}{note}")
            except CapacityError:
                cells.append(f"{'OOM':>12}")
        print(f"{gib:>8.1f}Gi |" + " |".join(cells) + " |")
    print("(* = capacity fallback to a slower target)")


def main() -> None:
    sweep(
        "xeon-cascadelake-1lm",
        ("Capacity", "Latency", "Bandwidth"),
        (22.4, 89.4, 223.5),
        threads=20,
        pus=tuple(range(40)),
    )
    sweep(
        "knl-snc4-flat",
        ("Bandwidth", "Latency", "Capacity"),
        (1.1, 3.4, 17.9),
        threads=16,
        pus=tuple(range(64)),
    )


if __name__ == "__main__":
    main()
