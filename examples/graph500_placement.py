#!/usr/bin/env python
"""The paper's §VI use case, end to end: Graph500 placement on the Xeon
(DRAM + Optane NVDIMM) and the KNL (DDR4 + MCDRAM).

Steps, mirroring Fig. 6:
1. benchmark the application bound to each memory kind (Table II);
2. infer the allocation criterion (latency-bound!), with the KNL
   gain-threshold twist of §VI-A;
3. run the traversal under the criterion-driven placement and compare.

Run:  python examples/graph500_placement.py [scale]
"""

import sys

import repro
from repro.apps.graph500 import Graph500Config, Graph500Driver, TrafficModel
from repro.sensitivity import infer_criterion, whole_process_binding_sweep


def evaluate(platform: str, pus: tuple[int, ...], scale: int) -> None:
    print(f"\n=== {platform} ===")
    setup = repro.quick_setup(platform)
    driver = Graph500Driver(setup.engine)
    model = TrafficModel.analytic(scale)
    cfg = Graph500Config(scale=scale, nroots=4, threads=16)

    def run_bound_to(node: int) -> float:
        result = driver.run_model(
            cfg, driver.placement_all_on(node, model), pus=pus, model=model
        )
        return result.harmonic_teps

    targets = setup.memattrs.get_local_numanode_objs(pus[0])
    print("1. whole-process binding sweep (the paper's Table II method):")
    outcomes = whole_process_binding_sweep(run_bound_to, targets)
    for o in outcomes:
        print(f"     bound to {o.label:<24} {o.metric:.3e} TEPS")

    criterion = infer_criterion(setup.memattrs, outcomes, pus[0])
    print(f"2. inferred allocation criterion: {criterion!r}")
    if criterion == "Capacity":
        print(
            "     (§VI-A: the fast-memory gain is too weak to justify\n"
            "      consuming scarce capacity — allocate for capacity instead)"
        )

    _, ranked = setup.allocator.rank_for(criterion, pus[0])
    chosen = ranked[0].target
    result = driver.run_model(
        cfg,
        driver.placement_all_on(chosen.os_index, model),
        pus=pus,
        model=model,
    )
    best = max(o.metric for o in outcomes)
    print(
        f"3. criterion-driven placement -> {chosen.label}: "
        f"{result.harmonic_teps:.3e} TEPS "
        f"({result.harmonic_teps / best:.0%} of the manual-tuning oracle)"
    )


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 23
    evaluate("xeon-cascadelake-1lm", tuple(range(40)), scale)
    evaluate("knl-snc4-flat", tuple(range(64)), scale)
    print(
        "\nSame application code, same criteria — correct placement on "
        "both machines (the paper's portability claim)."
    )


if __name__ == "__main__":
    main()
