#!/usr/bin/env python
"""Per-buffer criteria on a mixed-sensitivity kernel (SpMV).

One kernel, four buffers, three needs: the value/index streams want
bandwidth, the gathered vector wants latency, and none of it should touch
the capacity tier.  Whole-process binding (§V-A) has to pick one answer
for all four; per-buffer criteria don't.

Run:  python examples/spmv_criteria.py
"""

import repro
from repro.apps import SpmvApp, SyntheticMatrix
from repro.apps.graph500 import build_csr, kronecker_edges
from repro.sensitivity import classify_kernel
from repro.apps.spmv_app import spmv_phases

PUS = tuple(range(16))


def main() -> None:
    setup = repro.quick_setup("fictitious-four-kind", benchmark=True)
    app = SpmvApp(setup.engine, setup.allocator)

    print("### Static analysis of the SpMV kernel (what a compiler would hint)")
    small = build_csr(kronecker_edges(12, seed=1), num_vertices=1 << 12)
    (phase,) = spmv_phases(small, threads=8)
    for buffer, criterion in classify_kernel(phase).items():
        print(f"  {buffer:<6} -> {criterion}")

    print("\n### Pricing a paper-scale matrix (4M rows, 99M nonzeros) on the")
    print("### fictitious HBM+DDR5+NVDIMM platform, 8 threads\n")
    big = SyntheticMatrix(num_vertices=1 << 22, num_directed_edges=99_000_000)
    policies = {
        "per-buffer criteria": None,
        "whole-process DRAM": {b: "Latency" for b in ("vals", "cols", "x", "y")},
        "whole-process HBM": {b: "Bandwidth" for b in ("vals", "cols", "x", "y")},
        "whole-process NVDIMM": {b: "Capacity" for b in ("vals", "cols", "x", "y")},
    }
    for label, criteria in policies.items():
        result = app.run(
            big, 0, threads=8, pus=PUS, iterations=5,
            criteria=criteria, name_prefix=label.replace(" ", "_"),
        )
        where = {
            name: setup.topology.numanode_by_os_index(
                next(iter(fr))
            ).attrs["kind"]
            for name, fr in result.placements.items()
        }
        print(f"  {label:<22} {result.gflops:6.2f} GFLOP/s   {where}")

    print(
        "\nPer-buffer criteria put the streams on HBM and keep the gather\n"
        "target off the scarce fast memory — matching the best whole-\n"
        "process choice while consuming a third of its HBM."
    )


if __name__ == "__main__":
    main()
